//! Umbrella crate for the Ok-Topk reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so examples and
//! integration tests can use a single import root. The actual implementation lives in:
//!
//! - [`simnet`] — simulated message-passing substrate with an α–β–NIC cost model,
//! - [`sparse`] — sparse gradient representation and top-k selection/estimation,
//! - [`collectives`] — dense allreduce and the four baseline sparse allreduces,
//! - [`oktopk`] — the paper's O(k) sparse allreduce and Ok-Topk SGD,
//! - [`dnn`] — a minimal deep-learning framework (models, optimizers, synthetic data),
//! - [`train`] — the distributed data-parallel training and instrumentation harness.

pub use collectives;
pub use dnn;
pub use oktopk;
pub use simnet;
pub use sparse;
pub use train;
