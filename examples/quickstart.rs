//! Quickstart: the O(k) sparse allreduce in ~40 lines.
//!
//! Spins up a simulated 8-rank cluster, gives each rank a random dense gradient,
//! runs Ok-Topk's sparse allreduce, and prints what every paper reader wants to
//! see first: the result is (approximately) the top-k of the sum, every rank got
//! the identical answer, and the measured traffic respects the 6k(P−1)/P bound.
//!
//! Run with: `cargo run --release --example quickstart`

use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::{Cluster, CostModel};

fn main() {
    let p = 8; // simulated workers
    let n = 10_000; // gradient length
    let k = 100; // top-k target (density 1%)

    // Each worker's local dense gradient (seeded per rank).
    let grads: Vec<Vec<f32>> = (0..p)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(42 + r as u64);
            (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        })
        .collect();

    let cluster = Cluster::new(p, CostModel::aries());
    // Two iterations: the first pays the (τ-amortized) threshold/boundary setup;
    // the second is a steady-state iteration, the regime the 6k bound describes.
    let run = |iters: usize| {
        cluster.run(|comm| {
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k));
            let mut out = None;
            for t in 1..=iters {
                out = Some(okt.allreduce(comm, &grads[comm.rank()], t));
            }
            (out.expect("at least one iteration").update, comm.now())
        })
    };
    let first = run(1);
    let both = run(2);

    let (u_t, _) = &both.results[0];
    println!("global top-k support size: {} (target k = {k})", u_t.nnz());
    println!(
        "largest |value| in u_t:    {:.4}",
        u_t.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()))
    );

    // Every rank holds the identical sparse result.
    assert!(both.results.iter().all(|(u, _)| u == u_t));
    println!("all {p} ranks agree on u_t ✓");

    // Traffic accounting: the steady-state iteration respects the paper's bound.
    let bound = 6.0 * k as f64 * (p as f64 - 1.0) / p as f64;
    println!("\nsteady-state traffic (iteration 2), 6k(P-1)/P bound = {bound:.0} elements:");
    for rank in 0..p {
        let sent = (both.ledger.rank_elements(rank) - first.ledger.rank_elements(rank)) as f64;
        assert!(sent <= bound, "rank {rank} exceeded the bound: {sent} > {bound}");
        println!("  rank {rank}: sent {sent:>4.0} elements, within bound ✓");
    }
    println!(
        "\nmodeled time: {:.2} µs (setup iteration) + {:.2} µs (steady iteration)",
        first.makespan() * 1e6,
        (both.makespan() - first.makespan()) * 1e6
    );
}
