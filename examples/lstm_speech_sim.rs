//! Sequence-model training with a WER-style metric (the paper's LSTM / AN4
//! scenario, §5.4.2) at example scale: all seven allreduce schemes train the LSTM
//! stand-in on 8 simulated workers; the example prints each scheme's final
//! per-token error rate (the WER proxy) and modeled training time.
//!
//! Run with: `cargo run --release --example lstm_speech_sim`

use dnn::data::SyntheticSequences;
use dnn::models::LstmNet;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn main() {
    let p = 8;
    let data = SyntheticSequences::new(4);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 24)).collect();

    println!("{:<11} {:>10} {:>14}", "scheme", "WER proxy", "modeled time");
    for scheme in Scheme::all() {
        let mut cfg = TrainConfig::new(scheme, 0.02);
        cfg.iters = 100;
        cfg.local_batch = 4;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.3 };
        cfg.lr_decay_iters = 50;
        cfg.tau = 16;
        cfg.tau_prime = 16;
        cfg.eval_every = cfg.iters;

        let d = data.clone();
        let res = run_data_parallel(
            p,
            &cfg,
            || LstmNet::new(5),
            move |it, r, w| d.train_batch(it, r, w, 4),
            &eval,
        );
        let last = res.evals.last().expect("final evaluation");
        println!("{:<11} {:>10.4} {:>12.3}s", scheme.name(), 1.0 - last.accuracy, last.time);
    }
    println!("\nExpected: sparse schemes reach similar error; Ok-Topk in the least time.");
}
