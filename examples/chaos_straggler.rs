//! Chaos demo: one straggler in an Ok-Topk step, visualized.
//!
//! Spins up a simulated 8-rank cluster where rank 3 computes 3× slower
//! (a deterministic `ChaosPlan` straggler), runs a forward/backward block plus
//! one Ok-Topk sparse allreduce per rank, and prints the perturbed timeline:
//! rank 3's compute renders lowercase (perturbed), the chaos header row marks
//! the injected window, and the clean/perturbed makespans are compared.
//!
//! Run with: `cargo run --release --example chaos_straggler`

use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::{render_timeline_with_chaos, ChaosPlan, Cluster, CostModel};

fn main() {
    let p = 8; // simulated workers
    let n = 10_000; // gradient length
    let k = 100; // top-k target (density 1%)
    let straggler_rank = 3;
    let severity = 3.0;
    let fwd_seconds = 2e-4; // modeled forward/backward block per iteration

    let grads: Vec<Vec<f32>> = (0..p)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(7 + r as u64);
            (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        })
        .collect();

    let run = |plan: Option<ChaosPlan>| {
        let mut cluster = Cluster::new(p, CostModel::aries());
        if let Some(plan) = plan {
            cluster = cluster.with_chaos(plan);
        }
        cluster.run(|comm| {
            comm.enable_trace();
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k));
            comm.compute(fwd_seconds);
            let out = okt.allreduce(comm, &grads[comm.rank()], 1);
            (out.update, comm.take_trace())
        })
    };

    let clean = run(None);
    let plan = ChaosPlan::new(0).straggler(straggler_rank, severity);
    let windows = plan.compile(p).windows();
    let chaotic = run(Some(plan));

    // Chaos perturbs when, never what: the sparse result is bit-identical.
    for (c, s) in clean.results.iter().zip(&chaotic.results) {
        assert_eq!(c.0, s.0, "straggler changed the math — that would be a bug");
    }
    println!("result check: all {p} ranks agree with the clean run ✓\n");

    let traces: Vec<_> = chaotic.results.iter().map(|(_, t)| t.clone()).collect();
    println!("perturbed run (rank {straggler_rank} computes {severity}x slower):");
    print!("{}", render_timeline_with_chaos(&traces, 100, &windows));

    println!(
        "\nmakespan: clean {:.2} µs -> perturbed {:.2} µs ({:.2}x)",
        clean.makespan() * 1e6,
        chaotic.makespan() * 1e6,
        chaotic.makespan() / clean.makespan()
    );
    println!(
        "(the collective is synchronous: one slow rank stalls everyone at the \
         first data dependency — compare how little of the other rows is C)"
    );
}
