//! Data-parallel image classification (the paper's VGG-16 / Cifar-10 scenario,
//! §5.4.1) at example scale: 8 simulated workers train the VGG stand-in with the
//! dense allreduce and with Ok-Topk (density 2%), and the example prints accuracy
//! and modeled time side by side — the Fig. 9 story in miniature.
//!
//! Run with: `cargo run --release --example vgg_cifar_like`

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn main() {
    let p = 8;
    let data = SyntheticImages::new(7);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 32)).collect();

    for scheme in [Scheme::Dense, Scheme::OkTopk] {
        let mut cfg = TrainConfig::new(scheme, 0.02);
        cfg.iters = 120;
        cfg.local_batch = 4;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.08 };
        cfg.lr_decay_iters = 60;
        cfg.tau = 16;
        cfg.tau_prime = 16;
        cfg.eval_every = 30;

        let d = data.clone();
        let res = run_data_parallel(
            p,
            &cfg,
            || VggLite::new(3),
            move |it, r, w| d.train_batch(it, r, w, 4),
            &eval,
        );

        println!("=== {} ===", scheme.name());
        for e in &res.evals {
            println!(
                "  iter {:>4}  modeled time {:>7.3}s  test top-1 acc {:.3}",
                e.t, e.time, e.accuracy
            );
        }
        let (c, s, m) = res.mean_breakdown(20);
        println!(
            "  per-iteration: compute {:.4}s, sparsification {:.4}s, communication {:.4}s\n",
            c, s, m
        );
    }
    println!("Expected: Ok-Topk reaches comparable accuracy in less modeled time.");
}
