//! Two-tier topology demo: the same Ok-Topk step, flat vs hierarchical.
//!
//! Builds an 8-rank cluster as 2 nodes × 4 ranks with fast intra-node links
//! (1 µs / 1 ns-per-element) and a slow, 8×-oversubscribed inter-node fabric
//! (25 µs / 4 ns-per-element), then runs one data-parallel Ok-Topk step two
//! ways on that same hardware:
//!
//! - **flat**: the paper's Ok-Topk straight across all 8 ranks — every split
//!   exchange crosses the slow fabric;
//! - **hierarchical**: dense intra-node reduce to each node leader, one
//!   re-selection there, Ok-Topk between the two leaders only, then an
//!   intra-node broadcast.
//!
//! Prints both timelines (compute / sparsify / comm per rank) and the modeled
//! makespans. In the hierarchical run the non-leader ranks go quiet after the
//! intra reduce — the inter-node traffic is funnelled through ranks 0 and 4.
//!
//! Run with: `cargo run --release --example hierarchical_allreduce`

use simnet::{render_timeline, Cluster, Topology};
use train::{CostProfile, Reducer, Scheme, Update};

fn main() {
    let p = 8; // 2 nodes x 4 ranks
    let rpn = 4;
    let n = 16_384;
    let density = 0.02;
    let oversub = 8.0;

    let topo = Topology::two_tier(rpn, (1e-6, 1e-9), (25e-6, 4e-9)).with_oversubscription(oversub);
    let profile = CostProfile::paper_calibrated().scaled_for_model(n);
    let fwd = profile.fwd_bwd(n);

    let grad = |rank: usize| -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i * (rank + 2)) as f32;
                let spike = if i % 211 == rank * 13 % 211 { 3.0 } else { 0.0 };
                (x * 0.01).sin() * 0.25 + spike
            })
            .collect()
    };

    let run = |scheme: Scheme| {
        Cluster::new(p, profile.network()).with_topology(topo).run(move |comm| {
            comm.enable_trace();
            let mut reducer =
                Reducer::new(scheme, n, density, profile, 8, 8).with_ranks_per_node(rpn);
            comm.compute(fwd);
            let g = grad(comm.rank());
            let (update, _) = reducer.reduce(comm, &g, 0.1);
            let nnz = match update {
                Update::Dense(v) => v.len(),
                Update::Sparse(coo) => coo.indexes().len(),
            };
            (nnz, comm.take_trace())
        })
    };

    println!(
        "two-tier cluster: {p} ranks = {} nodes x {rpn}, intra (1 us, 1 ns/elem), \
         inter (25 us, 4 ns/elem) x {oversub} oversubscription\n",
        p / rpn
    );

    let flat = run(Scheme::OkTopk);
    let hier = run(Scheme::HierOkTopk);

    let timeline = |report: &simnet::SimReport<(usize, Vec<simnet::TraceEvent>)>| {
        let traces: Vec<_> = report.results.iter().map(|(_, t)| t.clone()).collect();
        render_timeline(&traces, 100)
    };

    println!("flat Ok-Topk (every exchange crosses the oversubscribed fabric):");
    print!("{}", timeline(&flat));
    println!("\nhierarchical Ok-Topk (inter-node traffic funnelled through the leaders):");
    print!("{}", timeline(&hier));

    println!(
        "\nmakespan: flat {:.2} us -> hierarchical {:.2} us ({:.2}x faster)",
        flat.makespan() * 1e6,
        hier.makespan() * 1e6,
        flat.makespan() / hier.makespan()
    );
    println!(
        "nnz delivered: flat {} vs hierarchical {} (one re-selection per node \
         leader trades a little recall for {}x fewer fabric participants)",
        flat.results[0].0, hier.results[0].0, rpn
    );
}
