//! Hybrid data + pipeline parallelism with process groups — the paper's §6
//! future-work direction, exercised for real on the simulated cluster.
//!
//! A 2-stage × 4-replica grid trains a two-part model: stage 0 owns BertLite-style
//! "lower" parameters, stage 1 the "upper" ones (represented here by two
//! independent quadratic objectives so the example stays compact). Activations hop
//! between stages point-to-point; each stage's replicas run Ok-Topk within their
//! own data-parallel group, concurrently.
//!
//! Run with: `cargo run --release --example hybrid_parallel`

use oktopk::{OkTopkConfig, OkTopkSgd};
use rand::prelude::*;
use simnet::{Cluster, CostModel, GroupComm};

fn main() {
    let stages = 2usize;
    let replicas = 4usize;
    let p = stages * replicas;
    let n_stage = 2_000usize;
    let k = n_stage / 20;
    let iters = 150;

    // Each stage has its own optimum; replicas see noisy shards of it.
    let mut rng = StdRng::seed_from_u64(5);
    let targets: Vec<Vec<f32>> =
        (0..stages).map(|_| (0..n_stage).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();

    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let me = simnet::Comm::rank(comm);
        let stage = me / replicas;
        let replica = me % replicas;
        let members: Vec<usize> = (0..replicas).map(|r| stage * replicas + r).collect();

        let mut w = vec![0.0f32; n_stage];
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n_stage, k).with_periods(16, 16));
        let mut rng = StdRng::seed_from_u64(100 + me as u64);

        const TAG_ACT: u64 = 0x800;
        for it in 0..iters {
            // Pipeline hop: stage 0 ships an "activation" (here: a checksum of its
            // parameters) forward; stage 1 consumes it. Cross-stage traffic rides
            // the global communicator.
            if stage == 0 {
                let act = vec![w.iter().sum::<f32>()];
                simnet::Comm::send(comm, replicas + replica, TAG_ACT, act);
            } else {
                let _act: Vec<f32> = simnet::Comm::recv(comm, replica, TAG_ACT);
            }

            // Local gradient of ½‖w − target‖² on a noisy shard.
            let grad: Vec<f32> = w
                .iter()
                .zip(&targets[stage])
                .map(|(wi, ti)| (wi - ti) + 0.05 * rng.gen_range(-1.0f32..1.0))
                .collect();

            // Data-parallel Ok-Topk within the stage group, concurrent across stages.
            let mut group = GroupComm::new(comm, members.clone(), stage as u16 + 1);
            let lr = 0.3 / (1.0 + it as f32 / 50.0);
            let step = sgd.step(&mut group, &grad, lr);
            for (i, v) in step.update.iter() {
                w[i as usize] -= v;
            }
        }
        let err: f64 = w
            .iter()
            .zip(&targets[stage])
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        (stage, err, simnet::Comm::now(comm))
    });

    println!("hybrid 2-stage × 4-replica training with Ok-Topk per stage group:");
    for (rank, (stage, err, t)) in report.results.iter().enumerate() {
        println!(
            "  rank {rank} (stage {stage}): final ‖w − target‖ = {err:.3}, modeled time {t:.4}s"
        );
    }
    let worst = report.results.iter().map(|(_, e, _)| *e).fold(0.0f64, f64::max);
    let initial = (n_stage as f64 / 3.0).sqrt(); // E‖0 − U(−1,1)ⁿ‖
    println!("\nworst final error {worst:.3} vs initial ≈ {initial:.1} — both stages converged");
    println!("concurrently, each over its own sparse allreduce group.");
    assert!(worst < initial / 5.0, "stages failed to converge");
}
