//! BERT-style pre-training with the paper's Adam recipe (§5.4.3) at example
//! scale: sparse allreduce on raw gradients, Adam applied afterwards on the
//! global top-k support. Compares DenseOvlp, Gaussiank and Ok-Topk — the Fig. 13
//! trio — on 16 simulated workers and prints the masked-LM loss curves against
//! modeled time.
//!
//! Run with: `cargo run --release --example bert_pretrain_sim`

use dnn::data::SyntheticMaskedLm;
use dnn::models::BertLite;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn main() {
    let p = 16;
    let data = SyntheticMaskedLm::new(9);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 16)).collect();

    for scheme in [Scheme::DenseOvlp, Scheme::GaussianK, Scheme::OkTopk] {
        let mut cfg = TrainConfig::new(scheme, 0.01);
        cfg.iters = 160;
        cfg.local_batch = 2;
        cfg.optimizer = OptimizerKind::Adam { lr: 1e-3, weight_decay: 0.01 };
        cfg.tau = 32;
        cfg.tau_prime = 32;
        cfg.eval_every = 40;

        let d = data.clone();
        let res = run_data_parallel(
            p,
            &cfg,
            || BertLite::new(11),
            move |it, r, w| d.train_batch(it, r, w, 2),
            &eval,
        );

        println!("=== {} ===", scheme.name());
        for e in &res.evals {
            println!(
                "  iter {:>4}  modeled time {:>8.3}s  masked-LM loss {:.4}",
                e.t, e.time, e.loss
            );
        }
        println!();
    }
    println!("Expected: Ok-Topk's loss tracks DenseOvlp per iteration but arrives earlier.");
}
