//! Concurrent-caller stress for the okpar worker pool.
//!
//! `simnet` runs one OS thread per simulated rank, and several ranks hit the
//! parallel kernels at the same time — so the pool must accept concurrent
//! dispatches whose jobs interleave in one shared queue. This test runs 8
//! caller threads × mixed kernels (all three matmuls, threshold scan,
//! select-ge) with per-iteration thread counts up to 17 (far beyond the core
//! count), asserting every result is bit-identical to the serial reference.
//! Completion of the `std::thread::scope` doubles as the no-deadlock check:
//! a stuck dispatch would hang the join and trip the test harness timeout.

use dnn::ops::{matmul_acc_with_threads, matmul_acc_wt_with_threads, matmul_acc_xt_with_threads};
use sparse::scratch::{exact_threshold_with_threads, select_ge_with_threads, SelectScratch};

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let v = ((h >> 33) % 2000) as f32 / 1000.0 - 1.0;
            if v.abs() < 0.3 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

#[test]
fn eight_concurrent_callers_mixed_kernels_bit_identical() {
    const CALLERS: usize = 8;
    const ITERS: usize = 25;
    const THREADS: [usize; 4] = [2, 3, 8, 17];
    let (rows, inner, cols) = (13, 17, 11);
    let n = 6000;
    let k = 97;

    let x = pseudo(rows * inner, 1);
    let w = pseudo(inner * cols, 2);
    let dy = pseudo(rows * cols, 3);
    let dense = pseudo(n, 4);

    // Serial references, computed once up front.
    let mut out_ref = vec![0.125f32; rows * cols];
    matmul_acc_with_threads(&x, &w, &mut out_ref, rows, inner, cols, 1);
    let mut dx_ref = vec![0.25f32; rows * inner];
    matmul_acc_wt_with_threads(&dy, &w, &mut dx_ref, rows, inner, cols, 1);
    let mut dw_ref = vec![0.5f32; inner * cols];
    matmul_acc_xt_with_threads(&x, &dy, &mut dw_ref, rows, inner, cols, 1);
    let mut scratch0 = SelectScratch::new();
    let th_ref = exact_threshold_with_threads(&dense, k, &mut scratch0, 1);
    let sel_ref = select_ge_with_threads(&dense, th_ref, &mut scratch0, 1);

    std::thread::scope(|s| {
        for caller in 0..CALLERS {
            let (x, w, dy, dense) = (&x, &w, &dy, &dense);
            let (out_ref, dx_ref, dw_ref, sel_ref) = (&out_ref, &dx_ref, &dw_ref, &sel_ref);
            s.spawn(move || {
                let mut scratch = SelectScratch::new();
                for iter in 0..ITERS {
                    let threads = THREADS[(caller + iter) % THREADS.len()];

                    let mut out = vec![0.125f32; rows * cols];
                    matmul_acc_with_threads(x, w, &mut out, rows, inner, cols, threads);
                    assert_eq!(out, *out_ref, "acc caller={caller} iter={iter} t={threads}");

                    let mut dx = vec![0.25f32; rows * inner];
                    matmul_acc_wt_with_threads(dy, w, &mut dx, rows, inner, cols, threads);
                    assert_eq!(dx, *dx_ref, "wt caller={caller} iter={iter} t={threads}");

                    let mut dw = vec![0.5f32; inner * cols];
                    matmul_acc_xt_with_threads(x, dy, &mut dw, rows, inner, cols, threads);
                    assert_eq!(dw, *dw_ref, "xt caller={caller} iter={iter} t={threads}");

                    let th = exact_threshold_with_threads(dense, k, &mut scratch, threads);
                    assert_eq!(th.to_bits(), th_ref.to_bits(), "th caller={caller} iter={iter}");
                    let sel = select_ge_with_threads(dense, th, &mut scratch, threads);
                    assert_eq!(&sel, sel_ref, "sel caller={caller} iter={iter} t={threads}");
                    scratch.recycle(sel);
                }
            });
        }
    });
}
