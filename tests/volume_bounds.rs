//! Integration tests of the paper's communication-volume claims on *real trained
//! gradients* (not synthetic sparsity patterns): Theorem 3.1's bound and Table 1's
//! scaling behaviours, measured end-to-end through the simnet ledger.

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use dnn::Model;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{Cluster, CostModel};

/// Drive Ok-Topk SGD on real model gradients and check that steady-state per-rank
/// traffic respects 6k(P−1)/P (with tolerance for the ≈k threshold approximation).
#[test]
fn oktopk_volume_bound_holds_on_real_gradients() {
    let p = 8;
    let data = SyntheticImages::with_shape(3, 4, 3, 8, 0.5);
    let warmup = 40; // let residual scale stabilize so thresholds select ≈ k

    let run = |iters: usize| {
        let data = data.clone();
        Cluster::new(p, CostModel::aries()).run(move |comm| {
            let mut model = VggLite::with_width(5, 4, 8, 16, 4, 8);
            let n = model.num_params();
            let k = n / 20; // density 5%
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
            for t in 0..iters as u64 {
                let batch = data.train_batch(t, comm.rank(), comm.size(), 2);
                model.zero_grads();
                model.forward_backward(&batch);
                let step = sgd.step(comm, model.grads(), 0.05);
                let params = model.params_mut();
                for (i, v) in step.update.iter() {
                    params[i as usize] -= v;
                }
            }
            model.num_params()
        })
    };

    let short = run(warmup);
    let long = run(warmup + 8); // one extra τ-period: 8 steady iters incl. 1 re-eval
    let n = short.results[0];
    let k = n / 20;

    // Per-rank delta over the extra window, averaged per iteration. The window
    // contains one τ′ re-evaluation (amortized cost the paper models separately),
    // so allow the bound plus the amortized re-eval share.
    let bound = 6.0 * k as f64 * (p as f64 - 1.0) / p as f64;
    let reeval_allowance = 2.0 * k as f64 * (p as f64 - 1.0) / 8.0; // gather ÷ τ′
    for rank in 0..p {
        let delta =
            (long.ledger.rank_elements(rank) - short.ledger.rank_elements(rank)) as f64 / 8.0;
        assert!(
            delta <= (bound + reeval_allowance) * 1.35,
            "rank {rank}: {delta:.0} elements/iter vs bound {bound:.0} + reeval {reeval_allowance:.0}"
        );
    }
}

/// TopkA's per-rank volume grows ∝ P while Ok-Topk's stays ≈ flat, on the same
/// real gradients — the scalability contrast of Table 1 / Fig. 12.
#[test]
fn topka_grows_with_p_oktopk_does_not() {
    let data = SyntheticImages::with_shape(3, 4, 3, 8, 0.5);
    let measure = |p: usize, use_oktopk: bool| -> f64 {
        let data = data.clone();
        let report = Cluster::new(p, CostModel::aries()).run(move |comm| {
            let mut model = VggLite::with_width(5, 4, 8, 16, 4, 8);
            let n = model.num_params();
            let k = n / 20;
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(4, 4));
            for t in 0..6u64 {
                let batch = data.train_batch(t, comm.rank(), comm.size(), 2);
                model.zero_grads();
                model.forward_backward(&batch);
                if use_oktopk {
                    sgd.step(comm, model.grads(), 0.05);
                } else {
                    let local = sparse::select::topk_exact(model.grads(), k);
                    collectives::topk_allgather_allreduce(comm, local);
                }
            }
        });
        report.ledger.total_elements() as f64 / p as f64 / 6.0
    };

    let topka_4 = measure(4, false);
    let topka_16 = measure(16, false);
    let okt_4 = measure(4, true);
    let okt_16 = measure(16, true);

    // TopkA per-rank volume should roughly quadruple from P=4 to P=16…
    assert!(topka_16 > topka_4 * 3.0, "TopkA did not scale with P: {topka_4} -> {topka_16}");
    // …while Ok-Topk's grows by far less (re-eval share shrinks relative to P).
    assert!(okt_16 < okt_4 * 2.0, "Ok-Topk volume grew too fast: {okt_4} -> {okt_16}");
    // And Ok-Topk moves clearly less than TopkA at P=16 even with the short run's
    // heavy τ′ = 4 re-evaluation share folded in.
    assert!(okt_16 < topka_16 * 0.6, "okt {okt_16} vs topka {topka_16}");
}

/// The gTopk result always carries ≤ k entries regardless of fill-in pressure,
/// while TopkA's union grows — on real gradients.
#[test]
fn gtopk_bounds_result_size_topka_fills_in() {
    let p = 8;
    let data = SyntheticImages::with_shape(3, 4, 3, 8, 0.5);
    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let mut model = VggLite::with_width(5, 4, 8, 16, 4, 8);
        let n = model.num_params();
        let k = n / 50;
        let batch = data.train_batch(0, comm.rank(), comm.size(), 2);
        model.zero_grads();
        model.forward_backward(&batch);
        let local = sparse::select::topk_exact(model.grads(), k);
        let union = collectives::topk_allgather_allreduce(comm, local.clone());
        let gt = collectives::gtopk_allreduce(comm, local, k);
        (k, union.nnz(), gt.nnz())
    });
    for (k, union_nnz, gt_nnz) in &report.results {
        assert!(gt_nnz <= k, "gTopk overflowed k");
        assert!(*union_nnz > *k, "expected fill-in in the union: {union_nnz} vs k = {k}");
    }
}
