//! Cross-crate integration tests: data-parallel training through the whole stack
//! (dnn models → reducers → collectives/oktopk → simnet).

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use dnn::optim::Sgd;
use dnn::Model;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn small_images() -> SyntheticImages {
    SyntheticImages::with_shape(1, 4, 3, 8, 0.5)
}

fn small_vgg() -> VggLite {
    VggLite::with_width(7, 4, 8, 16, 4, 8)
}

/// P-rank dense data-parallel SGD must equal serial SGD on the concatenated
/// global batch (same model, same update: the averaged gradient).
#[test]
fn dense_data_parallel_equals_serial() {
    let p = 4;
    let local_batch = 2;
    let iters = 5;
    let data = small_images();

    // Serial reference: average the P shard gradients by hand each iteration.
    let mut serial = small_vgg();
    let mut opt = Sgd::new(0.05, 0.0, serial.num_params());
    for t in 0..iters as u64 {
        let mut avg = vec![0.0f32; serial.num_params()];
        for r in 0..p {
            let batch = data.train_batch(t, r, p, local_batch);
            serial.zero_grads();
            serial.forward_backward(&batch);
            for (a, g) in avg.iter_mut().zip(serial.grads()) {
                *a += g / p as f32;
            }
        }
        opt.step(serial.params_mut(), &avg);
    }

    // Distributed run.
    let mut cfg = TrainConfig::new(Scheme::Dense, 1.0);
    cfg.iters = iters;
    cfg.local_batch = local_batch;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
    let d2 = data.clone();
    let res = run_data_parallel(
        p,
        &cfg,
        small_vgg,
        move |it, r, w| d2.train_batch(it, r, w, local_batch),
        &[],
    );
    assert_eq!(res.records.len(), iters);

    // Compare final evaluation of both models on held-out data.
    let test = data.test_batch(0, 16);
    let serial_eval = serial.evaluate(&test);

    // Re-derive the distributed model's final state by replaying (the harness
    // doesn't return parameters): train one more distributed-style model locally
    // with identical averaging. Losses recorded per iteration must match the
    // serial losses up to f32 reduction order.
    let mut replay = small_vgg();
    let mut ropt = Sgd::new(0.05, 0.0, replay.num_params());
    for t in 0..iters as u64 {
        let mut avg = vec![0.0f32; replay.num_params()];
        let mut loss = 0.0;
        let mut count = 0usize;
        for r in 0..p {
            let batch = data.train_batch(t, r, p, local_batch);
            replay.zero_grads();
            let s = replay.forward_backward(&batch);
            loss += s.loss;
            count += s.count;
            for (a, g) in avg.iter_mut().zip(replay.grads()) {
                *a += g / p as f32;
            }
        }
        let mean_loss = loss / count as f64;
        let recorded = res.records[t as usize].train_loss;
        assert!(
            (mean_loss - recorded).abs() < 1e-3 * (1.0 + mean_loss.abs()),
            "iter {t}: serial loss {mean_loss} vs distributed {recorded}"
        );
        ropt.step(replay.params_mut(), &avg);
    }
    let replay_eval = replay.evaluate(&test);
    assert!((serial_eval.mean_loss() - replay_eval.mean_loss()).abs() < 1e-5);
}

/// Training records from every scheme are deterministic across repeated runs.
#[test]
fn all_schemes_deterministic() {
    let data = small_images();
    for scheme in Scheme::all() {
        let mut cfg = TrainConfig::new(scheme, 0.05);
        cfg.iters = 4;
        cfg.local_batch = 2;
        cfg.tau = 2;
        cfg.tau_prime = 2;
        let run = || {
            let d = data.clone();
            run_data_parallel(3, &cfg, small_vgg, move |it, r, w| d.train_batch(it, r, w, 2), &[])
        };
        let a = run();
        let b = run();
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.train_loss, y.train_loss, "{}", scheme.name());
            assert_eq!(x.comm, y.comm, "{}", scheme.name());
        }
        assert_eq!(a.makespan, b.makespan, "{}", scheme.name());
    }
}

/// At density 1.0 with exact selection, TopkA reduces to a dense allreduce:
/// its training losses must match Dense's almost exactly.
#[test]
fn sparse_at_full_density_matches_dense() {
    let data = small_images();
    let run = |scheme: Scheme| {
        let mut cfg = TrainConfig::new(scheme, 1.0);
        cfg.iters = 5;
        cfg.local_batch = 2;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        let d = data.clone();
        run_data_parallel(2, &cfg, small_vgg, move |it, r, w| d.train_batch(it, r, w, 2), &[])
    };
    let dense = run(Scheme::Dense);
    let topka = run(Scheme::TopkA);
    for (a, b) in dense.records.iter().zip(&topka.records) {
        assert!(
            (a.train_loss - b.train_loss).abs() < 1e-3 * (1.0 + a.train_loss.abs()),
            "dense {} vs topka {}",
            a.train_loss,
            b.train_loss
        );
    }
}

/// Ok-Topk training reaches a test accuracy close to Dense's on the image task
/// (the Fig. 9 claim at integration-test scale).
#[test]
fn oktopk_accuracy_close_to_dense() {
    let data = small_images();
    let eval: Vec<_> = (0..2).map(|b| data.test_batch(b, 16)).collect();
    let run = |scheme: Scheme| {
        let mut cfg = TrainConfig::new(scheme, 0.1);
        cfg.iters = 60;
        cfg.local_batch = 4;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        cfg.lr_decay_iters = 30;
        cfg.tau = 8;
        cfg.tau_prime = 8;
        cfg.eval_every = 60;
        let d = data.clone();
        run_data_parallel(4, &cfg, small_vgg, move |it, r, w| d.train_batch(it, r, w, 4), &eval)
    };
    let dense_acc = run(Scheme::Dense).evals.last().expect("eval").accuracy;
    let okt_acc = run(Scheme::OkTopk).evals.last().expect("eval").accuracy;
    assert!(dense_acc > 0.5, "dense failed to learn: {dense_acc}");
    assert!(
        okt_acc > dense_acc - 0.15,
        "Ok-Topk accuracy {okt_acc} too far below dense {dense_acc}"
    );
}
