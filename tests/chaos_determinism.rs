//! Chaos determinism: the same `ChaosPlan` seed must reproduce bit-identical
//! gradients and identical virtual-time trajectories across runs, for every
//! allreduce variant. This is the guarantee that makes fault-injection sweeps
//! debuggable — a regression under chaos replays exactly.

use simnet::{ChaosPlan, Cluster, Comm, CostModel};
use train::{CostProfile, Reducer, Scheme, Update};

const P: usize = 4;
const N: usize = 512;
const ITERS: usize = 3;

/// Deterministic per-rank gradient: smooth with a few spikes so sparse schemes
/// have meaningful top-k structure.
fn grad(rank: usize, iter: usize) -> Vec<f32> {
    (0..N)
        .map(|i| {
            let x = (i * (rank + 2) + iter * 31) as f32;
            let spike = if i % 97 == rank * 7 { 4.0 } else { 0.0 };
            (x * 0.01).sin() * 0.3 + spike
        })
        .collect()
}

fn plan() -> ChaosPlan {
    ChaosPlan::new(2024)
        .straggler(1, 2.0)
        .straggler_window(3, 1.5, 0.0, 0.5)
        .degrade_all_links(1.2, 1.5, 0.0, 0.2)
        .jitter(5e-5)
        .pause(2, 0.01, 0.05)
}

/// One rank's observable outcome: the update's exact bits plus the virtual
/// clock after every iteration.
#[derive(PartialEq, Debug)]
struct RankTrajectory {
    update_bits: Vec<u32>,
    times: Vec<f64>,
}

fn run_scheme(scheme: Scheme) -> Vec<RankTrajectory> {
    let report = Cluster::new(P, CostModel::aries()).with_chaos(plan()).run(|comm: &mut Comm| {
        let mut reducer = Reducer::new(scheme, N, 0.05, CostProfile::paper_calibrated(), 8, 8);
        let mut update_bits = Vec::new();
        let mut times = Vec::new();
        for it in 0..ITERS {
            let g = grad(comm.rank(), it);
            let (update, _) = reducer.reduce(comm, &g, 0.1);
            match update {
                Update::Dense(v) => update_bits.extend(v.iter().map(|x| x.to_bits())),
                Update::Sparse(coo) => {
                    update_bits.extend(coo.indexes().iter().copied());
                    update_bits.extend(coo.values().iter().map(|x| x.to_bits()));
                }
            }
            times.push(comm.now());
        }
        RankTrajectory { update_bits, times }
    });
    report.results
}

#[test]
fn same_seed_replays_every_scheme_bit_identically() {
    for scheme in Scheme::all() {
        let a = run_scheme(scheme);
        let b = run_scheme(scheme);
        assert_eq!(a, b, "{} must replay bit-identically under the same plan", scheme.name());
        // The plan genuinely perturbed the run: rank 1 (2x straggler) must not
        // finish its first iteration at the same time as rank 0.
        assert!(
            (a[1].times[0] - a[0].times[0]).abs() > 0.0,
            "{}: straggler left no trace in the trajectory",
            scheme.name()
        );
    }
}

#[test]
fn different_jitter_seeds_diverge_in_time_but_not_in_math() {
    // Timing perturbations must never change *what* is computed, only *when*:
    // jitter with a different seed yields different clocks but identical bits.
    let run = |seed: u64| {
        Cluster::new(P, CostModel::aries()).with_chaos(ChaosPlan::new(seed).jitter(1e-4)).run(
            |comm: &mut Comm| {
                let mut reducer =
                    Reducer::new(Scheme::OkTopk, N, 0.05, CostProfile::paper_calibrated(), 8, 8);
                let mut bits = Vec::new();
                for it in 0..ITERS {
                    let g = grad(comm.rank(), it);
                    if let (Update::Sparse(coo), _) = reducer.reduce(comm, &g, 0.1) {
                        bits.extend(coo.indexes().iter().copied());
                        bits.extend(coo.values().iter().map(|x| x.to_bits()));
                    }
                }
                (bits, comm.now())
            },
        )
    };
    let a = run(1);
    let b = run(2);
    for rank in 0..P {
        assert_eq!(a.results[rank].0, b.results[rank].0, "math must not depend on the seed");
    }
    assert!(
        (0..P).any(|r| a.results[r].1 != b.results[r].1),
        "different jitter seeds should shift some clock"
    );
}
