//! Cross-engine differential test: every allreduce scheme, run under the
//! thread engine (the original, kernel-scheduled oracle) and the discrete-event
//! engine, must produce bit-identical updates, virtual-clock trajectories and
//! traffic ledgers — clean and under chaos. This is the guarantee that lets
//! the event engine carry P ≥ 1024 sweeps while the thread engine vouches for
//! its correctness at small P.

use proptest::prelude::*;
use simnet::{ChaosPlan, Cluster, Comm, CostModel, Engine};
use train::{CostProfile, Reducer, Scheme, Update};

const P: usize = 8;
const N: usize = 512;
const ITERS: usize = 3;

/// Deterministic per-rank gradient: smooth with a few spikes so sparse schemes
/// have meaningful top-k structure.
fn grad(n: usize, rank: usize, iter: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i * (rank + 2) + iter * 31) as f32;
            let spike = if i % 97 == rank * 7 { 4.0 } else { 0.0 };
            (x * 0.01).sin() * 0.3 + spike
        })
        .collect()
}

fn plan(p: usize) -> ChaosPlan {
    ChaosPlan::new(2024)
        .straggler(1 % p, 2.0)
        .straggler_window(3 % p, 1.5, 0.0, 0.5)
        .degrade_all_links(1.2, 1.5, 0.0, 0.2)
        .jitter(5e-5)
        .pause(2 % p, 0.01, 0.05)
}

/// One rank's observable outcome: the update's exact bits plus the virtual
/// clock after every iteration.
#[derive(PartialEq, Debug)]
struct RankTrajectory {
    update_bits: Vec<u32>,
    times: Vec<f64>,
}

/// Everything an engine can influence if it breaks determinism.
#[derive(PartialEq, Debug)]
struct RunOutcome {
    trajectories: Vec<RankTrajectory>,
    final_times: Vec<f64>,
    ledger_elements: u64,
    ledger_messages: u64,
}

fn run_scheme(
    scheme: Scheme,
    engine: Engine,
    p: usize,
    n: usize,
    iters: usize,
    chaos: Option<ChaosPlan>,
) -> RunOutcome {
    let mut cluster = Cluster::new(p, CostModel::aries()).with_engine(engine);
    if let Some(plan) = chaos {
        cluster = cluster.with_chaos(plan);
    }
    let report = cluster.run(|comm: &mut Comm| {
        let mut reducer = Reducer::new(scheme, n, 0.05, CostProfile::paper_calibrated(), 8, 8);
        let mut update_bits = Vec::new();
        let mut times = Vec::new();
        for it in 0..iters {
            let g = grad(n, comm.rank(), it);
            let (update, _) = reducer.reduce(comm, &g, 0.1);
            match update {
                Update::Dense(v) => update_bits.extend(v.iter().map(|x| x.to_bits())),
                Update::Sparse(coo) => {
                    update_bits.extend(coo.indexes().iter().copied());
                    update_bits.extend(coo.values().iter().map(|x| x.to_bits()));
                }
            }
            times.push(comm.now());
        }
        RankTrajectory { update_bits, times }
    });
    RunOutcome {
        trajectories: report.results,
        final_times: report.times,
        ledger_elements: report.ledger.total_elements(),
        ledger_messages: report.ledger.total_messages(),
    }
}

#[test]
fn every_scheme_is_bit_identical_across_engines_clean() {
    for scheme in Scheme::all() {
        let thread = run_scheme(scheme, Engine::Thread, P, N, ITERS, None);
        let event = run_scheme(scheme, Engine::Event, P, N, ITERS, None);
        assert_eq!(thread, event, "{} diverged across engines (clean)", scheme.name());
    }
}

#[test]
fn every_scheme_is_bit_identical_across_engines_under_chaos() {
    for scheme in Scheme::all() {
        let thread = run_scheme(scheme, Engine::Thread, P, N, ITERS, Some(plan(P)));
        let event = run_scheme(scheme, Engine::Event, P, N, ITERS, Some(plan(P)));
        assert_eq!(thread, event, "{} diverged across engines (chaos)", scheme.name());
        // The plan genuinely perturbed the run; parity on an unperturbed run
        // would prove nothing about the chaos charging paths.
        assert!(
            (event.trajectories[1].times[0] - event.trajectories[0].times[0]).abs() > 0.0,
            "{}: straggler left no trace in the trajectory",
            scheme.name()
        );
    }
}

#[test]
fn ok_topk_parity_holds_at_p64() {
    // One larger spot-check: 64 ranks is past where scheduling interleavings
    // get genuinely wild, and it is the issue's upper bound for oracle runs.
    let thread = run_scheme(Scheme::OkTopk, Engine::Thread, 64, 256, 2, None);
    let event = run_scheme(Scheme::OkTopk, Engine::Event, 64, 256, 2, None);
    assert_eq!(thread, event, "Ok-Topk diverged across engines at P=64");
}

/// Build a randomized chaos plan from a seed; every knob the charging paths
/// consult gets exercised across the case set.
fn random_plan(seed: u64, p: usize) -> ChaosPlan {
    let mut plan = ChaosPlan::new(seed);
    if seed % 2 == 0 {
        plan = plan.straggler(seed as usize % p, 1.0 + (seed % 5) as f64 * 0.4);
    }
    if seed % 3 == 0 {
        plan = plan.degrade_all_links(1.0 + (seed % 4) as f64 * 0.2, 1.3, 0.0, 0.3);
    }
    if seed % 5 != 0 {
        plan = plan.jitter(1e-5 * ((seed % 7) + 1) as f64);
    }
    plan.pause((seed as usize / 2) % p, 0.005, 0.02)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random scheme × random P ≤ 16 × random chaos plan: the engines must
    /// still agree bit-for-bit. Small N and 2 iterations keep each case cheap;
    /// the case count still covers every scheme family over a run.
    #[test]
    fn engines_agree_on_random_scheme_p_and_chaos(
        scheme_idx in 0usize..7,
        p in 2usize..=16,
        seed in 0u64..1_000_000,
        chaotic in 0usize..2,
    ) {
        let scheme = Scheme::all()[scheme_idx];
        let chaos = if chaotic == 1 { Some(random_plan(seed, p)) } else { None };
        let thread = run_scheme(scheme, Engine::Thread, p, 256, 2, chaos.clone());
        let event = run_scheme(scheme, Engine::Event, p, 256, 2, chaos);
        prop_assert_eq!(thread, event);
    }
}
