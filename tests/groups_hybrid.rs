//! Integration tests for process groups: concurrent per-group collectives and a
//! genuine (small) hybrid data+pipeline-shaped exchange, all on real data.

use collectives::{allreduce_inplace, topk_allgather_allreduce};
use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::{Cluster, CostModel, GroupComm};
use sparse::select::topk_exact;
use sparse::CooGradient;

/// Two disjoint data-parallel groups run Ok-Topk allreduce *concurrently*; each
/// group's result equals its own serial reference and never mixes with the other's.
#[test]
fn concurrent_group_oktopk_allreduces() {
    let p = 8;
    let n = 256;
    let k = 32;
    let mut rng = StdRng::seed_from_u64(3);
    let accs: Vec<Vec<f32>> =
        (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();

    // Serial reference per group with the same selection semantics (τ′ = 1).
    let reference = |members: &[usize]| -> CooGradient {
        let mut sum = CooGradient::new();
        for &r in members {
            let th = sparse::select::exact_threshold(&accs[r], k);
            sum.merge_sum_into(&sparse::select::select_ge(&accs[r], th));
        }
        let th = sparse::select::exact_threshold(sum.values(), k);
        sum.filter_abs_ge(th)
    };
    let expect_a = reference(&[0, 1, 2, 3]);
    let expect_b = reference(&[4, 5, 6, 7]);

    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let me = simnet::Comm::rank(comm);
        let (members, gid) =
            if me < 4 { (vec![0, 1, 2, 3], 1u16) } else { (vec![4, 5, 6, 7], 2u16) };
        let mut group = GroupComm::new(comm, members, gid);
        let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1, 1));
        okt.allreduce(&mut group, &accs[me], 1).update
    });
    for r in 0..4 {
        assert_eq!(report.results[r].indexes(), expect_a.indexes(), "group A rank {r}");
    }
    for r in 4..8 {
        assert_eq!(report.results[r].indexes(), expect_b.indexes(), "group B rank {r}");
    }
    assert_ne!(expect_a, expect_b);
}

/// A 2-stage × 2-replica hybrid exchange: stages pass "activations" point-to-point
/// on the global communicator while each stage's replicas allreduce their own
/// gradient shard in a group — the paper's §6 hybrid-parallelism pattern, for real.
#[test]
fn hybrid_grid_activations_and_group_gradients() {
    let p = 4; // grid: stage = rank / 2, replica = rank % 2
    let n_stage = 64;
    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let me = simnet::Comm::rank(comm);
        let stage = me / 2;
        let replica = me % 2;

        // "Forward": stage 0 sends a per-replica activation to stage 1.
        const TAG_ACT: u64 = 0x700;
        let activation: Vec<f32> = if stage == 0 {
            let act = vec![me as f32 + 0.5; 8];
            simnet::Comm::send(comm, 2 + replica, TAG_ACT, act.clone());
            act
        } else {
            simnet::Comm::recv(comm, replica, TAG_ACT)
        };

        // "Backward": every rank produces a gradient for its stage's parameters.
        let grad: Vec<f32> =
            (0..n_stage).map(|i| (me as f32 + 1.0) * ((i % 5) as f32 - 2.0)).collect();

        // Per-stage data-parallel group allreduce (dense here, for exactness).
        let members = vec![stage * 2, stage * 2 + 1];
        let mut group = GroupComm::new(comm, members, stage as u16 + 1);
        let mut sum = grad.clone();
        allreduce_inplace(&mut group, &mut sum);
        (activation, sum)
    });

    // Stage-1 ranks received stage-0's activations.
    assert_eq!(report.results[2].0, vec![0.5f32; 8]);
    assert_eq!(report.results[3].0, vec![1.5f32; 8]);
    // Each stage's gradient sum is over its own replicas only:
    // stage 0: ranks 0+1 → factor 1+2 = 3; stage 1: ranks 2+3 → factor 3+4 = 7.
    for i in 0..n_stage {
        let base = ((i % 5) as f32) - 2.0;
        assert_eq!(report.results[0].1[i], 3.0 * base);
        assert_eq!(report.results[1].1[i], 3.0 * base);
        assert_eq!(report.results[2].1[i], 7.0 * base);
        assert_eq!(report.results[3].1[i], 7.0 * base);
    }
}

/// Sparse baselines also run inside groups (generic over Net), with per-group
/// results matching per-group serial references.
#[test]
fn sparse_baselines_inside_groups() {
    let p = 6; // two groups of 3
    let n = 200;
    let k = 20;
    let mut rng = StdRng::seed_from_u64(11);
    let locals: Vec<CooGradient> = (0..p)
        .map(|_| {
            let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            topk_exact(&dense, k)
        })
        .collect();
    let reference = |members: &[usize]| -> CooGradient {
        let group_locals: Vec<CooGradient> = members.iter().map(|&r| locals[r].clone()).collect();
        CooGradient::merge_sum_many(&group_locals)
    };
    let expect_a = reference(&[0, 1, 2]);
    let expect_b = reference(&[3, 4, 5]);

    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let me = simnet::Comm::rank(comm);
        let (members, gid) = if me < 3 { (vec![0, 1, 2], 1u16) } else { (vec![3, 4, 5], 2u16) };
        let mut group = GroupComm::new(comm, members, gid);
        topk_allgather_allreduce(&mut group, locals[me].clone())
    });
    for r in 0..3 {
        assert_eq!(report.results[r], expect_a, "group A rank {r}");
    }
    for r in 3..6 {
        assert_eq!(report.results[r], expect_b, "group B rank {r}");
    }
}
