//! Integration tests of the convergence claims (§4, §5) at test scale.

use dnn::data::{SyntheticMaskedLm, SyntheticSequences};
use dnn::models::{BertLite, LstmNet};
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

/// LSTM WER proxy improves markedly under Ok-Topk (the Fig. 11 claim).
#[test]
fn lstm_wer_improves_under_oktopk() {
    let data = SyntheticSequences::with_shape(2, 12, 10, 0.9);
    let eval: Vec<_> = (0..2).map(|b| data.test_batch(b, 16)).collect();
    let mut cfg = TrainConfig::new(Scheme::OkTopk, 0.1);
    cfg.iters = 80;
    cfg.local_batch = 4;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.4 };
    cfg.lr_decay_iters = 40;
    cfg.tau = 8;
    cfg.tau_prime = 8;
    cfg.eval_every = 40;
    let d = data.clone();
    let res = run_data_parallel(
        4,
        &cfg,
        || LstmNet::with_width(3, 12, 16, 32),
        move |it, r, w| d.train_batch(it, r, w, 4),
        &eval,
    );
    let first_wer = 1.0 - res.evals.first().expect("eval").accuracy;
    let last_wer = 1.0 - res.evals.last().expect("eval").accuracy;
    assert!(
        last_wer < first_wer && last_wer < 0.75,
        "WER did not improve: {first_wer} -> {last_wer}"
    );
}

/// BERT masked-LM loss under the Adam-after-sparse-allreduce recipe decreases
/// and tracks dense training reasonably (the Fig. 13 claim).
#[test]
fn bert_adam_recipe_converges() {
    let data = SyntheticMaskedLm::with_shape(4, 16, 12, 0.2);
    let eval: Vec<_> = (0..2).map(|b| data.test_batch(b, 16)).collect();
    let run = |scheme: Scheme| {
        // Density 0.1: at this tiny proxy scale, 5% density starves the single
        // attention block of gradient signal for hundreds of iterations; 10%
        // keeps the sparse run tracking dense within the asserted band.
        let mut cfg = TrainConfig::new(scheme, 0.1);
        // The loss sits at the unigram-entropy plateau (≈2.5) until roughly
        // iteration 200 before attention picks up the bigram structure, so the
        // run must extend well past that point for the <2.4 assertion to have
        // margin rather than race the plateau escape.
        cfg.iters = 300;
        cfg.local_batch = 4;
        cfg.optimizer = OptimizerKind::Adam { lr: 5e-3, weight_decay: 0.0 };
        cfg.tau = 8;
        cfg.tau_prime = 8;
        cfg.eval_every = 150;
        let d = data.clone();
        run_data_parallel(
            4,
            &cfg,
            || BertLite::with_width(6, 16, 32, 2, 1, 64, 12),
            move |it, r, w| d.train_batch(it, r, w, 4),
            &eval,
        )
    };
    let dense = run(Scheme::DenseOvlp);
    let okt = run(Scheme::OkTopk);
    let dense_final = dense.evals.last().expect("eval").loss;
    let okt_first = okt.evals.first().expect("eval").loss;
    let okt_final = okt.evals.last().expect("eval").loss;
    assert!(okt_final < okt_first, "Ok-Topk loss did not decrease");
    // Chance level is ln(15) ≈ 2.71; both must clearly beat it, and Ok-Topk must
    // stay within a reasonable band of the lossless baseline.
    assert!(dense_final < 2.4, "dense failed to learn: {dense_final}");
    assert!(okt_final < dense_final + 0.6, "Ok-Topk {okt_final} too far above dense {dense_final}");
    // Ok-Topk must reach its final state in less modeled time.
    let dense_time = dense.evals.last().expect("eval").time;
    let okt_time = okt.evals.last().expect("eval").time;
    assert!(okt_time < dense_time, "Ok-Topk modeled time {okt_time} not below dense {dense_time}");
}

/// ξ stays bounded (Assumption 1) over a real training run.
#[test]
fn xi_stays_bounded_during_training() {
    let data = SyntheticSequences::with_shape(2, 12, 10, 0.9);
    let mut cfg = TrainConfig::new(Scheme::OkTopk, 0.1);
    cfg.iters = 40;
    cfg.local_batch = 4;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.2 };
    cfg.tau = 8;
    cfg.tau_prime = 8;
    cfg.measure_xi_every = 5;
    let p = 4;
    let d = data.clone();
    let res = run_data_parallel(
        p,
        &cfg,
        || LstmNet::with_width(3, 12, 16, 32),
        move |it, r, w| d.train_batch(it, r, w, 4),
        &[],
    );
    let xis: Vec<f64> = res.records.iter().filter_map(|r| r.xi).collect();
    assert_eq!(xis.len(), 8);
    for xi in &xis {
        assert!(xi.is_finite() && *xi >= 0.0);
        // The paper's criterion: ξ not too much larger than P.
        assert!(*xi < 4.0 * p as f64, "xi = {xi} blew past P = {p}");
    }
}
