#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
#
#   ./scripts/check.sh          # build + lints + full test suite + quick bench gates
#
# The benches run in --quick --gate mode (a few seconds each):
#
# - hotpath fails the script if any *_serial_vs_parallel speedup at the default
#   thread count drops below 0.98, or the scan_scalar_vs_simd headline drops
#   below 1.5, unless the row is flagged serial_fallback (the adaptive
#   granularity policy chose 1 thread, or the host resolved to the scalar lane
#   path — parallel == serial by design, e.g. on a single-core/non-SIMD host).
#   It also fails if the obs_off_vs_on row shows the metrics registry costing
#   more than 2% on a messaging-heavy collective workload.
# - msgpath fails the script if the pooled message path loses to the boxed
#   baseline (speedup < 1.0) at P = 16.
# - chaos runs a tiny P=4 robustness sweep and fails the script if any
#   perturbed cell beats its clean baseline (chaos must never help) or if a
#   repeated chaos run is not bit-identical.
# - hier runs a P=8 flat-vs-hierarchical slice on a two-tier topology and
#   fails the script if Hier-Ok-Topk does not beat flat Ok-Topk once the
#   effective inter/intra beta ratio reaches 8x, if a repeated cell is not
#   bit-identical, or if inter-link chaos speeds any cell up.
# - scale checks thread/event engine bit-parity at P=32, then fails the script
#   if the event engine cannot run Ok-Topk at P=1024 inside its wall/memory
#   budget, if the P=2048 headline misses its 30 s budget (>= 1.5x over the
#   PR 7 baseline) or reports a zero scheduler handoff rate, or if the thread
#   engine *can* keep within 1.25x of the event engine's wall at P=1024 (the
#   virtual-time scheduler must be what buys P>=1024). The thread probe skips
#   cleanly on hosts that cannot spawn that many OS threads.
# - fig10 --paper-axis sweeps the weak-scaling axis to P=4096 on the event
#   engine (clean + one chaos cell) under a hard wall budget; fig8/fig12 run
#   the same sweep with CHECK_PAPER_AXIS=1.
#
# Quick numbers go to target/*-gate.json so they never overwrite the checked-in
# full-run BENCH_PR6.json / BENCH_PR4.json / BENCH_PR5.json / BENCH_PR7.json /
# BENCH_PR9.json / BENCH_PR10.json; regenerate those with
#   cargo run --release -p okbench --bin hotpath
#   cargo run --release -p okbench --bin msgpath
#   cargo run --release -p okbench --bin chaos
#   cargo run --release -p okbench --bin scale
#   cargo run --release -p okbench --bin hier
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --check

echo "== tests =="
cargo test -q --workspace

echo "== tests (forced-scalar: OKTOPK_SIMD=off) =="
# The lane kernels promise bit-identical results on the scalar fallback path;
# re-run the crates that dispatch through sparse::simd with SIMD forced off so
# that path stays green, not just compiled.
OKTOPK_SIMD=off cargo test -q -p sparse -p dnn -p oktopk

echo "== tests (event engine: SIMNET_ENGINE=event) =="
# The discrete-event engine promises bit-identical behaviour to the thread
# engine; re-run every simnet-driven suite with the event engine as the
# default so the whole stack exercises the parked-continuation path.
SIMNET_ENGINE=event cargo test -q --workspace

echo "== tests (classic scheduler: SIMNET_SCHED=classic) =="
# The event engine's fast dispatch path (direct handoff, cohort wakeups,
# adaptive spin) promises bit-identical behaviour to the classic
# lock/condvar path; re-run the simnet-driven suites with the event engine
# as default and the classic scheduler pinned so the kill-switch fallback
# never rots.
SIMNET_ENGINE=event SIMNET_SCHED=classic cargo test -q -p simnet -p okpar -p train -p okbench

echo "== tests (two-tier topology default: SIMNET_TOPO=2x8) =="
# A session-wide shape-only topology must be timing-neutral: it changes node
# grouping and tier byte accounting but no modeled clock, so the entire suite
# must stay green (and flat schemes bit-identical) with it installed.
SIMNET_TOPO=2x8 cargo test -q --workspace

echo "== tests (observability off: OKTOPK_OBS=off) =="
# The obs kill switch promises zero behavioural difference: every result,
# clock and ledger must be unchanged with the metrics registry disabled.
# Run the suites that instrument the hot paths with obs forced off.
OKTOPK_OBS=off cargo test -q -p simnet -p okpar -p train -p okbench

echo "== obs trace export (obsdump, schema-checked) =="
# The profiling command must produce a loadable Perfetto trace end to end.
cargo run --release -p okbench --bin obsdump -- --ranks 2 --iters 2 \
  --engine event --out target/obsdump-trace.json > /dev/null

echo "== hot-path bench (quick, gated) =="
cargo run --release -p okbench --bin hotpath -- --quick --gate --out target/hotpath-gate.json

echo "== message-path bench (quick, gated) =="
cargo run --release -p okbench --bin msgpath -- --quick --gate --out target/msgpath-gate.json

echo "== chaos robustness smoke (P=4, gated) =="
cargo run --release -p okbench --bin chaos -- --gate --out target/chaos-gate.json

echo "== flat-vs-hierarchical smoke (P=8 two-tier, gated) =="
cargo run --release -p okbench --bin hier -- --gate --out target/hier-gate.json

echo "== scale sweep smoke (P=1024 budget + P=2048 headline, gated) =="
cargo run --release -p okbench --bin scale -- --gate --out target/scale-gate.json

echo "== paper-axis weak scaling to P=4096 (fig10, budgeted) =="
# The fig8/10/12 harnesses sweep the paper's full 256-4096 cluster axis on
# the event engine with --paper-axis (clean + one chaos cell at P=4096).
# The default gate runs the cheapest of the three (fig10's LSTM stand-in,
# ~3 min single-core) under a hard wall budget; fig8 and fig12 carry larger
# models (~12 min each) and run under the same budget with CHECK_PAPER_AXIS=1
# (measured walls in EXPERIMENTS.md).
timeout 900 cargo run --release -p okbench --bin fig10 -- --paper-axis
if [[ "${CHECK_PAPER_AXIS:-0}" == "1" ]]; then
  timeout 900 cargo run --release -p okbench --bin fig8 -- --paper-axis
  timeout 900 cargo run --release -p okbench --bin fig12 -- --paper-axis
fi

echo "OK: all gates passed"
