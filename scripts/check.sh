#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
#
#   ./scripts/check.sh          # build + full test suite + quick hot-path bench
#
# The hot-path bench runs in --quick mode (a few seconds) and refreshes
# BENCH_PR1.json; inspect the per-bench speedups before posting perf claims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== hot-path bench (quick) =="
cargo run --release -p okbench --bin hotpath -- --quick

echo "OK: all gates passed"
