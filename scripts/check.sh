#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before review.
#
#   ./scripts/check.sh          # build + full test suite + quick hot-path gate
#
# The hot-path bench runs in --quick --gate mode (a few seconds): it fails the
# script if any *_serial_vs_parallel speedup at the default thread count drops
# below 0.98, unless the row is flagged serial_fallback (the adaptive
# granularity policy chose 1 thread — parallel == serial by design, e.g. on a
# single-core host). Quick numbers go to target/hotpath-gate.json so they never
# overwrite the checked-in full-run BENCH_PR2.json; regenerate that with
#   cargo run --release -p okbench --bin hotpath
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== hot-path bench (quick, gated) =="
cargo run --release -p okbench --bin hotpath -- --quick --gate --out target/hotpath-gate.json

echo "OK: all gates passed"
