//! Intra-rank data parallelism policy for the hot-path kernels.
//!
//! Every parallel kernel in this workspace (the dense matmuls in `dnn`, the
//! threshold scan and quickselect magnitude pass in `sparse`) asks this crate
//! how many worker threads to use and how to partition its index space. Keeping
//! the policy in one place gives a single knob — the `OKTOPK_THREADS`
//! environment variable, or [`set_threads`] programmatically — and one
//! partitioning rule, so the deterministic chunk-merge contract (bit-identical
//! output to the serial kernel, any thread count) is auditable in one file.
//!
//! Resolution order for the thread count:
//! 1. the last [`set_threads`] call, if any;
//! 2. `OKTOPK_THREADS` (positive integer) read once at first use;
//! 3. [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on worker threads; far above any sane `OKTOPK_THREADS` setting,
/// guards against pathological env values allocating huge chunk tables.
pub const MAX_THREADS: usize = 256;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0); // 0 = no override
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

fn env_default() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var("OKTOPK_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_THREADS);
                }
            }
            eprintln!("okpar: ignoring invalid OKTOPK_THREADS={raw:?} (want a positive integer)");
        }
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

/// Number of worker threads the parallel kernels will use (>= 1).
pub fn configured_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_default(),
        n => n,
    }
}

/// Override the thread count process-wide (e.g. from a bench harness sweeping
/// thread counts). `set_threads(0)` clears the override, returning control to
/// `OKTOPK_THREADS` / available parallelism.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// Split `0..len` into at most `threads` contiguous ranges of near-equal size
/// (first `len % threads` ranges get one extra element). Never returns empty
/// ranges: fewer chunks than `threads` when `len < threads`, and an empty
/// vector only when `len == 0`.
///
/// Every parallel kernel MUST consume these ranges in order when merging so
/// the result is bit-identical to a serial left-to-right pass.
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, MAX_THREADS);
    if len == 0 {
        return Vec::new();
    }
    let chunks = threads.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_in_order() {
        for len in [0usize, 1, 2, 3, 7, 8, 100, 101] {
            for threads in [1usize, 2, 3, 4, 7, 16] {
                let ranges = chunk_ranges(len, threads);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "len={len} threads={threads}");
                    assert!(!r.is_empty(), "len={len} threads={threads}");
                    expect = r.end;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
                assert!(ranges.len() <= threads.min(len.max(1)));
            }
        }
    }

    #[test]
    fn chunk_sizes_balanced() {
        let ranges = chunk_ranges(10, 4); // 3,3,2,2
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn configured_threads_positive_and_overridable() {
        assert!(configured_threads() >= 1);
        set_threads(3);
        assert_eq!(configured_threads(), 3);
        set_threads(0);
        assert!(configured_threads() >= 1);
    }
}
