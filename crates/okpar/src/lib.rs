//! Intra-rank data parallelism for the hot-path kernels: thread-count policy,
//! deterministic chunk partitioning, and a persistent worker pool.
//!
//! Every parallel kernel in this workspace (the dense matmuls in `dnn`, the
//! threshold scan and quickselect magnitude pass in `sparse`) asks this crate
//! how many worker threads to use, how to partition its index space, and — via
//! [`run_chunks`] / [`run_tasks`] — where to run the pieces. Keeping policy and
//! dispatch in one place gives a single knob (the `OKTOPK_THREADS` environment
//! variable, or [`set_threads`] programmatically), one partitioning rule, and
//! one pool, so the deterministic chunk-merge contract (bit-identical output to
//! the serial kernel, any thread count) is auditable in one crate.
//!
//! Resolution order for the thread count:
//! 1. the last [`set_threads`] call, if any;
//! 2. `OKTOPK_THREADS` (positive integer) read once at first use;
//! 3. [`std::thread::available_parallelism`].
//!
//! `set_threads` also *resizes* (grows) the already-running pool, so bench
//! thread sweeps take effect immediately. Mutating the `OKTOPK_THREADS`
//! environment variable after first use cannot take effect (the value is
//! snapshotted); the pool detects the drift on its next dispatch and prints a
//! warning telling the caller to use `set_threads` instead — it is never
//! silently honored or silently ignored.
//!
//! ## Dispatch, cost, and granularity
//!
//! Workers are plain OS threads created lazily on first parallel dispatch and
//! then parked on a condvar for the life of the process ([`pool`] module). A
//! dispatch enqueues one job per chunk and costs a mutex push + wakeup (~1µs),
//! not a thread spawn (~tens of µs) — the difference that made the PR 1
//! spawn-per-call kernels *slower* than serial on sub-millisecond problems.
//! Callers pick their parallelism with [`threads_for`]`(work, grain)`: one
//! thread per `grain` units of work, capped at [`configured_threads`], so small
//! problems take the serial path with zero dispatch overhead and mid-sized
//! problems don't shred into chunks smaller than the dispatch cost.

mod pool;

pub use pool::{pool_workers, prewarm, run_tasks};

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on worker threads; far above any sane `OKTOPK_THREADS` setting,
/// guards against pathological env values allocating huge chunk tables.
pub const MAX_THREADS: usize = 256;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0); // 0 = no override
/// First-use snapshot of (`OKTOPK_THREADS` raw value, resolved thread count).
static ENV_SNAPSHOT: OnceLock<(Option<String>, usize)> = OnceLock::new();
static ENV_DRIFT_WARNED: AtomicBool = AtomicBool::new(false);

fn hardware_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

fn env_snapshot() -> &'static (Option<String>, usize) {
    ENV_SNAPSHOT.get_or_init(|| {
        let raw = std::env::var("OKTOPK_THREADS").ok();
        let resolved = match raw.as_deref().map(|r| r.trim().parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n.min(MAX_THREADS),
            None => hardware_parallelism(),
            _ => {
                let shown = raw.as_deref().unwrap_or("");
                eprintln!(
                    "okpar: ignoring invalid OKTOPK_THREADS={shown:?} (want a positive integer)"
                );
                hardware_parallelism()
            }
        };
        (raw, resolved)
    })
}

/// Warn (once) if `OKTOPK_THREADS` was mutated after its first-use snapshot:
/// the env knob cannot be re-read safely mid-process, so late changes are
/// rejected loudly instead of silently ignored. Called from the pool on each
/// dispatch — cold enough that the env read is noise.
pub(crate) fn warn_if_env_drifted() {
    if ENV_DRIFT_WARNED.load(Ordering::Relaxed) {
        return;
    }
    let Some((snap, _)) = ENV_SNAPSHOT.get() else { return };
    let now = std::env::var("OKTOPK_THREADS").ok();
    if *snap != now && !ENV_DRIFT_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "okpar: OKTOPK_THREADS changed after first use ({:?} -> {:?}); the change is \
             IGNORED — call okpar::set_threads() to adjust the thread count at runtime",
            snap.as_deref().unwrap_or("<unset>"),
            now.as_deref().unwrap_or("<unset>")
        );
    }
}

/// Number of worker threads the parallel kernels will use (>= 1).
pub fn configured_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_snapshot().1,
        n => n,
    }
}

/// Override the thread count process-wide (e.g. from a bench harness sweeping
/// thread counts). `set_threads(0)` clears the override, returning control to
/// `OKTOPK_THREADS` / available parallelism.
///
/// If the worker pool already exists it is resized (grown) immediately, so a
/// sweep that raises the count mid-process gets real workers — the pool never
/// shrinks (parked workers cost nothing), a lower count just dispatches fewer
/// chunks.
pub fn set_threads(n: usize) {
    let n = n.min(MAX_THREADS);
    OVERRIDE.store(n, Ordering::Relaxed);
    if n > 1 {
        pool::resize_if_built(n - 1);
    }
}

/// Adaptive thread count for a pass over `work` units with a calibrated
/// per-chunk `grain`: one thread per `grain` units, at least 1, at most
/// [`configured_threads`]. Work below `2 * grain` therefore runs serial — the
/// per-kernel granularity cutoff that keeps dispatch off small problems.
pub fn threads_for(work: usize, grain: usize) -> usize {
    let max = configured_threads();
    if max <= 1 {
        return 1;
    }
    if grain == 0 {
        return max;
    }
    (work / grain).clamp(1, max)
}

/// Number of chunks `0..len` splits into for `threads` workers: never more
/// chunks than elements, never zero-length chunks, zero chunks only for
/// `len == 0`.
pub fn chunk_count(len: usize, threads: usize) -> usize {
    if len == 0 {
        0
    } else {
        threads.clamp(1, MAX_THREADS).min(len)
    }
}

/// The `i`-th of `chunks` near-equal contiguous ranges partitioning `0..len`
/// (first `len % chunks` ranges get one extra element), in O(1) with no
/// allocation. `chunks` must come from [`chunk_count`] (`0 < chunks <= len`).
///
/// Every parallel kernel MUST consume these ranges in index order when merging
/// so the result is bit-identical to a serial left-to-right pass.
pub fn nth_chunk(len: usize, chunks: usize, i: usize) -> Range<usize> {
    debug_assert!(chunks >= 1 && chunks <= len && i < chunks);
    let base = len / chunks;
    let extra = len % chunks;
    let start = i * base + i.min(extra);
    start..start + base + usize::from(i < extra)
}

/// Allocation-free iterator over the chunk partition of `0..len` for
/// `threads` workers; same ranges as [`chunk_ranges`], no `Vec`.
pub fn chunk_iter(len: usize, threads: usize) -> ChunkRanges {
    ChunkRanges { len, chunks: chunk_count(len, threads), next: 0 }
}

/// Iterator returned by [`chunk_iter`].
#[derive(Clone, Debug)]
pub struct ChunkRanges {
    len: usize,
    chunks: usize,
    next: usize,
}

impl Iterator for ChunkRanges {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.chunks {
            return None;
        }
        let r = nth_chunk(self.len, self.chunks, self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.chunks - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ChunkRanges {}

/// Split `0..len` into at most `threads` contiguous ranges of near-equal size,
/// as a `Vec`. Allocating convenience wrapper around [`chunk_iter`] for tests
/// and cold paths; hot paths use [`run_chunks`] / [`chunk_iter`] / [`nth_chunk`],
/// which never allocate.
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    chunk_iter(len, threads).collect()
}

/// Run `f(chunk_index, range)` over the chunk partition of `0..len` for
/// `threads` workers, through the persistent pool. A single-chunk (or empty)
/// partition calls `f` inline on the caller with zero dispatch overhead.
/// Chunk indexes identify the merge order; the ranges are exactly
/// [`chunk_ranges`]`(len, threads)`.
pub fn run_chunks(len: usize, threads: usize, f: impl Fn(usize, Range<usize>) + Sync) {
    let chunks = chunk_count(len, threads);
    match chunks {
        0 => {}
        1 => f(0, 0..len),
        _ => run_tasks(chunks, &|i| f(i, nth_chunk(len, chunks, i))),
    }
}

/// A raw pointer that asserts `Send + Sync` so chunk workers can write
/// *disjoint* regions of one output buffer without splitting it into borrowed
/// sub-slices (which would need a per-call `Vec`).
///
/// Safety contract for users: every region handed out via [`slice_mut`]
/// (`SendPtr::slice_mut`) must be disjoint from every other region accessed
/// while the dispatch is live, and must stay within the originally borrowed
/// allocation. The chunk partition from [`chunk_count`]/[`nth_chunk`]
/// guarantees disjointness when regions are derived from distinct chunk
/// indexes.
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap the base pointer of a mutable buffer (typically `buf.as_mut_ptr()`).
    pub fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// The wrapped raw pointer.
    pub fn get(self) -> *mut T {
        self.0
    }

    /// A mutable sub-slice `[offset, offset + len)` of the wrapped buffer.
    ///
    /// # Safety
    /// The region must lie inside the allocation the pointer was taken from,
    /// and no other live reference (on any thread) may overlap it for the
    /// returned lifetime. Derive regions from distinct [`nth_chunk`] indexes
    /// of one dispatch to guarantee this.
    pub unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_exactly_in_order() {
        for len in [0usize, 1, 2, 3, 7, 8, 100, 101] {
            for threads in [1usize, 2, 3, 4, 7, 16] {
                let ranges = chunk_ranges(len, threads);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "len={len} threads={threads}");
                    assert!(!r.is_empty(), "len={len} threads={threads}");
                    expect = r.end;
                }
                assert_eq!(expect, len, "len={len} threads={threads}");
                assert!(ranges.len() <= threads.min(len.max(1)));
            }
        }
    }

    #[test]
    fn chunk_sizes_balanced() {
        let ranges = chunk_ranges(10, 4); // 3,3,2,2
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn nth_chunk_matches_iterated_partition() {
        for len in [1usize, 2, 5, 17, 100, 101, 4097] {
            for threads in [1usize, 2, 3, 7, 16, 255] {
                let chunks = chunk_count(len, threads);
                let vec = chunk_ranges(len, threads);
                assert_eq!(vec.len(), chunks);
                for (i, r) in vec.iter().enumerate() {
                    assert_eq!(nth_chunk(len, chunks, i), *r, "len={len} threads={threads} i={i}");
                }
                let it = chunk_iter(len, threads);
                assert_eq!(it.len(), chunks);
                assert_eq!(it.collect::<Vec<_>>(), vec);
            }
        }
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_iter(0, 4).count(), 0);
    }

    #[test]
    fn configured_threads_positive_and_overridable() {
        assert!(configured_threads() >= 1);
        set_threads(3);
        assert_eq!(configured_threads(), 3);
        set_threads(0);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn threads_for_scales_with_work() {
        set_threads(8);
        assert_eq!(threads_for(0, 1000), 1);
        assert_eq!(threads_for(1999, 1000), 1); // below 2 grains: serial
        assert_eq!(threads_for(2000, 1000), 2);
        assert_eq!(threads_for(3500, 1000), 3);
        assert_eq!(threads_for(1_000_000, 1000), 8); // capped at configured
        assert_eq!(threads_for(5000, 0), 8); // zero grain: no cutoff
        set_threads(1);
        assert_eq!(threads_for(1_000_000, 1000), 1);
        set_threads(0);
    }

    #[test]
    fn run_chunks_executes_every_chunk_exactly_once() {
        for len in [0usize, 1, 5, 100, 1001] {
            for threads in [1usize, 2, 3, 8] {
                let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                run_chunks(len, threads, |ci, r| {
                    assert_eq!(r, nth_chunk(len, chunk_count(len, threads), ci));
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "len={len} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn send_ptr_disjoint_chunk_writes() {
        let len = 1003;
        let mut out = vec![0u32; len];
        let ptr = SendPtr::new(out.as_mut_ptr());
        run_chunks(len, 7, |_, r| {
            let part = unsafe { ptr.slice_mut(r.start, r.len()) };
            for (off, v) in part.iter_mut().enumerate() {
                *v = (r.start + off) as u32;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
