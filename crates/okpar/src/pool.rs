//! Persistent worker pool: parked OS threads executing chunk jobs.
//!
//! PR 1's kernels spawned fresh `crossbeam::thread::scope` threads on every
//! invocation; thread creation (~tens of µs each) swamped the ~100µs–2ms
//! kernels and made "parallel" a net regression. This pool replaces the spawn
//! with a push: workers are created lazily on the first multi-chunk dispatch,
//! then park on a condvar and are reused for the life of the process. A
//! dispatch enqueues one [`Job`] per chunk into a shared FIFO, wakes workers,
//! runs chunk 0 on the caller, help-drains the queue while its own chunks are
//! in flight, and returns once a per-dispatch latch confirms every chunk ran.
//!
//! Concurrency contract: any number of OS threads may dispatch at once
//! (`simnet` runs one thread per simulated rank, and several ranks hit the
//! kernels simultaneously). Jobs from different dispatches interleave freely in
//! the queue; each dispatch completes when *its* latch drains. Help-draining
//! makes the pool deadlock-free by construction — a waiting caller executes
//! whatever work is queued, so queued work can always make progress even if
//! every worker is busy — and makes oversubscribed thread counts
//! (`OKTOPK_THREADS` beyond the core count) cheap: the caller ends up running
//! most chunks itself, in queue order, without context switches.
//!
//! Safety: a job holds raw pointers to the dispatch closure and latch, both of
//! which live on the caller's stack. The caller never returns (or unwinds —
//! its own chunk runs under `catch_unwind`) before the latch reports all its
//! jobs finished, and a worker never touches a job's pointers after
//! decrementing that job's latch, so the pointers cannot dangle. Worker
//! panics are caught, recorded on the latch, and re-thrown on the caller.
//!
//! Steady-state cost: one mutex push per chunk plus a condvar wake. The queue
//! (a `VecDeque` retained for the process lifetime) allocates only while
//! growing, so after warm-up ([`prewarm`]) dispatch performs zero heap
//! allocations on the caller thread — the parallel path keeps the same
//! steady-state zero-allocation discipline as the serial selection path.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Pool observability, Host class: dispatch and help-drain behavior depends on
/// OS scheduling, so none of this is expected to be reproducible — it answers
/// "is the pool actually parallel, or is the caller doing all the work?".
/// Handles are registered once against the process-global registry; recording
/// no-ops (one relaxed atomic load) when the `OKTOPK_OBS` kill switch is off.
struct PoolMetrics {
    dispatches: obs::Counter,
    jobs: obs::Counter,
    helped: obs::Counter,
    worker_park: obs::Counter,
    worker_unpark: obs::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        use obs::Class::Host;
        PoolMetrics {
            dispatches: reg.counter("okpar.dispatches", Host),
            jobs: reg.counter("okpar.jobs", Host),
            helped: reg.counter("okpar.helped", Host),
            worker_park: reg.counter("okpar.worker_park", Host),
            worker_unpark: reg.counter("okpar.worker_unpark", Host),
        }
    })
}

/// One chunk of one dispatch. Pointers into the dispatching caller's stack;
/// valid until that caller's latch drains (see module docs).
struct Job {
    run: *const (dyn Fn(usize) + Sync),
    latch: *const Latch,
    index: usize,
}

// The pointees are `Sync` (closure) and internally synchronized (latch), and
// the module-level liveness argument covers lifetime; the raw pointers alone
// are what inhibits the auto trait.
unsafe impl Send for Job {}

/// Completion latch for one dispatch: counts outstanding jobs, records worker
/// panics. Decrement and notify happen under the same mutex the waiter checks
/// under, so the waiter cannot observe zero and free the latch while a worker
/// still holds it.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panicked: bool,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self { state: Mutex::new(LatchState { remaining, panicked: false }), done: Condvar::new() }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("okpar latch poisoned").remaining == 0
    }

    /// Block until every job has run; returns whether any of them panicked.
    fn wait(&self) -> bool {
        let mut st = self.state.lock().expect("okpar latch poisoned");
        while st.remaining > 0 {
            st = self.done.wait(st).expect("okpar latch poisoned");
        }
        st.panicked
    }
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    /// Number of worker threads spawned so far; grows on demand, never shrinks.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            spawned: Mutex::new(0),
        }))
    })
}

/// Grow the pool to at least `n` workers (capped at [`crate::MAX_THREADS`] − 1;
/// the caller thread is the final "worker").
fn ensure_workers(pool: &'static Pool, n: usize) {
    let n = n.min(crate::MAX_THREADS - 1);
    let mut spawned = pool.spawned.lock().expect("okpar pool poisoned");
    while *spawned < n {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("okpar-worker-{id}"))
            .spawn(move || worker_main(pool))
            .expect("okpar: failed to spawn pool worker");
        *spawned += 1;
    }
}

/// Grow the pool only if it has already been built — [`crate::set_threads`]'s
/// resize hook. Before first use there is nothing to resize; the pool will be
/// created at the right size lazily.
pub(crate) fn resize_if_built(n: usize) {
    if let Some(pool) = POOL.get() {
        ensure_workers(pool, n);
    }
}

/// Number of pool workers currently alive (0 before first parallel dispatch).
pub fn pool_workers() -> usize {
    POOL.get().map_or(0, |p| *p.spawned.lock().expect("okpar pool poisoned"))
}

/// Spawn workers and fault in queue capacity for dispatches up to `threads`
/// chunks wide, so the first timed kernel doesn't pay thread creation and the
/// steady-state dispatch path performs no allocation on the caller thread.
pub fn prewarm(threads: usize) {
    if threads <= 1 {
        return;
    }
    // One real dispatch per width grows the VecDeque to its high-water mark.
    run_tasks(threads.min(crate::MAX_THREADS), &|_| {});
}

fn execute(job: Job) {
    // Safety: the dispatching caller keeps `run` and `latch` alive until the
    // latch drains; we decrement only after the closure returns.
    let run = unsafe { &*job.run };
    let panicked = catch_unwind(AssertUnwindSafe(|| run(job.index))).is_err();
    let latch = unsafe { &*job.latch };
    let mut st = latch.state.lock().expect("okpar latch poisoned");
    st.remaining -= 1;
    st.panicked |= panicked;
    if st.remaining == 0 {
        latch.done.notify_all();
    }
    // The mutex guard drops here; the latch is never touched again.
}

fn worker_main(pool: &'static Pool) {
    let m = metrics();
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("okpar pool poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                m.worker_park.inc();
                q = pool.work_ready.wait(q).expect("okpar pool poisoned");
                m.worker_unpark.inc();
            }
        };
        execute(job);
    }
}

/// Run `f(0)`, `f(1)`, …, `f(tasks - 1)` across the pool, returning when all
/// have finished. `f(0)` always runs on the caller; the rest are executed by
/// pool workers and/or by the caller help-draining while it waits. Tasks of a
/// single dispatch may run concurrently and in any order — callers needing the
/// deterministic chunk-merge contract must make tasks write disjoint outputs
/// positioned by task index (see [`crate::run_chunks`]).
///
/// A panic in any task propagates to the caller, after all tasks finished.
pub fn run_tasks(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    match tasks {
        0 => return,
        1 => return f(0),
        _ => {}
    }
    crate::warn_if_env_drifted();
    let m = metrics();
    m.dispatches.inc();
    m.jobs.add(tasks as u64 - 1);
    let pool = global();
    ensure_workers(pool, tasks - 1);
    let latch = Latch::new(tasks - 1);
    // Erase the closure's stack lifetime; the latch protocol (module docs)
    // guarantees no worker dereferences it after this function returns.
    let run: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
    {
        let mut q = pool.queue.lock().expect("okpar pool poisoned");
        for index in 1..tasks {
            q.push_back(Job { run, latch: &latch, index });
        }
    }
    // Wake at most one parked worker per queued job: `notify_all` would stampede
    // every parked worker on every dispatch once the pool has grown. A "lost"
    // wakeup (fewer waiters than jobs) is safe — busy workers re-poll the queue
    // when they finish, and the caller help-drains below.
    for _ in 1..tasks {
        pool.work_ready.notify_one();
    }
    // The caller's own chunk. Defer a panic until the workers are done with
    // our stack — unwinding past a live latch would dangle their pointers.
    let mine = catch_unwind(AssertUnwindSafe(|| f(0)));
    // Help-drain: execute queued jobs (ours or another dispatch's) while our
    // latch is open, then park on it.
    let worker_panicked = loop {
        if latch.is_done() {
            break latch.wait(); // immediate: reads the panicked flag
        }
        let job = pool.queue.lock().expect("okpar pool poisoned").pop_front();
        match job {
            Some(job) => {
                m.helped.inc();
                execute(job);
            }
            None => break latch.wait(),
        }
    };
    match mine {
        Err(payload) => resume_unwind(payload),
        Ok(()) if worker_panicked => panic!("okpar: a pool worker panicked in a parallel kernel"),
        Ok(()) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_tasks_run_exactly_once() {
        for tasks in [0usize, 1, 2, 3, 8, 33] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            run_tasks(tasks, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "tasks={tasks}");
        }
    }

    #[test]
    fn workers_persist_and_grow_on_demand() {
        run_tasks(3, &|_| {});
        let after_first = pool_workers();
        assert!(after_first >= 2, "pool should have spawned >= 2 workers");
        run_tasks(2, &|_| {});
        assert!(pool_workers() >= after_first, "pool must not shrink");
        crate::set_threads(6);
        assert!(pool_workers() >= 5, "set_threads must resize the live pool");
        crate::set_threads(0);
    }

    #[test]
    fn concurrent_dispatches_from_many_threads() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for caller in 0..8 {
                let total = &total;
                s.spawn(move || {
                    for round in 0..50 {
                        let tasks = 2 + (caller + round) % 7;
                        run_tasks(tasks, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        let expect: usize = (0..8).map(|c| (0..50).map(|r| 2 + (c + r) % 7).sum::<usize>()).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        run_tasks(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn caller_chunk_panic_propagates_after_drain() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(4, &|i| {
                if i == 0 {
                    panic!("caller chunk");
                }
            });
        }));
        assert!(result.is_err());
        run_tasks(2, &|_| {});
    }

    #[test]
    fn oversubscribed_dispatch_completes() {
        // Far more tasks than cores: help-drain must chew through the queue.
        let hits = AtomicUsize::new(0);
        run_tasks(64, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}
