//! Schema check for the obsdump Chrome-trace export: the document must be
//! valid `trace_events` JSON that Perfetto/chrome://tracing will load —
//! every event carries `ph`/`pid`/`name`, complete events carry `ts`/`dur`,
//! and the expected tracks (rank timelines, spans, scheduler) are present.

use obs::json::{validate, Json};
use simnet::Engine;

#[test]
fn obsdump_trace_is_valid_trace_events_json() {
    let dump = okbench::obsdump::run(2, 2, Engine::Event);
    let doc = validate(&dump.trace_json).expect("obsdump output must parse as JSON");

    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty(), "a profiled run must emit events");

    let mut phases = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("every event has ph");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        phases.insert(ph.to_string());
        assert!(e.get("pid").and_then(Json::as_f64).is_some(), "every event has pid");
        assert!(e.get("name").and_then(Json::as_str).is_some(), "every event has name");
        if ph == "X" {
            let ts = e.get("ts").and_then(Json::as_f64).expect("complete event has ts");
            let dur = e.get("dur").and_then(Json::as_f64).expect("complete event has dur");
            assert!(ts >= 0.0 && dur >= 0.0, "sanitized times: ts={ts} dur={dur}");
        }
        if ph == "i" {
            assert!(e.get("s").and_then(Json::as_str).is_some(), "instant event has scope");
        }
    }
    assert!(phases.contains("X"), "timeline/span events present");
    assert!(phases.contains("M"), "metadata (process/thread names) present");

    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    // Trainer spans and the event-engine scheduler track both made it in.
    for expected in ["iter", "compute", "exchange", "grant"] {
        assert!(names.contains(&expected), "missing {expected:?} events");
    }

    // The summary table carries the per-run metrics.
    assert!(dump.summary.contains("sim.recv_wait_vsec"), "summary lists sim metrics");
    assert!(dump.summary.contains("train.steps"), "summary lists trainer metrics");
}
