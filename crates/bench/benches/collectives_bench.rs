//! Criterion benches of the allreduce implementations themselves — wall time of
//! the full simulated collective (real data movement over threads), one per
//! Table 1 algorithm. Useful for tracking the simulator's own performance.

use collectives::{allreduce_inplace, dsa_allreduce, gtopk_allreduce, topk_allgather_allreduce};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use simnet::{Cluster, CostModel};
use sparse::select::topk_exact;
use sparse::CooGradient;

const P: usize = 8;
const N: usize = 1 << 16;
const K: usize = N / 100;

fn locals(seed: u64) -> Vec<CooGradient> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..P)
        .map(|_| {
            let dense: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            topk_exact(&dense, K)
        })
        .collect()
}

fn dense_inputs(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..P).map(|_| (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_p8_n64k");
    group.sample_size(20);

    let inputs = dense_inputs(1);
    group.bench_function("dense_rabenseifner", |b| {
        b.iter(|| {
            let inputs = inputs.clone();
            Cluster::new(P, CostModel::aries()).run(move |comm| {
                let mut d = inputs[comm.rank()].clone();
                allreduce_inplace(comm, &mut d);
            })
        })
    });

    let ls = locals(2);
    group.bench_function("topk_a", |b| {
        b.iter(|| {
            let ls = ls.clone();
            Cluster::new(P, CostModel::aries())
                .run(move |comm| topk_allgather_allreduce(comm, ls[comm.rank()].clone()))
        })
    });

    let ls = locals(3);
    group.bench_function("topk_dsa", |b| {
        b.iter(|| {
            let ls = ls.clone();
            Cluster::new(P, CostModel::aries())
                .run(move |comm| dsa_allreduce(comm, ls[comm.rank()].clone(), N))
        })
    });

    let ls = locals(4);
    group.bench_function("gtopk", |b| {
        b.iter(|| {
            let ls = ls.clone();
            Cluster::new(P, CostModel::aries())
                .run(move |comm| gtopk_allreduce(comm, ls[comm.rank()].clone(), K))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
