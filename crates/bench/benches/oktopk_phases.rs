//! Criterion benches of the O(k) sparse allreduce and its phases: full Algorithm 1
//! invocations (steady state and re-evaluation iterations) and the Ok-Topk SGD step.

use criterion::{criterion_group, criterion_main, Criterion};
use oktopk::{OkTopk, OkTopkConfig, OkTopkSgd};
use rand::prelude::*;
use simnet::{Cluster, CostModel};

const P: usize = 8;
const N: usize = 1 << 16;
const K: usize = N / 100;

fn accs(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..P).map(|_| (0..N).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("oktopk_p8_n64k");
    group.sample_size(20);

    let a1 = accs(1);
    let a2 = accs(2);
    group.bench_function("allreduce_2iters_incl_reeval", |b| {
        b.iter(|| {
            let a1 = a1.clone();
            let a2 = a2.clone();
            Cluster::new(P, CostModel::aries()).run(move |comm| {
                let mut okt = OkTopk::new(OkTopkConfig::new(N, K).with_periods(64, 64));
                okt.allreduce(comm, &a1[comm.rank()], 1);
                okt.allreduce(comm, &a2[comm.rank()], 2);
            })
        })
    });

    let grads = accs(3);
    group.bench_function("sgd_step", |b| {
        b.iter(|| {
            let grads = grads.clone();
            Cluster::new(P, CostModel::aries()).run(move |comm| {
                let mut sgd = OkTopkSgd::new(OkTopkConfig::new(N, K));
                sgd.step(comm, &grads[comm.rank()], 0.1);
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
