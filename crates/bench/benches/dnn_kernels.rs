//! Criterion benches of the DL substrate's real compute kernels: one forward +
//! backward pass of each evaluation model, and the dense matmul primitive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnn::data::{SyntheticImages, SyntheticMaskedLm, SyntheticSequences};
use dnn::models::{BertLite, LstmNet, VggLite};
use dnn::ops::matmul_acc;
use dnn::Model;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fwd_bwd");
    group.sample_size(30);

    let mut vgg = VggLite::new(1);
    let img = SyntheticImages::new(2).train_batch(0, 0, 1, 4);
    group.bench_function("vgglite_batch4", |b| {
        b.iter(|| {
            vgg.zero_grads();
            vgg.forward_backward(&img)
        })
    });

    let mut lstm = LstmNet::new(1);
    let seq = SyntheticSequences::new(2).train_batch(0, 0, 1, 4);
    group.bench_function("lstmnet_batch4", |b| {
        b.iter(|| {
            lstm.zero_grads();
            lstm.forward_backward(&seq)
        })
    });

    let mut bert = BertLite::new(1);
    let mlm = SyntheticMaskedLm::new(2).train_batch(0, 0, 1, 4);
    group.bench_function("bertlite_batch4", |b| {
        b.iter(|| {
            bert.zero_grads();
            bert.forward_backward(&mlm)
        })
    });

    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let (rows, inner, cols) = (32usize, 512usize, 128usize);
    let x: Vec<f32> = (0..rows * inner).map(|i| (i as f32 * 0.37).sin()).collect();
    let w: Vec<f32> = (0..inner * cols).map(|i| (i as f32 * 0.11).cos()).collect();
    let mut group = c.benchmark_group("matmul");
    group.throughput(Throughput::Elements((rows * inner * cols) as u64));
    group.bench_function("32x512x128", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; rows * cols];
            matmul_acc(&x, &w, &mut out, rows, inner, cols);
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_matmul);
criterion_main!(benches);
