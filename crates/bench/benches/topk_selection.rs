//! Criterion benches of the top-k selection kernels (§2 / §3.1.3): full sort,
//! quickselect thresholding, the O(n) threshold scan, and the Gaussian-PPF
//! estimator. These are real wall-time measurements of this crate's CPU
//! implementations — the relative ordering (sort ≫ quickselect > scan ≈ gaussian)
//! is the paper's motivation for threshold reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use sparse::select::{exact_threshold, exact_threshold_by_sort, select_ge};
use sparse::threshold::GaussianEstimator;

fn gradient_like(n: usize, seed: u64) -> Vec<f32> {
    // Sharply peaked with heavy tails, like real gradients.
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f32 = rng.gen_range(-1.0f32..1.0);
            u * u * u * if rng.gen_bool(0.02) { 10.0 } else { 0.1 }
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_selection");
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        let values = gradient_like(n, 7);
        let k = n / 100;
        let th = exact_threshold(&values, k);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("full_sort", n), &values, |b, v| {
            b.iter(|| exact_threshold_by_sort(v, k))
        });
        group.bench_with_input(BenchmarkId::new("quickselect", n), &values, |b, v| {
            b.iter(|| exact_threshold(v, k))
        });
        group.bench_with_input(BenchmarkId::new("threshold_scan", n), &values, |b, v| {
            b.iter(|| select_ge(v, th))
        });
        group.bench_with_input(BenchmarkId::new("gaussian_ppf", n), &values, |b, v| {
            b.iter(|| GaussianEstimator::raw_threshold(v, k))
        });
    }
    group.finish();
}

fn bench_duplicate_heavy(c: &mut Criterion) {
    // The residual-accumulator shape: ~99% exact zeros (the quickselect
    // three-way-partition regression case).
    let n = 1 << 18;
    let mut values = vec![0.0f32; n];
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..n / 100 {
        let i = rng.gen_range(0..n);
        values[i] = rng.gen_range(-1.0f32..1.0);
    }
    c.bench_function("quickselect_mostly_zeros_256k", |b| {
        b.iter(|| exact_threshold(&values, n / 200))
    });
}

criterion_group!(benches, bench_selection, bench_duplicate_heavy);
criterion_main!(benches);
