//! Profile a small Ok-Topk training job and export the observability
//! artifacts: a Chrome/Perfetto `trace_events` JSON (open at
//! `ui.perfetto.dev` or `chrome://tracing`) plus a text metrics summary on
//! stdout. See EXPERIMENTS.md § "Profiling a run".
//!
//! Usage: `cargo run --release -p okbench --bin obsdump [--out PATH]
//! [--ranks P] [--iters N] [--engine thread|event]`

use simnet::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let out = flag("--out").unwrap_or("target/obsdump-trace.json").to_string();
    let ranks: usize = flag("--ranks").map_or(4, |v| v.parse().expect("--ranks wants a number"));
    let iters: usize = flag("--iters").map_or(6, |v| v.parse().expect("--iters wants a number"));
    let engine = match flag("--engine") {
        Some("event") => Engine::Event,
        Some("thread") | None => Engine::Thread,
        Some(other) => panic!("--engine wants thread|event, got {other:?}"),
    };

    let dump = okbench::obsdump::run(ranks, iters, engine);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out, &dump.trace_json).expect("write trace json");
    print!("{}", dump.summary);
    println!("\nwrote {out} ({} bytes) — open at https://ui.perfetto.dev", dump.trace_json.len());
}
