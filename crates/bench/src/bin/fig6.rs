//! Figure 6 reproduction: selections for local and global top-k values.
//!
//! Tracks, over a full (scaled-down) training run of each model, the number of
//! local and global top-k values Ok-Topk selects with its reused thresholds,
//! against the accurate number (= k for the configured density), plus the raw
//! count Gaussiank's threshold would select on the same stream. Also reports the
//! §5.2 fill-in density of TopkA/TopkDSA's output buffer.
//!
//! Expected shape: Ok-Topk's counts hug k (average deviation ≈ 10% or less, with
//! some overshoot early in training); Gaussiank severely under-predicts after the
//! first epochs; TopkDSA's output density expands by an order of magnitude over
//! the input density.

use dnn::data::{SyntheticImages, SyntheticMaskedLm, SyntheticSequences};
use dnn::models::{BertLite, LstmNet, VggLite};
use dnn::Model;
use okbench::iters;
use train::{run_data_parallel, OptimizerKind, RunResult, Scheme, TrainConfig};

struct Panel {
    name: &'static str,
    k: usize,
    oktopk: RunResult,
    gaussian: RunResult,
    dsa: RunResult,
}

fn summarize(panel: &Panel) {
    let k = panel.k as f64;
    println!("\n=== {} (k = {}) ===", panel.name, panel.k);
    println!("  iter | Ok-Topk local | Ok-Topk global | Gaussiank predicted");
    let recs = &panel.oktopk.records;
    let step = (recs.len() / 12).max(1);
    for r in recs.iter().step_by(step) {
        let g = panel
            .gaussian
            .records
            .iter()
            .find(|x| x.t == r.t)
            .and_then(|x| x.gaussian_pred)
            .unwrap_or(0);
        println!(
            "  {:>5} | {:>13} | {:>14} | {:>19}",
            r.t,
            r.local_nnz.unwrap_or(0),
            r.global_nnz.unwrap_or(0),
            g
        );
    }
    // Deviation statistics over the second half of training: the residual
    // accumulators need ~n/k iterations to reach their stationary scale, and the
    // paper's "average deviation below 11%" refers to full (long) training runs
    // dominated by that stationary phase. The early overshoot is visible in the
    // table above, exactly as in the paper's Fig. 6 for VGG/LSTM.
    let stable = &recs[recs.len() / 2..];
    let dev = |get: &dyn Fn(&train::IterRecord) -> Option<usize>| -> f64 {
        let devs: Vec<f64> =
            stable.iter().filter_map(|r| get(r).map(|v| (v as f64 - k).abs() / k)).collect();
        devs.iter().sum::<f64>() / devs.len().max(1) as f64
    };
    println!(
        "  Ok-Topk average |deviation| from k (2nd half of training): local {:.1}%, global {:.1}%",
        100.0 * dev(&|r| r.local_nnz),
        100.0 * dev(&|r| r.global_nnz)
    );
    let g2 = &panel.gaussian.records[panel.gaussian.records.len() / 2..];
    let gauss_mean: f64 = g2.iter().filter_map(|r| r.gaussian_pred).map(|v| v as f64).sum::<f64>()
        / g2.len().max(1) as f64;
    println!("  Gaussiank mean raw prediction: {:.0} ({:.2}x of k)", gauss_mean, gauss_mean / k);
    let dsa_density: Vec<f64> = panel.dsa.records.iter().filter_map(|r| r.dsa_density).collect();
    let mean_density = dsa_density.iter().sum::<f64>() / dsa_density.len().max(1) as f64;
    println!(
        "  TopkDSA/TopkA output-buffer density (fill-in, §5.2): mean {:.2}% (input density was the configured k/n)",
        100.0 * mean_density
    );
}

#[allow(clippy::too_many_arguments)]
fn run_three<M, FM, FB>(
    name: &'static str,
    p: usize,
    density: f64,
    tau_prime: usize,
    total: usize,
    optimizer: OptimizerKind,
    make_model: FM,
    make_batch: FB,
) -> Panel
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    let mut cfg = TrainConfig::new(Scheme::OkTopk, density);
    cfg.iters = total;
    cfg.tau = 32;
    cfg.tau_prime = tau_prime;
    cfg.optimizer = optimizer;
    let oktopk = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
    cfg.scheme = Scheme::GaussianK;
    let gaussian = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
    cfg.scheme = Scheme::TopkDsa;
    let dsa = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
    let k = ((make_model().num_params() as f64 * density) as usize).max(1);
    Panel { name, k, oktopk, gaussian, dsa }
}

fn main() {
    okbench::Header::begin("fig6", !okbench::full_scale()).print_text();
    println!("Figure 6 — local/global top-k selection counts over training");

    {
        let data = SyntheticImages::new(2);
        let panel = run_three(
            "VGG stand-in, density 2%, tau' = 32",
            4,
            0.02,
            32,
            iters(256, 640),
            OptimizerKind::Sgd { lr: 0.05 },
            || VggLite::new(16),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        summarize(&panel);
    }
    {
        let data = SyntheticSequences::new(3);
        let panel = run_three(
            "LSTM stand-in, density 2%, tau' = 32",
            4,
            0.02,
            32,
            iters(256, 640),
            OptimizerKind::Sgd { lr: 0.2 },
            || LstmNet::new(21),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        summarize(&panel);
    }
    {
        let data = SyntheticMaskedLm::new(5);
        let tau_prime = if okbench::full_scale() { 128 } else { 32 };
        let panel = run_three(
            "BERT stand-in, density 1%, tau' = 128 (32 in quick mode)",
            4,
            0.01,
            tau_prime,
            iters(256, 640),
            OptimizerKind::Adam { lr: 2e-4, weight_decay: 0.01 },
            || BertLite::new(13),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        summarize(&panel);
    }
}
