//! Figure 11 reproduction: test WER (proxy: per-token error rate, lower is
//! better) vs modeled runtime for the LSTM stand-in (density 2%), 32 and 64 ranks.
//!
//! Expected shape: Ok-Topk reaches a WER close to DenseOvlp's in the least
//! modeled time; at the larger scale all schemes' WERs worsen slightly (larger
//! global batch), with sparse schemes occasionally *beating* dense (sparsification
//! noise as regularizer, as the paper observed on 64 GPUs).

use dnn::data::SyntheticSequences;
use dnn::models::LstmNet;
use okbench::{convergence_panel, iters};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig11", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::Dense, 0.02);
    cfg.iters = iters(400, 1000);
    cfg.local_batch = 2;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.6 };
    cfg.lr_decay_iters = cfg.iters / 2;
    cfg.tau = 16;
    cfg.tau_prime = 16;
    cfg.eval_every = (cfg.iters / 6).max(1);

    let data = SyntheticSequences::new(3);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 24)).collect();
    let local_batch = cfg.local_batch;

    for p in [32usize, 64] {
        let results = convergence_panel(
            "Figure 11 — WER proxy vs time, LSTM stand-in, density 2%",
            "WER",
            p,
            &Scheme::all(),
            &cfg,
            || LstmNet::new(21),
            {
                let data = data.clone();
                move |it, r, w| data.train_batch(it, r, w, local_batch)
            },
            &eval,
            Some(false),
        );
        println!("\nSummary at P = {p}: final WER proxy and modeled training time");
        for (scheme, res) in &results {
            if let Some(last) = res.evals.last() {
                println!(
                    "  {:<10} WER {:.4}  time {:>8.2}s",
                    scheme.name(),
                    1.0 - last.accuracy,
                    last.time
                );
            }
        }
        println!();
    }
}
