//! Figure 10 reproduction: weak scaling of LSTM training (density 2%), 32 and 64
//! ranks, per-iteration time breakdown for all seven schemes.
//!
//! Expected shape mirrors Fig. 8 at larger P: allgather-based schemes degrade
//! with P while Ok-Topk stays flat. Paper: Ok-Topk outperforms others
//! 1.34×–7.71× on 64 ranks.
//!
//! `--paper-axis` instead sweeps the scalable trio over P ∈ {256 … 4096} on
//! the event engine (clean + one chaos cell at the top P).

use dnn::data::SyntheticSequences;
use dnn::models::LstmNet;
use okbench::{iters, paper_axis_panel, weak_scaling_panel};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig10", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::Dense, 0.02);
    cfg.iters = iters(80, 200);
    cfg.local_batch = 2;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.2 };
    let tau = if okbench::full_scale() { 32 } else { 16 };
    cfg.tau = tau;
    cfg.tau_prime = tau;

    let data = SyntheticSequences::new(3);
    let local_batch = cfg.local_batch;

    if std::env::args().any(|a| a == "--paper-axis") {
        paper_axis_panel(
            "Figure 10 (paper axis) — LSTM stand-in weak scaling to P = 4096 (density = 2%)",
            &cfg,
            || LstmNet::new(21),
            move |it, r, w| data.train_batch(it, r, w, local_batch),
        );
        return;
    }
    let results = weak_scaling_panel(
        "Figure 10 — weak scaling of LSTM stand-in on AN4 stand-in (density = 2%)",
        &[32, 64],
        &Scheme::all(),
        &cfg,
        cfg.iters * 3 / 4,
        || LstmNet::new(21),
        move |it, r, w| data.train_batch(it, r, w, local_batch),
    );

    let okt = results
        .iter()
        .find(|(p, s, _)| *p == 64 && *s == Scheme::OkTopk)
        .map(|(_, _, t)| *t)
        .expect("Ok-Topk ran");
    println!("\nOk-Topk speedup over each scheme at P = 64 (paper: 1.34x-7.71x):");
    for (p, s, t) in &results {
        if *p == 64 && *s != Scheme::OkTopk {
            println!("  vs {:<10} {:>6.2}x", s.name(), t / okt);
        }
    }
}
