//! Figure 7 reproduction: the two load-balancing optimizations of Ok-Topk.
//!
//! (a) Periodic *space repartition* (balanced regions) vs naive equal-width
//!     regions in split-and-reduce, on gradients whose top-k coordinates cluster
//!     (as real DL gradients do). Expected: 1.1×–1.8× speedup, growing with P.
//! (b) *Data balancing* + allgatherv vs direct allgatherv, on iterations where the
//!     4× imbalance trigger fires. Expected: 1.1×–1.5× speedup, growing with P.

use okbench::print_series;
use oktopk::balance::balance_and_allgatherv;
use oktopk::split_reduce::split_and_reduce;
use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::Cluster;
use sparse::select::topk_exact;
use sparse::CooGradient;
use sparse::SelectScratch;
use train::CostProfile;

/// Synthetic "BERT-like" accumulators: top-k coordinates cluster in a *narrow* band
/// of the index space (a handful of hot embedding rows dominate the magnitude
/// distribution), consistent across workers, with per-worker jitter — the §3.1.1
/// observation the balanced partition exploits. The band is narrower than one
/// equal-width region even at large P, so the naive partition funnels almost all
/// traffic into a single owner and its cost grows ∝ P.
fn clustered_accs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let band_lo = n / 8;
    let band_hi = n / 8 + n / 256;
    (0..p)
        .map(|_| {
            (0..n)
                .map(|i| {
                    let base: f32 = rng.gen_range(-0.01f32..0.01);
                    if i >= band_lo && i < band_hi {
                        base + rng.gen_range(-1.0f32..1.0)
                    } else {
                        base
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    okbench::Header::begin("fig7", !okbench::full_scale()).print_text();
    let cost = CostProfile::paper_calibrated();
    let n: usize = 1 << 16;
    let density = 0.01;
    let k = (n as f64 * density) as usize;

    println!("Figure 7(a) — balanced space repartition vs naive equal regions");
    println!("(split-and-reduce makespan, modeled ms; clustered top-k coordinates)\n");
    let ps = [8usize, 16, 32, 64, 128];
    let mut naive_t = Vec::new();
    let mut balanced_t = Vec::new();
    for &p in &ps {
        let accs = clustered_accs(p, n, 11 + p as u64);
        let run = |balanced: bool| -> f64 {
            let accs = accs.clone();
            Cluster::new(p, cost.network())
                .run(move |comm| {
                    let mut okt = OkTopk::new(
                        OkTopkConfig::new(n, k)
                            .with_periods(1_000, 1_000)
                            .with_balanced_partition(balanced)
                            .with_merge_cost(cost.merge_per_elem),
                    );
                    // Iteration 1 pays re-eval + repartition; measure iteration 2
                    // (steady state) via the difference of two deterministic runs.
                    okt.allreduce(comm, &accs[comm.rank()], 1);
                    let t1 = comm.now();
                    okt.allreduce(comm, &accs[comm.rank()], 2);
                    comm.now() - t1
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        naive_t.push(run(false) * 1e3);
        balanced_t.push(run(true) * 1e3);
    }
    print_series("P =", &ps.iter().map(|&p| p as f64).collect::<Vec<_>>());
    print_series("naive reduce (ms)", &naive_t);
    print_series("balanced reduce (ms)", &balanced_t);
    let speedup: Vec<f64> = naive_t.iter().zip(&balanced_t).map(|(a, b)| a / b).collect();
    print_series("speedup", &speedup);

    println!("\nFigure 7(b) — data balancing + allgatherv vs direct allgatherv");
    println!(
        "(balance-and-allgatherv makespan, modeled ms; survivors concentrated on one worker)\n"
    );
    let mut direct_t = Vec::new();
    let mut balanced2_t = Vec::new();
    for &p in &ps {
        // Global-top-k survivors all land in worker 0's region — the trigger case.
        let survivors: Vec<CooGradient> = (0..p)
            .map(|r| {
                if r == 0 {
                    let dense: Vec<f32> = {
                        let mut rng = StdRng::seed_from_u64(5);
                        (0..2 * k).map(|_| rng.gen_range(0.5f32..1.0)).collect()
                    };
                    topk_exact(&dense, k)
                } else {
                    CooGradient::new()
                }
            })
            .collect();
        let run = |balancing: bool| -> f64 {
            let survivors = survivors.clone();
            Cluster::new(p, cost.network())
                .run(move |comm| {
                    let cfg = OkTopkConfig::new(n, k).with_data_balancing(balancing);
                    let t0 = comm.now();
                    balance_and_allgatherv(comm, &cfg, survivors[comm.rank()].clone());
                    comm.now() - t0
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        direct_t.push(run(false) * 1e3);
        balanced2_t.push(run(true) * 1e3);
    }
    print_series("P =", &ps.iter().map(|&p| p as f64).collect::<Vec<_>>());
    print_series("direct allgatherv (ms)", &direct_t);
    print_series("balance+allgatherv (ms)", &balanced2_t);
    let speedup2: Vec<f64> = direct_t.iter().zip(&balanced2_t).map(|(a, b)| a / b).collect();
    print_series("speedup", &speedup2);

    // Destination-rotation ablation (the Fig. 2 optimization), same setting as 7(a).
    println!("\nExtra ablation — destination rotation vs naive send order (split-and-reduce)");
    let mut rot_t = Vec::new();
    let mut norot_t = Vec::new();
    for &p in &ps {
        let accs = clustered_accs(p, n, 77 + p as u64);
        let locals: Vec<CooGradient> = accs.iter().map(|a| topk_exact(a, k)).collect();
        let bounds = sparse::partition::equal_boundaries(n as u32, p);
        let run = |rotation: bool| -> f64 {
            let locals = locals.clone();
            let bounds = bounds.clone();
            Cluster::new(p, cost.network())
                .run(move |comm| {
                    let cfg = OkTopkConfig::new(n, k)
                        .with_rotation(rotation)
                        .with_merge_cost(cost.merge_per_elem);
                    let t0 = comm.now();
                    split_and_reduce(
                        comm,
                        &cfg,
                        &locals[comm.rank()],
                        &bounds,
                        &mut SelectScratch::new(),
                    );
                    comm.now() - t0
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        rot_t.push(run(true) * 1e3);
        norot_t.push(run(false) * 1e3);
    }
    print_series("P =", &ps.iter().map(|&p| p as f64).collect::<Vec<_>>());
    print_series("no rotation (ms)", &norot_t);
    print_series("rotation (ms)", &rot_t);
    let speedup3: Vec<f64> = norot_t.iter().zip(&rot_t).map(|(a, b)| a / b).collect();
    print_series("speedup", &speedup3);
}
