//! Figure 8 reproduction: weak scaling of VGG training (density 2%), 16 and 32
//! ranks, per-iteration time breakdown for all seven schemes.
//!
//! Expected shape: DenseOvlp < Dense; TopkA/TopkDSA lose their communication
//! advantage to sparsification overhead; Gaussiank has the cheapest selection;
//! Ok-Topk has the lowest communication and near-Gaussiank selection; TopkA and
//! Gaussiank communication roughly doubles from 16 to 32 ranks (allgather ∝ P)
//! while Ok-Topk's stays flat. Paper: Ok-Topk outperforms others 1.51×–8.83× on 32.
//!
//! `--paper-axis` instead sweeps the scalable trio over P ∈ {256 … 4096} on
//! the event engine (clean + one chaos cell at the top P).

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use okbench::{iters, paper_axis_panel, weak_scaling_panel};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig8", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::Dense, 0.02);
    cfg.iters = iters(80, 200);
    cfg.local_batch = 2;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
    let tau = if okbench::full_scale() { 32 } else { 16 };
    cfg.tau = tau;
    cfg.tau_prime = tau;

    let data = SyntheticImages::new(2);
    let local_batch = cfg.local_batch;

    if std::env::args().any(|a| a == "--paper-axis") {
        paper_axis_panel(
            "Figure 8 (paper axis) — VGG stand-in weak scaling to P = 4096 (density = 2%)",
            &cfg,
            || VggLite::new(16),
            move |it, r, w| data.train_batch(it, r, w, local_batch),
        );
        return;
    }
    let results = weak_scaling_panel(
        "Figure 8 — weak scaling of VGG stand-in on Cifar-10 stand-in (density = 2%)",
        &[16, 32],
        &Scheme::all(),
        &cfg,
        cfg.iters * 3 / 4,
        || VggLite::new(16),
        move |it, r, w| data.train_batch(it, r, w, local_batch),
    );

    // Paper headline: speedup of Ok-Topk over every other scheme on 32 ranks.
    let okt = results
        .iter()
        .find(|(p, s, _)| *p == 32 && *s == Scheme::OkTopk)
        .map(|(_, _, t)| *t)
        .expect("Ok-Topk ran");
    println!("\nOk-Topk speedup over each scheme at P = 32 (paper: 1.51x-8.83x):");
    for (p, s, t) in &results {
        if *p == 32 && *s != Scheme::OkTopk {
            println!("  vs {:<10} {:>6.2}x", s.name(), t / okt);
        }
    }
}
