//! Scale sweep: how far can one process push the cluster size P?
//!
//! The discrete-event engine exists so P ∈ {1024, 2048, 4096} sweeps — the
//! regime where the paper's O(α·log P + β·k) claim separates Ok-Topk from
//! gTopk and dense allreduce — fit in one address space with a bounded set of
//! runnable ranks. This harness:
//!
//! - sweeps P ∈ {32, 128, 512, 1024, 2048} × {Dense, gTopk, Ok-Topk} on the
//!   event engine, recording modeled makespan, wall time and peak RSS;
//! - cross-checks the thread engine at small P: same seed ⇒ bit-identical
//!   makespan and update checksum (the differential-oracle guarantee);
//! - head-to-heads the two engines' wall time where both are comfortable;
//! - with `--gate`, asserts the event engine completes Ok-Topk at P=1024
//!   within a wall/memory budget, holds the PR 9 headline at P=2048 (≥1.5x
//!   over the BENCH_PR7 baseline, with the handoff fast path carrying
//!   grants), and probes the thread engine at P=1024 in a subprocess capped
//!   at 1.25× the event engine's measured wall — demonstrating (and
//!   recording) that the budget is only reachable with virtual-time
//!   scheduling. All legs are hard failures; the thread probe skips cleanly
//!   on hosts that cannot spawn that many OS threads.
//!
//! Every row also records the scheduler's fast-path counters (parks per rank
//! per step, handoff rate, spin hits, elided parks) so regressions in the
//! dispatch path show up next to the wall time they cause.
//!
//! Usage: `cargo run --release -p okbench --bin scale [-- --quick] [--gate]
//! [--out PATH]`. Internal: `--probe <thread|event> <P>` runs one Ok-Topk
//! cell and exits (the gate's subprocess target).

use simnet::{Cluster, Comm, Engine};
use std::time::{Duration, Instant};
use train::{CostProfile, Reducer, Scheme, Update};

const N: usize = 4096;
const DENSITY: f64 = 0.05;
const ITERS: usize = 2;
/// Small rank stacks: the sweep's point is thousands of ranks per process.
const STACK_BYTES: usize = 1 << 20;

const SCHEMES: [Scheme; 3] = [Scheme::Dense, Scheme::GTopk, Scheme::OkTopk];

/// Gate budgets for Ok-Topk at P=1024 on the event engine. Calibrated on a
/// single-core CI-class host: the event engine measures ~4 s wall / ~0.4 GiB
/// peak on the fast dispatch path, the thread engine ~22 s (and past P=2048
/// the thread engine does not finish inside 180 s at all). The event budgets
/// are absolute with generous headroom; the thread probe's cap is *relative*
/// — 1.25× the event engine's measured wall — so the "thread cannot keep up"
/// assertion tracks host speed instead of hard-coding this machine's.
const GATE_P: usize = 1024;
const GATE_WALL_BUDGET: Duration = Duration::from_secs(60);
const GATE_MEM_BUDGET_KB: u64 = 4 * 1024 * 1024; // 4 GiB peak RSS
const GATE_PROBE_FACTOR: f64 = 1.25;

/// PR 9 headline leg: Ok-Topk at P=2048 on the event engine. The PR 7
/// baseline recorded ~46.2 s there (`BENCH_PR7.json`); the scheduler fast
/// paths bring it to ~22 s on the same host. The budget asserts at least the
/// claimed 1.5x over that baseline (46.2 / 1.5 ≈ 30.8 s) with headroom over
/// the measured wall for CI noise.
const HEADLINE_P: usize = 2048;
const HEADLINE_WALL_BUDGET: Duration = Duration::from_secs(30);
/// Ok-Topk P=2048 event-engine wall from BENCH_PR7.json, for the speedup line.
const BASELINE_PR7_MS: f64 = 46165.1;

fn grad(rank: usize, iter: usize) -> Vec<f32> {
    (0..N)
        .map(|i| {
            let x = (i * (rank + 2) + iter * 131) as f32;
            let spike = if i % 211 == (rank * 13 + iter) % 211 { 3.0 } else { 0.0 };
            (x * 0.01).sin() * 0.25 + spike
        })
        .collect()
}

/// Scheduler counters pulled from one cell's metrics snapshot. All zero on
/// the thread engine (the event scheduler is the only emitter) and on the
/// classic dispatch path (which never attempts a handoff).
#[derive(Clone, Copy, Default)]
struct SchedStats {
    parks: u64,
    token_grants: u64,
    handoff_hit: u64,
    handoff_miss: u64,
    spin_hit: u64,
    park_elided: u64,
}

impl SchedStats {
    fn from_metrics(metrics: &obs::MetricsSnapshot) -> Self {
        let counter = |name: &str| match metrics.get(name) {
            Some(obs::MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        SchedStats {
            parks: counter("engine.parks"),
            token_grants: counter("engine.token_grants"),
            handoff_hit: counter("engine.handoff_hit"),
            handoff_miss: counter("engine.handoff_miss"),
            spin_hit: counter("engine.spin_hit"),
            park_elided: counter("engine.park_elided"),
        }
    }

    /// Parks per rank per training step — the headline "how often does a
    /// rank actually sleep" figure.
    fn parks_per_rank_step(&self, p: usize) -> f64 {
        self.parks as f64 / (p * ITERS) as f64
    }

    /// Fraction of token grants that went through the direct-handoff path
    /// (hit or miss) rather than a plain heap pop.
    fn handoff_rate(&self) -> f64 {
        if self.token_grants == 0 {
            return 0.0;
        }
        (self.handoff_hit + self.handoff_miss) as f64 / self.token_grants as f64
    }
}

/// One sweep cell: `ITERS` data-parallel steps of `scheme` at size `p` on
/// `engine`. Returns (modeled makespan, FNV checksum of every rank's update
/// bits in rank order, wall time, scheduler counters).
fn run_cell(scheme: Scheme, p: usize, engine: Engine) -> (f64, u64, Duration, SchedStats) {
    let profile = CostProfile::paper_calibrated().scaled_for_model(N);
    let fwd = profile.fwd_bwd(N);
    let wall = Instant::now();
    let report = Cluster::new(p, profile.network())
        .with_engine(engine)
        .with_stack_bytes(STACK_BYTES)
        .with_obs(true)
        .run(move |comm: &mut Comm| {
            let mut reducer = Reducer::new(scheme, N, DENSITY, profile, 8, 8);
            let mut fnv = 0xcbf29ce484222325u64;
            for it in 0..ITERS {
                comm.compute(fwd);
                let g = grad(comm.rank(), it);
                let (update, _) = reducer.reduce(comm, &g, 0.1);
                let mut mix = |w: u32| {
                    fnv = (fnv ^ w as u64).wrapping_mul(0x100000001b3);
                };
                match update {
                    Update::Dense(v) => v.iter().for_each(|x| mix(x.to_bits())),
                    Update::Sparse(coo) => {
                        coo.indexes().iter().for_each(|&i| mix(i));
                        coo.values().iter().for_each(|x| mix(x.to_bits()));
                    }
                }
            }
            fnv
        });
    let wall = wall.elapsed();
    let mut fnv = 0xcbf29ce484222325u64;
    for r in &report.results {
        fnv = (fnv ^ r).wrapping_mul(0x100000001b3);
    }
    let sched = SchedStats::from_metrics(&report.metrics);
    (report.makespan(), fnv, wall, sched)
}

/// Peak resident set size of this process so far, in KiB (Linux VmHWM).
fn vm_hwm_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

/// Current resident set size, in KiB (Linux VmRSS).
fn vm_rss_kb() -> u64 {
    proc_status_kb("VmRSS:")
}

fn proc_status_kb(key: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

struct Row {
    scheme: Scheme,
    p: usize,
    engine: Engine,
    makespan: f64,
    checksum: u64,
    wall: Duration,
    vm_hwm_kb: u64,
    vm_rss_kb: u64,
    sched: SchedStats,
}

fn sweep_cell(scheme: Scheme, p: usize, engine: Engine) -> Row {
    let (makespan, checksum, wall, sched) = run_cell(scheme, p, engine);
    Row {
        scheme,
        p,
        engine,
        makespan,
        checksum,
        wall,
        vm_hwm_kb: vm_hwm_kb(),
        vm_rss_kb: vm_rss_kb(),
        sched,
    }
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Thread => "thread",
        Engine::Event => "event",
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    header: &okbench::Header,
    sizes: &[usize],
    rows: &[Row],
    parity_ok: bool,
    head_to_head: &[(usize, Duration, Duration)],
    probe: Option<&ProbeOutcome>,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&header.json_fields());
    out.push_str(&format!("  \"n\": {N},\n"));
    out.push_str(&format!("  \"density\": {DENSITY},\n"));
    out.push_str(&format!("  \"iters\": {ITERS},\n"));
    out.push_str(&format!("  \"stack_bytes\": {STACK_BYTES},\n"));
    out.push_str(&format!(
        "  \"cluster_sizes\": [{}],\n",
        sizes.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str(&format!("  \"cross_engine_parity_p32\": {parity_ok},\n"));
    out.push_str("  \"head_to_head_wall_ms\": [\n");
    for (i, (p, thread, event)) in head_to_head.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {p}, \"thread_ms\": {:.1}, \"event_ms\": {:.1}}}{}\n",
            thread.as_secs_f64() * 1e3,
            event.as_secs_f64() * 1e3,
            if i + 1 < head_to_head.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    if let Some(probe) = probe {
        out.push_str("  \"gate\": {\n");
        out.push_str(&format!("    \"p\": {GATE_P},\n"));
        out.push_str(&format!("    \"wall_budget_ms\": {},\n", GATE_WALL_BUDGET.as_millis()));
        out.push_str(&format!("    \"mem_budget_kb\": {GATE_MEM_BUDGET_KB},\n"));
        out.push_str(&format!(
            "    \"event_wall_ms\": {:.1},\n",
            probe.event_wall.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("    \"event_vm_hwm_kb\": {},\n", probe.event_hwm_kb));
        out.push_str(&format!(
            "    \"thread_probe\": \"{}\",\n",
            probe.thread_outcome.replace('"', "'")
        ));
        out.push_str(&format!("    \"headline_p\": {HEADLINE_P},\n"));
        out.push_str(&format!(
            "    \"headline_wall_budget_ms\": {},\n",
            HEADLINE_WALL_BUDGET.as_millis()
        ));
        out.push_str(&format!(
            "    \"headline_wall_ms\": {:.1},\n",
            probe.headline_wall.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("    \"baseline_pr7_wall_ms\": {BASELINE_PR7_MS},\n"));
        out.push_str(&format!(
            "    \"speedup_vs_pr7\": {:.2}\n",
            BASELINE_PR7_MS / (probe.headline_wall.as_secs_f64() * 1e3)
        ));
        out.push_str("  },\n");
    }
    // The PR 9 headline comparison, recorded whenever the sweep reaches the
    // headline cell (gate or full mode) so the checked-in JSON always carries
    // the before/after claim.
    if let Some(r) = rows.iter().find(|r| r.p == HEADLINE_P && r.scheme == Scheme::OkTopk) {
        let wall_ms = r.wall.as_secs_f64() * 1e3;
        out.push_str("  \"headline\": {\n");
        out.push_str(&format!("    \"scheme\": \"{}\",\n", Scheme::OkTopk.name()));
        out.push_str(&format!("    \"p\": {HEADLINE_P},\n"));
        out.push_str(&format!("    \"wall_ms\": {wall_ms:.1},\n"));
        out.push_str(&format!("    \"baseline_pr7_wall_ms\": {BASELINE_PR7_MS},\n"));
        out.push_str(&format!("    \"speedup_vs_pr7\": {:.2},\n", BASELINE_PR7_MS / wall_ms));
        out.push_str(&format!("    \"handoff_rate\": {:.4}\n", r.sched.handoff_rate()));
        out.push_str("  },\n");
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"p\": {}, \"engine\": \"{}\", \"makespan\": {:.6e}, \
             \"checksum\": \"{:016x}\", \"wall_ms\": {:.1}, \"vm_hwm_kb\": {}, \"vm_rss_kb\": {}, \
             \"parks\": {}, \"parks_per_rank_step\": {:.3}, \"handoff_rate\": {:.4}, \
             \"handoff_hit\": {}, \"spin_hit\": {}, \"park_elided\": {}}}{}\n",
            r.scheme.name(),
            r.p,
            engine_name(r.engine),
            r.makespan,
            r.checksum,
            r.wall.as_secs_f64() * 1e3,
            r.vm_hwm_kb,
            r.vm_rss_kb,
            r.sched.parks,
            r.sched.parks_per_rank_step(r.p),
            r.sched.handoff_rate(),
            r.sched.handoff_hit,
            r.sched.spin_hit,
            r.sched.park_elided,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

struct ProbeOutcome {
    event_wall: Duration,
    event_hwm_kb: u64,
    thread_outcome: String,
    headline_wall: Duration,
}

/// Run `--probe <engine> <P>` in a child process with a wall cap. Returns a
/// human-readable outcome string ("completed in …" / "killed after …" /
/// "skipped: …"). The skip case covers hosts whose thread limits are too low
/// to even spawn P OS threads: the thread engine panics with "failed to spawn
/// rank thread", which we detect on the child's stderr and report as a clean
/// skip rather than an abnormal exit — such a host proves the thread engine
/// cannot run at this P, it just cannot quantify by how much.
fn probe_subprocess(engine: Engine, p: usize, cap: Duration) -> String {
    use std::io::Read;
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => return format!("probe unavailable: {e}"),
    };
    let start = Instant::now();
    let mut child = match std::process::Command::new(exe)
        .args(["--probe", engine_name(engine), &p.to_string()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return format!("probe spawn failed: {e}"),
    };
    // Drain stderr on a helper thread so a chatty child can't fill the pipe
    // and deadlock against our try_wait loop.
    let mut stderr = child.stderr.take().expect("probe child stderr is piped");
    let drain = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = stderr.read_to_string(&mut buf);
        buf
    });
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => {
                return format!("completed in {:.1}s", start.elapsed().as_secs_f64());
            }
            Ok(Some(status)) => {
                let err = drain.join().unwrap_or_default();
                if err.contains("failed to spawn rank thread") {
                    return format!("skipped: host cannot spawn {p} OS threads");
                }
                return format!("exited abnormally: {status}");
            }
            Ok(None) => {
                if start.elapsed() > cap {
                    let _ = child.kill();
                    let _ = child.wait();
                    return format!(
                        "killed after exceeding the {:.0}s wall cap",
                        cap.as_secs_f64()
                    );
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return format!("probe wait failed: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Internal subprocess mode: one cell, then exit.
    if let Some(i) = args.iter().position(|a| a == "--probe") {
        let engine = match args.get(i + 1).map(String::as_str) {
            Some("thread") => Engine::Thread,
            Some("event") => Engine::Event,
            other => panic!("--probe needs thread|event, got {other:?}"),
        };
        let p: usize = args.get(i + 2).and_then(|v| v.parse().ok()).expect("--probe needs P");
        let (makespan, checksum, wall, _) = run_cell(Scheme::OkTopk, p, engine);
        println!(
            "probe {} p={p}: makespan {makespan:.6e}s checksum {checksum:016x} wall {:.1}s",
            engine_name(engine),
            wall.as_secs_f64()
        );
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let run_gate = args.iter().any(|a| a == "--gate");
    let header = okbench::Header::begin("scale", quick || run_gate);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR9.json")
        .to_string();

    let sizes: &[usize] = if run_gate {
        &[32, GATE_P, HEADLINE_P]
    } else if quick {
        &[32, 128, 512]
    } else {
        &[32, 128, 512, 1024, 2048]
    };

    eprintln!("scale: n={N} density={DENSITY} iters={ITERS} sizes={sizes:?}");
    let mut failures: Vec<String> = Vec::new();

    // Cross-engine parity at P=32: the thread engine is the oracle.
    let mut parity_ok = true;
    for scheme in SCHEMES {
        let (mk_t, ck_t, _, _) = run_cell(scheme, 32, Engine::Thread);
        let (mk_e, ck_e, _, _) = run_cell(scheme, 32, Engine::Event);
        if mk_t.to_bits() != mk_e.to_bits() || ck_t != ck_e {
            parity_ok = false;
            failures.push(format!(
                "{} p=32: engines diverged (makespan {mk_t:?} vs {mk_e:?}, checksum {ck_t:016x} vs {ck_e:016x})",
                scheme.name()
            ));
        }
    }
    eprintln!("  parity p=32 across engines: {}", if parity_ok { "ok" } else { "FAIL" });

    // Head-to-head wall time where the thread engine is still comfortable.
    let mut head_to_head = Vec::new();
    for &p in &[32usize, 128] {
        let (_, _, wall_t, _) = run_cell(Scheme::OkTopk, p, Engine::Thread);
        let (_, _, wall_e, _) = run_cell(Scheme::OkTopk, p, Engine::Event);
        eprintln!(
            "  head-to-head p={p}: thread {:.0} ms, event {:.0} ms",
            wall_t.as_secs_f64() * 1e3,
            wall_e.as_secs_f64() * 1e3
        );
        head_to_head.push((p, wall_t, wall_e));
    }

    // The sweep itself: event engine only past small P.
    let mut rows = Vec::new();
    for &p in sizes {
        for scheme in SCHEMES {
            if run_gate && p != 32 && scheme != Scheme::OkTopk {
                continue;
            }
            let row = sweep_cell(scheme, p, Engine::Event);
            eprintln!(
                "  p={:<5} {:<8} event: makespan {:>10.4e}s wall {:>7.0} ms rss {:>7} KiB (peak {} KiB) \
                 parks/rank/step {:>6.2} handoff {:>5.1}%",
                row.p,
                row.scheme.name(),
                row.makespan,
                row.wall.as_secs_f64() * 1e3,
                row.vm_rss_kb,
                row.vm_hwm_kb,
                row.sched.parks_per_rank_step(row.p),
                row.sched.handoff_rate() * 100.0,
            );
            rows.push(row);
        }
    }

    // Gate: the event engine must fit the budget at P=1024; the thread engine
    // is probed under the same wall cap in a subprocess (so a hang or a
    // thrashing scheduler cannot wedge the gate itself).
    let mut probe = None;
    if run_gate {
        let gate_row = rows
            .iter()
            .find(|r| r.p == GATE_P && r.scheme == Scheme::OkTopk)
            .expect("gate sweep includes Ok-Topk at GATE_P");
        if gate_row.wall > GATE_WALL_BUDGET {
            failures.push(format!(
                "event engine exceeded the wall budget at P={GATE_P}: {:.1}s > {:.0}s",
                gate_row.wall.as_secs_f64(),
                GATE_WALL_BUDGET.as_secs_f64()
            ));
        }
        if gate_row.vm_hwm_kb > GATE_MEM_BUDGET_KB {
            failures.push(format!(
                "event engine exceeded the memory budget at P={GATE_P}: {} KiB > {} KiB",
                gate_row.vm_hwm_kb, GATE_MEM_BUDGET_KB
            ));
        }
        // PR 9 headline: Ok-Topk at P=2048 must land inside the tightened
        // budget (≥1.5x over the BENCH_PR7 baseline), and the handoff fast
        // path must actually carry the grants.
        let headline_row = rows
            .iter()
            .find(|r| r.p == HEADLINE_P && r.scheme == Scheme::OkTopk)
            .expect("gate sweep includes Ok-Topk at HEADLINE_P");
        if headline_row.wall > HEADLINE_WALL_BUDGET {
            failures.push(format!(
                "event engine exceeded the headline wall budget at P={HEADLINE_P}: {:.1}s > {:.0}s \
                 (PR7 baseline {:.1}s; budget asserts the 1.5x speedup)",
                headline_row.wall.as_secs_f64(),
                HEADLINE_WALL_BUDGET.as_secs_f64(),
                BASELINE_PR7_MS / 1e3
            ));
        }
        if headline_row.sched.handoff_rate() <= 0.0 {
            failures.push(format!(
                "scheduler handoff rate is zero at P={HEADLINE_P}; the direct-handoff fast path \
                 is not carrying grants (SIMNET_SCHED=classic in the environment?)"
            ));
        }
        eprintln!(
            "  headline p={HEADLINE_P} Ok-Topk: {:.1}s (budget {:.0}s, {:.2}x vs PR7 baseline {:.1}s)",
            headline_row.wall.as_secs_f64(),
            HEADLINE_WALL_BUDGET.as_secs_f64(),
            BASELINE_PR7_MS / (headline_row.wall.as_secs_f64() * 1e3),
            BASELINE_PR7_MS / 1e3
        );
        let cap =
            Duration::from_secs_f64((gate_row.wall.as_secs_f64() * GATE_PROBE_FACTOR).max(5.0));
        let thread_outcome = probe_subprocess(Engine::Thread, GATE_P, cap);
        eprintln!(
            "  thread-engine probe at p={GATE_P} (cap {:.1}s = {GATE_PROBE_FACTOR}x event wall): {thread_outcome}",
            cap.as_secs_f64()
        );
        if thread_outcome.starts_with("completed") {
            failures.push(format!(
                "thread engine matched the event engine at P={GATE_P} ({thread_outcome}); \
                 the virtual-time scheduler should be the only engine inside the budget"
            ));
        }
        probe = Some(ProbeOutcome {
            event_wall: gate_row.wall,
            event_hwm_kb: gate_row.vm_hwm_kb,
            thread_outcome,
            headline_wall: headline_row.wall,
        });
    }

    write_json(&out_path, &header, sizes, &rows, parity_ok, &head_to_head, probe.as_ref());
    eprintln!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
    if run_gate {
        eprintln!(
            "gate: OK (parity holds at P=32; event engine ran Ok-Topk at P={GATE_P} within {:.0}s / {} MiB)",
            GATE_WALL_BUDGET.as_secs_f64(),
            GATE_MEM_BUDGET_KB / 1024
        );
    }
}
