//! Hybrid data + pipeline parallelism sweep — the paper's future-work direction
//! (§6), explored with this reproduction's measured sparse allreduces.
//!
//! For a fixed P = 64 and a BERT-sized (scaled) model, sweeps the pipeline depth S
//! and prints the modeled iteration time with Dense vs Ok-Topk gradient exchange
//! inside each stage's data-parallel group. Expected shape: Ok-Topk pushes the
//! optimal design point toward *shallower* pipelines (less need to shrink the
//! gradient exchange by going deep, so less bubble).

use okbench::print_series;
use train::{CostProfile, HybridConfig, Scheme};

fn main() {
    let total_ranks = 64;
    let n = 512_000; // a mid-sized transformer in this workspace's scaled units
    println!("Hybrid data+pipeline parallelism study (P = {total_ranks}, n = {n}, density 1%)");
    println!("GPipe schedule, M = 16 micro-batches; modeled ms per iteration\n");

    let stages = [1usize, 2, 4, 8, 16];
    let header: Vec<f64> = stages.iter().map(|&s| s as f64).collect();
    print_series("pipeline depth S", &header);

    for scheme in [Scheme::Dense, Scheme::OkTopk] {
        let mut totals = Vec::new();
        let mut grad = Vec::new();
        let mut bubble = Vec::new();
        for &s in &stages {
            let cfg = HybridConfig {
                stages: s,
                total_ranks,
                microbatches: 16,
                n,
                density: 0.01,
                activation_elems: 8_192,
                cost: CostProfile::paper_calibrated(),
            };
            let est = cfg.evaluate(scheme);
            totals.push(est.total() * 1e3);
            grad.push(est.gradient_comm * 1e3);
            bubble.push(est.bubble * 1e3);
        }
        println!("\n{}:", scheme.name());
        print_series("total (ms)", &totals);
        print_series("gradient comm (ms)", &grad);
        print_series("pipeline bubble (ms)", &bubble);
        let (best_i, best_t) = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &t)| (i, t))
            .expect("non-empty");
        println!("  optimal pipeline depth: S = {}", stages[best_i]);
        println!(
            "  penalty of staying data-parallel-only (S = 1): {:+.1}% vs optimum",
            100.0 * (totals[0] / best_t - 1.0)
        );
    }
    println!("\nExpected: with Ok-Topk the gradient exchange no longer forces pipelining —");
    println!("the S = 1 penalty collapses compared to Dense, so the optimal design shifts");
    println!("toward shallow pipelines with their smaller bubbles (the paper's §6 direction).");
}
