//! Flat vs hierarchical collectives on a two-tier fabric: when does the
//! intra-node reduce → leader exchange → broadcast pipeline beat running the
//! flat algorithm straight across the cluster?
//!
//! Every cell prices the *same* hardware — a two-tier topology with fast
//! intra-node links (α_i = 1 µs, β_i = 1 ns/elem) and a slow inter-node
//! fabric (α_e = 25 µs, β_e = 4 ns/elem × oversubscription ρ) — and runs a
//! fixed data-parallel step (compute + one gradient reduce) with either the
//! flat scheme or its hierarchical counterpart:
//!
//! - Dense ring vs Hier-Dense (intra dense reduce → leader ring → bcast)
//! - gTopk binary tree vs Hier-gTopk (tree regrouped across the two tiers)
//! - Ok-Topk vs Hier-Ok-Topk (dense intra reduce, one re-selection at the
//!   leader, Ok-Topk among leaders)
//!
//! The sweep crosses ranks-per-node ∈ {4, 8, 16} with oversubscription
//! ρ ∈ {1, 2, 4, 8, 16} and a chaos variant that degrades *inter-node links
//! only* (1.5× α, 2× β) — the failure mode a leader-funnelled exchange is most
//! exposed to. All times are modeled virtual seconds, so every cell is
//! deterministic.
//!
//! Usage: `cargo run --release -p okbench --bin hier [-- --quick] [--gate]
//! [--out PATH]`. `--gate` runs a small P=8 slice and fails unless
//! (a) Hier-Ok-Topk beats flat Ok-Topk once the effective inter/intra β ratio
//! reaches 8× (ρ = 2 here, since β_e/β_i is already 4×), (b) a repeated cell
//! is bit-identical, and (c) inter-link chaos never speeds a cell up. This is
//! the smoke run wired into `scripts/check.sh`; the full run emits
//! `BENCH_PR10.json`.

use simnet::{ChaosPlan, Cluster, Comm, Topology};
use train::{CostProfile, Reducer, Scheme, Update};

const N: usize = 16_384;
const DENSITY: f64 = 0.02;
const ITERS: usize = 4;

/// Two-tier link parameters (seconds, seconds-per-element). β_e/β_i = 4× at
/// ρ = 1; oversubscription multiplies β_e only.
const INTRA: (f64, f64) = (1e-6, 1e-9);
const INTER: (f64, f64) = (25e-6, 4e-9);

/// Flat scheme and its hierarchical counterpart.
const PAIRS: [(Scheme, Scheme); 3] = [
    (Scheme::Dense, Scheme::HierDense),
    (Scheme::GTopk, Scheme::HierGTopk),
    (Scheme::OkTopk, Scheme::HierOkTopk),
];

fn grad(rank: usize, iter: usize) -> Vec<f32> {
    (0..N)
        .map(|i| {
            let x = (i * (rank + 2) + iter * 131) as f32;
            let spike = if i % 211 == (rank * 13 + iter) % 211 { 3.0 } else { 0.0 };
            (x * 0.01).sin() * 0.25 + spike
        })
        .collect()
}

/// Chaos plan degrading every *inter-node* link for the whole (bounded) run:
/// 1.5× α, 2× β. Intra-node links stay clean, so the hierarchical schemes are
/// hit exactly where they concentrate traffic.
fn inter_link_chaos(p: usize, rpn: usize) -> ChaosPlan {
    let mut plan = ChaosPlan::new(17);
    for src in 0..p {
        for dst in 0..p {
            if src != dst && src / rpn != dst / rpn {
                plan = plan.degrade_link(src, dst, 1.5, 2.0, 0.0, 1e3);
            }
        }
    }
    plan
}

/// Modeled makespan of `ITERS` data-parallel steps of `scheme` at size `p` on
/// a two-tier topology with `rpn` ranks per node and oversubscription `rho`.
fn makespan(scheme: Scheme, p: usize, rpn: usize, rho: f64, chaos: bool) -> f64 {
    let profile = CostProfile::paper_calibrated().scaled_for_model(N);
    let fwd = profile.fwd_bwd(N);
    let topo = Topology::two_tier(rpn, INTRA, INTER).with_oversubscription(rho);
    let mut cluster = Cluster::new(p, profile.network()).with_topology(topo);
    if chaos {
        cluster = cluster.with_chaos(inter_link_chaos(p, rpn));
    }
    let report = cluster.run(move |comm: &mut Comm| {
        let mut reducer = Reducer::new(scheme, N, DENSITY, profile, 8, 8).with_ranks_per_node(rpn);
        for it in 0..ITERS {
            comm.compute(fwd);
            let g = grad(comm.rank(), it);
            let (update, _) = reducer.reduce(comm, &g, 0.1);
            match update {
                Update::Dense(v) => std::hint::black_box(v.len()),
                Update::Sparse(coo) => std::hint::black_box(coo.indexes().len()),
            };
        }
    });
    report.makespan()
}

struct Cell {
    p: usize,
    rpn: usize,
    rho: f64,
    chaos: bool,
    flat: Scheme,
    hier: Scheme,
    flat_makespan: f64,
    hier_makespan: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.flat_makespan / self.hier_makespan
    }
}

fn write_json(path: &str, header: &okbench::Header, cells: &[Cell]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&header.json_fields());
    out.push_str(&format!("  \"n\": {N},\n"));
    out.push_str(&format!("  \"density\": {DENSITY},\n"));
    out.push_str(&format!("  \"iters\": {ITERS},\n"));
    out.push_str(&format!("  \"intra_alpha\": {:e}, \"intra_beta\": {:e},\n", INTRA.0, INTRA.1));
    out.push_str(&format!("  \"inter_alpha\": {:e}, \"inter_beta\": {:e},\n", INTER.0, INTER.1));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"p\": {}, \"rpn\": {}, \"oversub\": {}, \"chaos\": {}, \
             \"flat\": \"{}\", \"hier\": \"{}\", \
             \"flat_makespan\": {:.6e}, \"hier_makespan\": {:.6e}, \
             \"speedup\": {:.4}}}{}\n",
            c.p,
            c.rpn,
            c.rho,
            c.chaos,
            c.flat.name(),
            c.hier.name(),
            c.flat_makespan,
            c.hier_makespan,
            c.speedup(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let run_gate = args.iter().any(|a| a == "--gate");
    let header = okbench::Header::begin("hier", quick || run_gate);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR10.json")
        .to_string();

    let (p, rpns, rhos): (usize, &[usize], &[f64]) = if run_gate {
        (8, &[4], &[1.0, 2.0])
    } else if quick {
        (16, &[4, 8], &[1.0, 4.0, 16.0])
    } else {
        (32, &[4, 8, 16], &[1.0, 2.0, 4.0, 8.0, 16.0])
    };

    eprintln!("hier: n={N} density={DENSITY} iters={ITERS} p={p} rpn={rpns:?} rho={rhos:?}");
    let mut cells = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &rpn in rpns {
        for &rho in rhos {
            for chaos in [false, true] {
                for (flat, hier) in PAIRS {
                    let fm = makespan(flat, p, rpn, rho, chaos);
                    let hm = makespan(hier, p, rpn, rho, chaos);
                    let c = Cell {
                        p,
                        rpn,
                        rho,
                        chaos,
                        flat,
                        hier,
                        flat_makespan: fm,
                        hier_makespan: hm,
                    };
                    eprintln!(
                        "  rpn={:<3} rho={:<5} chaos={:<5} {:<10} flat {:>10.4e}s  hier {:>10.4e}s  speedup {:.2}x",
                        rpn,
                        rho,
                        chaos,
                        flat.name(),
                        fm,
                        hm,
                        c.speedup()
                    );
                    cells.push(c);
                }
            }
        }
    }

    write_json(&out_path, &header, &cells);
    eprintln!("wrote {out_path}");

    // Chaos on inter-node links must never make any cell faster.
    for c in &cells {
        if c.chaos {
            let clean = cells
                .iter()
                .find(|x| !x.chaos && x.rpn == c.rpn && x.rho == c.rho && x.hier == c.hier);
            if let Some(cl) = clean {
                if c.hier_makespan < cl.hier_makespan - 1e-12
                    || c.flat_makespan < cl.flat_makespan - 1e-12
                {
                    failures.push(format!(
                        "{} rpn={} rho={}: inter-link chaos sped a run up",
                        c.hier.name(),
                        c.rpn,
                        c.rho
                    ));
                }
            }
        }
    }

    if run_gate {
        // Headline: once the effective inter/intra β ratio reaches 8× (ρ = 2
        // with β_e/β_i = 4×), hierarchical Ok-Topk must beat flat Ok-Topk.
        let ok = cells.iter().find(|c| c.hier == Scheme::HierOkTopk && !c.chaos && c.rho >= 2.0);
        match ok {
            Some(c) if c.speedup() > 1.0 => {
                eprintln!(
                    "gate: Hier-Ok-Topk beats flat Ok-Topk at rho={} ({:.2}x)",
                    c.rho,
                    c.speedup()
                );
            }
            Some(c) => failures.push(format!(
                "Hier-Ok-Topk does not beat flat Ok-Topk at rho={}: {:.4} vs {:.4}",
                c.rho, c.hier_makespan, c.flat_makespan
            )),
            None => failures.push("no Hier-Ok-Topk gate cell found".into()),
        }
        // Determinism: the same cell twice must be bit-identical.
        let a = makespan(Scheme::HierOkTopk, p, 4, 2.0, true);
        let b = makespan(Scheme::HierOkTopk, p, 4, 2.0, true);
        if a.to_bits() != b.to_bits() {
            failures.push(format!("nondeterministic hier run: {a:?} vs {b:?}"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("gate: FAIL — {f}");
            }
            std::process::exit(1);
        }
        eprintln!("gate: OK (hier wins at rho >= 2, runs deterministic, chaos never helps)");
    } else if !failures.is_empty() {
        for f in &failures {
            eprintln!("WARN — {f}");
        }
    }
}
