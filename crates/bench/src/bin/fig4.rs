//! Figure 4 reproduction: gradient value distribution and local top-k threshold
//! predictions (accurate vs Ok-Topk's reused threshold vs Gaussiank's estimate).
//!
//! Trains each of the three models briefly, then at an iteration ≥25 steps after
//! the last threshold re-evaluation snapshots the Ok-Topk *accumulator* and prints
//! its histogram together with the three thresholds. Expected shape: the reused
//! Ok-Topk threshold lands close to the accurate one; the Gaussian estimate lands
//! above it (the fitted normal has a longer tail than the sharply peaked real
//! distribution), i.e. Gaussiank under-selects.

use dnn::data::{SyntheticImages, SyntheticMaskedLm, SyntheticSequences};
use dnn::models::{BertLite, LstmNet, VggLite};
use dnn::{Model, TrainStats};
use okbench::iters;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{Cluster, CostModel};
use sparse::select::exact_threshold;
use sparse::stats::Histogram;
use sparse::threshold::GaussianEstimator;
use train::CostProfile;

/// Drive Ok-Topk SGD on `p` ranks for `total` iterations; at `snapshot_t` return
/// rank 0's accumulator together with the threshold Ok-Topk is reusing.
#[allow(clippy::too_many_arguments)]
fn snapshot_accumulator<M, FM, FB>(
    p: usize,
    density: f64,
    tau_prime: usize,
    total: usize,
    snapshot_t: usize,
    lr: f32,
    make_model: FM,
    make_batch: FB,
) -> (Vec<f32>, f32)
where
    M: Model,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    let cost = CostProfile::paper_calibrated().network();
    let _ = cost;
    let report = Cluster::new(p, CostModel::free()).run(|comm| {
        let mut model = make_model();
        let n = model.num_params();
        let k = ((n as f64 * density) as usize).max(1);
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(64, tau_prime));
        let mut out: Option<(Vec<f32>, f32)> = None;
        for t in 1..=total {
            let batch = make_batch((t - 1) as u64, comm.rank(), comm.size());
            model.zero_grads();
            let _: TrainStats = model.forward_backward(&batch);
            if t == snapshot_t && comm.rank() == 0 {
                out = Some((sgd.peek_accumulator(model.grads(), lr), 0.0));
            }
            let step = sgd.step(comm, model.grads(), lr);
            if t == snapshot_t {
                if let Some((_, th)) = out.as_mut() {
                    *th = step.meta.local_th;
                }
            }
            let update = step.update;
            let params = model.params_mut();
            for (i, v) in update.iter() {
                params[i as usize] -= v;
            }
        }
        out
    });
    report.results.into_iter().next().flatten().unwrap_or((Vec::new(), 0.0))
}

fn print_panel(name: &str, density: f64, acc: &[f32], reused_th: f32) {
    let n = acc.len();
    let k = ((n as f64 * density) as usize).max(1);
    let accurate = exact_threshold(acc, k);
    let gaussian = GaussianEstimator::raw_threshold(acc, k);
    let selected_ok = acc.iter().filter(|v| v.abs() >= reused_th).count();
    let selected_gauss = acc.iter().filter(|v| v.abs() >= gaussian).count();

    println!("\n=== {name} (n = {n}, density = {:.2}%) ===", density * 100.0);
    println!("  accurate threshold      {accurate:>12.6}  (selects exactly ~k = {k})");
    println!(
        "  Ok-Topk reused threshold{reused_th:>12.6}  (selects {selected_ok}, {:+.1}% vs k)",
        100.0 * (selected_ok as f64 - k as f64) / k as f64
    );
    println!(
        "  Gaussiank threshold     {gaussian:>12.6}  (selects {selected_gauss}, {:+.1}% vs k)",
        100.0 * (selected_gauss as f64 - k as f64) / k as f64
    );

    // Histogram of the central mass of the distribution.
    let spread = 4.0 * accurate as f64;
    let mut h = Histogram::new(-spread, spread, 41);
    h.add_all(acc);
    let max_count = h.counts().iter().copied().max().unwrap_or(1).max(1);
    println!("  value distribution (log-scaled bars; | marks ±accurate threshold):");
    for (i, &c) in h.counts().iter().enumerate() {
        let center = h.bin_center(i);
        let bar_len = if c == 0 {
            0
        } else {
            (40.0 * ((c as f64).ln_1p() / (max_count as f64).ln_1p())) as usize
        };
        let marker = if (center.abs() - accurate as f64).abs() < spread / 41.0 { "|" } else { " " };
        println!("   {center:>10.5} {marker} {}", "#".repeat(bar_len));
    }
    let (below, above) = h.outliers();
    println!("   (outside range: {below} below, {above} above)");
}

/// Largest iteration ≤ `total` that sits exactly 26 iterations after a threshold
/// re-evaluation (Algorithm 1 re-evaluates when (t−1) mod τ′ == 0), so the
/// snapshot shows a threshold reused for >25 iterations as in the paper's Fig. 4.
fn snapshot_iteration(total: usize, tau_prime: usize) -> usize {
    ((total.saturating_sub(27)) / tau_prime) * tau_prime + 27
}

fn main() {
    okbench::Header::begin("fig4", !okbench::full_scale()).print_text();
    println!("Figure 4 — gradient value distributions and threshold predictions");

    // VGG on synthetic images, density 2%, τ′ = 32; snapshot 26 iterations after a
    // re-evaluation (t = 59: last re-eval at t = 33).
    {
        let total = iters(160, 400);
        let data = SyntheticImages::new(2);
        let (acc, th) = snapshot_accumulator(
            4,
            0.02,
            32,
            total,
            snapshot_iteration(total, 32),
            0.05,
            || VggLite::new(16),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        print_panel("VGG-16 stand-in on Cifar-10 stand-in", 0.02, &acc, th);
    }

    // LSTM, density 2%, τ′ = 32.
    {
        let total = iters(160, 400);
        let data = SyntheticSequences::new(3);
        let (acc, th) = snapshot_accumulator(
            4,
            0.02,
            32,
            total,
            snapshot_iteration(total, 32),
            0.2,
            || LstmNet::new(21),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        print_panel("LSTM stand-in on AN4 stand-in", 0.02, &acc, th);
    }

    // BERT, density 1%, τ′ = 128 in the paper; quick mode uses 32 so the snapshot
    // still happens ≥25 iterations after a re-evaluation within a short run.
    {
        let tau_prime = if okbench::full_scale() { 128 } else { 32 };
        let total = iters(160, 400);
        let data = SyntheticMaskedLm::new(5);
        let (acc, th) = snapshot_accumulator(
            4,
            0.01,
            tau_prime,
            total,
            snapshot_iteration(total, tau_prime),
            1.0, // Adam mode: raw gradients accumulate
            || BertLite::new(13),
            move |it, r, w| data.train_batch(it, r, w, 4),
        );
        print_panel("BERT stand-in on Wikipedia stand-in", 0.01, &acc, th);
    }
}
