//! Figure 5 reproduction: the empirical value of ξ (Assumption 1) over training,
//! for each model at two densities.
//!
//! Expected shape: ξ rises in early training and then stabilizes (or grows slowly
//! as the true gradient norm shrinks), and the higher density gives the smaller ξ.
//! The paper's convergence argument needs ξ ≲ P.

use dnn::data::{SyntheticImages, SyntheticMaskedLm, SyntheticSequences};
use dnn::models::{BertLite, LstmNet, VggLite};
use okbench::iters;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn xi_series(res: &train::RunResult) -> Vec<(usize, f64)> {
    res.records.iter().filter_map(|r| r.xi.map(|x| (r.t, x))).collect()
}

fn print_xi(model: &str, density: f64, p: usize, series: &[(usize, f64)]) {
    println!("\n{model}, density = {:.1}%, P = {p}", density * 100.0);
    for (t, xi) in series {
        let bar = "#".repeat(((xi * 8.0).min(60.0)) as usize);
        println!("  iter {t:>5}  xi = {xi:>8.3}  {bar}");
    }
    let max = series.iter().map(|(_, x)| *x).fold(0.0f64, f64::max);
    println!("  max xi = {max:.3} (convergence needs xi ≲ P = {p})");
}

fn main() {
    okbench::Header::begin("fig5", !okbench::full_scale()).print_text();
    println!("Figure 5 — empirical xi over training (Assumption 1 validation)");
    let p = 4;
    let total = iters(48, 160);
    let every = (total / 12).max(1);

    // (a) VGG, densities 1% and 2%.
    for &density in &[0.01, 0.02] {
        let mut cfg = TrainConfig::new(Scheme::OkTopk, density);
        cfg.iters = total;
        cfg.tau = 16;
        cfg.tau_prime = 16;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        cfg.measure_xi_every = every;
        let data = SyntheticImages::new(2);
        let res = run_data_parallel(
            p,
            &cfg,
            || VggLite::new(16),
            move |it, r, w| data.train_batch(it, r, w, 4),
            &[],
        );
        print_xi("VGG-16 stand-in", density, p, &xi_series(&res));
    }

    // (b) LSTM, densities 2% and 4%.
    for &density in &[0.02, 0.04] {
        let mut cfg = TrainConfig::new(Scheme::OkTopk, density);
        cfg.iters = total;
        cfg.tau = 16;
        cfg.tau_prime = 16;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.2 };
        cfg.measure_xi_every = every;
        let data = SyntheticSequences::new(3);
        let res = run_data_parallel(
            p,
            &cfg,
            || LstmNet::new(21),
            move |it, r, w| data.train_batch(it, r, w, 4),
            &[],
        );
        print_xi("LSTM stand-in", density, p, &xi_series(&res));
    }

    // (c) BERT, densities 1% and 2% (Adam recipe: sparse allreduce on raw grads).
    for &density in &[0.01, 0.02] {
        let mut cfg = TrainConfig::new(Scheme::OkTopk, density);
        cfg.iters = total;
        cfg.tau = 16;
        cfg.tau_prime = 16;
        cfg.optimizer = OptimizerKind::Adam { lr: 2e-4, weight_decay: 0.01 };
        cfg.measure_xi_every = every;
        let data = SyntheticMaskedLm::new(5);
        let res = run_data_parallel(
            p,
            &cfg,
            || BertLite::new(13),
            move |it, r, w| data.train_batch(it, r, w, 4),
            &[],
        );
        print_xi("BERT stand-in", density, p, &xi_series(&res));
    }
}
