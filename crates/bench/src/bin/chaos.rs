//! Robustness harness: how gracefully does each allreduce variant degrade when
//! the cluster misbehaves?
//!
//! For every variant (Dense, TopkA, TopkDSA, gTopk, Gaussiank, Ok-Topk) and
//! every cluster size P, the harness runs a fixed data-parallel step —
//! per-iteration forward/backward compute plus one gradient reduce — under a
//! family of deterministic chaos plans:
//!
//! - **straggler severity sweep**: one rank computes 1×–4× slower (1× = clean
//!   baseline), measuring `slowdown(s) = makespan(s) / makespan(1)`;
//! - **jitter sweep**: every message picks up seeded uniform extra head latency
//!   of up to {50, 200}×α, at clean compute speed.
//!
//! All times are *modeled* (virtual seconds), so every cell is deterministic:
//! the gate re-runs one cell and fails on any bit difference. Emits
//! `BENCH_PR5.json` with the per-variant slowdown-vs-severity curves.
//!
//! Usage: `cargo run --release -p okbench --bin chaos [-- --quick] [--gate]
//! [--out PATH]`. `--gate` runs a tiny P=4 sweep and exits non-zero if any
//! perturbed cell finishes *faster* than its clean baseline (chaos must never
//! help) or if a repeated cell is not bit-identical — the smoke run wired into
//! `scripts/check.sh`.

use simnet::{ChaosPlan, Cluster, Comm};
use train::{CostProfile, Reducer, Scheme, Update};

/// Gradient length: small enough that a full sweep stays fast, large enough
/// that compute (`fwd_bwd`) and communication are comparable — a straggler
/// that only stretched compute on a comm-dominated run would show nothing.
const N: usize = 16_384;
const DENSITY: f64 = 0.02;
const ITERS: usize = 4;

/// The six variants of the robustness matrix (DenseOvlp's overlap window
/// depends on a backward-pass schedule the fixed step here does not model).
const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::TopkA,
    Scheme::TopkDsa,
    Scheme::GTopk,
    Scheme::GaussianK,
    Scheme::OkTopk,
];

const SEVERITIES: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
/// Jitter bounds as multiples of the network α. Messages here are big enough
/// that β·L dominates α, so meaningful jitter needs to be many α deep —
/// [50α, 200α] spans "noisy switch" to "congested fabric" territory and is
/// where message-count differences between variants become visible.
const JITTER_LEVELS: [f64; 2] = [50.0, 200.0];

fn grad(rank: usize, iter: usize) -> Vec<f32> {
    (0..N)
        .map(|i| {
            let x = (i * (rank + 2) + iter * 131) as f32;
            let spike = if i % 211 == (rank * 13 + iter) % 211 { 3.0 } else { 0.0 };
            (x * 0.01).sin() * 0.25 + spike
        })
        .collect()
}

/// Modeled makespan of `ITERS` data-parallel steps of `scheme` at size `p`
/// under `plan` (empty plan = clean baseline). Returns virtual seconds.
fn step_makespan(scheme: Scheme, p: usize, plan: ChaosPlan) -> f64 {
    let profile = CostProfile::paper_calibrated().scaled_for_model(N);
    let fwd = profile.fwd_bwd(N);
    let report = Cluster::new(p, profile.network()).with_chaos(plan).run(move |comm: &mut Comm| {
        let mut reducer = Reducer::new(scheme, N, DENSITY, profile, 8, 8);
        for it in 0..ITERS {
            comm.compute(fwd);
            let g = grad(comm.rank(), it);
            let (update, _) = reducer.reduce(comm, &g, 0.1);
            match update {
                Update::Dense(v) => std::hint::black_box(v.len()),
                Update::Sparse(coo) => std::hint::black_box(coo.indexes().len()),
            };
        }
    });
    report.makespan()
}

struct Cell {
    severity: f64,
    slowdown: f64,
}

struct Curve {
    scheme: Scheme,
    p: usize,
    clean_makespan: f64,
    straggler: Vec<Cell>,
    jitter: Vec<Cell>,
}

/// One (scheme, P) row: the straggler severity curve plus the jitter curve,
/// both normalized by the clean baseline.
fn sweep(scheme: Scheme, p: usize) -> Curve {
    let clean = step_makespan(scheme, p, ChaosPlan::new(0));
    let straggler = SEVERITIES
        .iter()
        .map(|&s| {
            let t = if s == 1.0 {
                clean
            } else {
                step_makespan(scheme, p, ChaosPlan::new(0).straggler(0, s))
            };
            Cell { severity: s, slowdown: t / clean }
        })
        .collect();
    let alpha = CostProfile::paper_calibrated().scaled_for_model(N).network().alpha;
    let jitter = JITTER_LEVELS
        .iter()
        .map(|&lvl| {
            let t = step_makespan(scheme, p, ChaosPlan::new(7).jitter(lvl * alpha));
            Cell { severity: lvl, slowdown: t / clean }
        })
        .collect();
    Curve { scheme, p, clean_makespan: clean, straggler, jitter }
}

fn write_json(path: &str, header: &okbench::Header, sizes: &[usize], curves: &[Curve]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&header.json_fields());
    out.push_str(&format!("  \"n\": {N},\n"));
    out.push_str(&format!("  \"density\": {DENSITY},\n"));
    out.push_str(&format!("  \"iters\": {ITERS},\n"));
    out.push_str(&format!(
        "  \"cluster_sizes\": [{}],\n",
        sizes.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in curves.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": \"{}\",\n", c.scheme.name()));
        out.push_str(&format!("      \"p\": {},\n", c.p));
        out.push_str(&format!("      \"clean_makespan\": {:.6e},\n", c.clean_makespan));
        out.push_str("      \"straggler_curve\": [\n");
        for (j, cell) in c.straggler.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"severity\": {:.1}, \"slowdown\": {:.4}}}{}\n",
                cell.severity,
                cell.slowdown,
                if j + 1 < c.straggler.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"jitter_curve\": [\n");
        for (j, cell) in c.jitter.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"alpha_mult\": {:.1}, \"slowdown\": {:.4}}}{}\n",
                cell.severity,
                cell.slowdown,
                if j + 1 < c.jitter.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < curves.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let run_gate = args.iter().any(|a| a == "--gate");
    let header = okbench::Header::begin("chaos", quick || run_gate);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR5.json")
        .to_string();

    let sizes: &[usize] = if run_gate {
        &[4]
    } else if quick {
        &[8, 16]
    } else {
        &[8, 16, 32]
    };

    eprintln!("chaos: n={N} density={DENSITY} iters={ITERS} sizes={sizes:?}");
    let mut curves = Vec::new();
    let mut failures = Vec::new();
    for &p in sizes {
        for scheme in SCHEMES {
            let c = sweep(scheme, p);
            let worst = c.straggler.last().map(|x| x.slowdown).unwrap_or(1.0);
            eprintln!(
                "  p={:<3} {:<10} clean {:>10.4e}s  straggler 4x -> {:.2}x  jitter 200a -> {:.2}x",
                p,
                c.scheme.name(),
                c.clean_makespan,
                worst,
                c.jitter.last().map(|x| x.slowdown).unwrap_or(1.0),
            );
            // Chaos can only add modeled time; allow a whisker of float slack.
            for cell in c.straggler.iter().chain(&c.jitter) {
                if cell.slowdown < 1.0 - 1e-9 {
                    failures.push(format!(
                        "{} p={} severity {:.1}: slowdown {:.4} < 1.0",
                        c.scheme.name(),
                        p,
                        cell.severity,
                        cell.slowdown
                    ));
                }
            }
            curves.push(c);
        }
    }

    write_json(&out_path, &header, sizes, &curves);
    eprintln!("wrote {out_path}");

    if run_gate {
        // Determinism: the same plan must reproduce the same modeled makespan
        // to the bit.
        let p = sizes[0];
        let a = step_makespan(Scheme::OkTopk, p, ChaosPlan::new(3).straggler(0, 2.0).jitter(1e-5));
        let b = step_makespan(Scheme::OkTopk, p, ChaosPlan::new(3).straggler(0, 2.0).jitter(1e-5));
        if a.to_bits() != b.to_bits() {
            failures.push(format!("nondeterministic chaos run: {a:?} vs {b:?}"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("gate: FAIL — {f}");
            }
            std::process::exit(1);
        }
        eprintln!("gate: OK (all slowdowns >= 1.0, chaos runs deterministic)");
    }
}
