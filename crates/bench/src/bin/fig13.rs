//! Figure 13 reproduction: BERT pre-training loss vs modeled time on 32 ranks,
//! density 1%, comparing DenseOvlp (lossless baseline), Gaussiank (highest
//! baseline throughput) and Ok-Topk — the same three the paper plots.
//!
//! Expected shape: Ok-Topk's loss curve tracks DenseOvlp's closely per iteration
//! (similar convergence rate) while reaching any given loss in far less modeled
//! time (paper: >3× total time reduction, and 1.30× over Gaussiank).

use dnn::data::SyntheticMaskedLm;
use dnn::models::BertLite;
use okbench::{convergence_panel, iters};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig13", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::DenseOvlp, 0.01);
    cfg.iters = iters(1200, 4000);
    cfg.local_batch = 2;
    cfg.optimizer = OptimizerKind::Adam { lr: 1e-3, weight_decay: 0.01 };
    cfg.lr_decay_iters = cfg.iters;
    cfg.tau = 32;
    cfg.tau_prime = 32;
    cfg.eval_every = (cfg.iters / 8).max(1);

    let data = SyntheticMaskedLm::new(5);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 16)).collect();
    let local_batch = cfg.local_batch;

    let results = convergence_panel(
        "Figure 13 — BERT stand-in pre-training loss vs modeled time, density 1%",
        "mlm-loss",
        32,
        &[Scheme::DenseOvlp, Scheme::GaussianK, Scheme::OkTopk],
        &cfg,
        || BertLite::new(13),
        move |it, r, w| data.train_batch(it, r, w, local_batch),
        &eval,
        None,
    );

    println!("\nSummary: final loss and total modeled training time");
    let mut okt_time = None;
    let mut dense_time = None;
    let mut gauss_time = None;
    for (scheme, res) in &results {
        if let Some(last) = res.evals.last() {
            println!(
                "  {:<10} loss {:.4}  modeled time {:>9.2}s",
                scheme.name(),
                last.loss,
                last.time
            );
            match scheme {
                Scheme::OkTopk => okt_time = Some(last.time),
                Scheme::DenseOvlp => dense_time = Some(last.time),
                Scheme::GaussianK => gauss_time = Some(last.time),
                _ => {}
            }
        }
    }
    if let (Some(o), Some(d), Some(g)) = (okt_time, dense_time, gauss_time) {
        println!("\n  total-time speedup of Ok-Topk: {:.2}x vs DenseOvlp (paper: >3x), {:.2}x vs Gaussiank (paper: 1.30x)", d / o, g / o);
    }
}
