//! Figure 9 reproduction: top-1 test accuracy vs modeled runtime for the VGG
//! stand-in (density 2%) on 16 and 32 ranks, all schemes.
//!
//! Expected shape: Ok-Topk reaches accuracy close to Dense/DenseOvlp (no
//! accuracy loss from sparsification with residuals) and gets there in the least
//! modeled time (fastest time-to-solution).

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use okbench::{convergence_panel, iters};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig9", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::Dense, 0.02);
    cfg.iters = iters(300, 800);
    cfg.local_batch = 4;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.08 };
    cfg.lr_decay_iters = cfg.iters / 2;
    cfg.tau = 16;
    cfg.tau_prime = 16;
    cfg.eval_every = (cfg.iters / 6).max(1);

    // Noise 1.6 gives a non-trivial Bayes floor so accuracy curves look like the
    // paper's (rise to ~0.9) instead of saturating at 1.0 instantly.
    let data = SyntheticImages::with_shape(2, 10, 3, 16, 1.6);
    let eval: Vec<_> = (0..4).map(|b| data.test_batch(b, 32)).collect();
    let local_batch = cfg.local_batch;

    for p in [16usize, 32] {
        let results = convergence_panel(
            "Figure 9 — top-1 test accuracy vs time, VGG stand-in, density 2%",
            "top1-acc",
            p,
            &Scheme::all(),
            &cfg,
            || VggLite::new(16),
            {
                let data = data.clone();
                move |it, r, w| data.train_batch(it, r, w, local_batch)
            },
            &eval,
            Some(true),
        );
        println!("\nSummary at P = {p}: final accuracy and modeled training time");
        for (scheme, res) in &results {
            if let Some(last) = res.evals.last() {
                println!(
                    "  {:<10} acc {:.4}  time {:>8.2}s",
                    scheme.name(),
                    last.accuracy,
                    last.time
                );
            }
        }
        println!();
    }
}
