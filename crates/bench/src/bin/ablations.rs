//! Ablation studies for the design choices DESIGN.md calls out, beyond the
//! paper's own Fig. 7:
//!
//! 1. bucket-size sweep for split-and-reduce (§3.1.1 bucketing),
//! 2. space-repartition period τ sweep (cost of repartitioning vs staleness),
//! 3. data-balancing trigger threshold sweep (§3.1.2's 4×),
//! 4. the paper's closing claim: Ok-Topk's advantage over dense allreduce grows
//!    on commodity (slow) networks.

use okbench::print_series;
use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::Cluster;
use sparse::select::topk_exact;
use train::CostProfile;

fn clustered_accs(p: usize, n: usize, seed: u64, drift: f32) -> Vec<Vec<Vec<f32>>> {
    // A short stream of accumulators per worker whose hot band drifts slowly.
    let mut rng = StdRng::seed_from_u64(seed);
    let iters = 6;
    (0..iters)
        .map(|it| {
            let band_lo = n / 8 + ((it as f32 * drift * n as f32) as usize) % (n / 2);
            let band_hi = band_lo + n / 64;
            (0..p)
                .map(|_| {
                    (0..n)
                        .map(|i| {
                            let base: f32 = rng.gen_range(-0.01f32..0.01);
                            if i >= band_lo && i < band_hi {
                                base + rng.gen_range(-1.0f32..1.0)
                            } else {
                                base
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn run_stream(p: usize, _n: usize, _k: usize, cfg: OkTopkConfig, stream: &[Vec<Vec<f32>>]) -> f64 {
    let cost = CostProfile::paper_calibrated();
    let stream = stream.to_vec();
    Cluster::new(p, cost.network())
        .run(move |comm| {
            let mut okt = OkTopk::new(cfg.clone());
            for (i, accs) in stream.iter().enumerate() {
                okt.allreduce(comm, &accs[comm.rank()], i + 1);
            }
            comm.now()
        })
        .results
        .iter()
        .copied()
        .fold(0.0, f64::max)
        * 1e3
}

fn main() {
    let (p, n) = (32usize, 1usize << 16);
    let k = n / 100;
    let cost = CostProfile::paper_calibrated();
    let stream = clustered_accs(p, n, 3, 0.02);

    println!("Ablation 1 — bucket size in split-and-reduce (P = {p}, modeled ms for 6 iters)");
    let buckets = [1usize, 2, 4, 8, 16, 31];
    let times: Vec<f64> = buckets
        .iter()
        .map(|&b| {
            run_stream(
                p,
                n,
                k,
                OkTopkConfig::new(n, k)
                    .with_bucket_size(b)
                    .with_merge_cost(cost.merge_per_elem)
                    .with_periods(4, 4),
                &stream,
            )
        })
        .collect();
    print_series("bucket size", &buckets.iter().map(|&b| b as f64).collect::<Vec<_>>());
    print_series("total time (ms)", &times);

    println!("\nAblation 2 — space-repartition period tau (drifting hot band)");
    let taus = [1usize, 2, 4, 8, 1000];
    let times: Vec<f64> = taus
        .iter()
        .map(|&tau| {
            run_stream(
                p,
                n,
                k,
                OkTopkConfig::new(n, k).with_periods(tau, 4).with_merge_cost(cost.merge_per_elem),
                &stream,
            )
        })
        .collect();
    print_series("tau", &taus.iter().map(|&t| t as f64).collect::<Vec<_>>());
    print_series("total time (ms)", &times);

    println!("\nAblation 3 — data-balancing trigger threshold (×mean)");
    let triggers = [1.0f64, 2.0, 4.0, 8.0, 1e9];
    let times: Vec<f64> = triggers
        .iter()
        .map(|&tr| {
            let mut cfg = OkTopkConfig::new(n, k).with_periods(4, 4);
            cfg.balance_trigger = tr;
            cfg.merge_cost_per_elem = cost.merge_per_elem;
            run_stream(p, n, k, cfg, &stream)
        })
        .collect();
    print_series("trigger", &triggers);
    print_series("total time (ms)", &times);

    println!("\nAblation 4 — Ok-Topk vs dense allreduce on Aries-class vs commodity networks");
    println!("(single steady-state exchange, P = {p}, n = {n}, k = {k}; modeled ms)");
    for (name, prof) in
        [("aries", CostProfile::paper_calibrated()), ("commodity", CostProfile::commodity_cloud())]
    {
        let mut rng = StdRng::seed_from_u64(9);
        let dense_in: Vec<Vec<f32>> =
            (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let t_dense = Cluster::new(p, prof.network())
            .run(|comm| {
                let mut d = dense_in[comm.rank()].clone();
                collectives::allreduce_inplace(comm, &mut d);
                comm.now()
            })
            .results
            .iter()
            .copied()
            .fold(0.0, f64::max);
        let locals: Vec<Vec<f32>> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = {
                    let mut r2 = StdRng::seed_from_u64(11);
                    (0..n).map(|_| r2.gen_range(-1.0f32..1.0)).collect()
                };
                topk_exact(&dense, k).to_dense(n)
            })
            .collect();
        let t_okt = {
            let locals = locals.clone();
            Cluster::new(p, prof.network())
                .run(move |comm| {
                    let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1000, 1000));
                    okt.allreduce(comm, &locals[comm.rank()], 1);
                    let t1 = comm.now();
                    okt.allreduce(comm, &locals[comm.rank()], 2);
                    comm.now() - t1
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        // The paper's claim concerns *end-to-end* training speedup: on slower
        // networks communication dominates the iteration, so cutting its volume
        // buys more total time. Compose one modeled training iteration.
        let compute = prof.fwd_bwd(n);
        let sparsify = prof.scan(n, 1);
        let iter_dense = compute + t_dense;
        let iter_okt = compute + sparsify + t_okt;
        println!(
            "  {name:<10} comm: dense {:>8.4} ms, ok-topk {:>8.4} ms | full iteration speedup {:>5.2}x",
            t_dense * 1e3,
            t_okt * 1e3,
            iter_dense / iter_okt
        );
    }
    println!("  (the paper predicts the full-iteration speedup grows on the slower network)");

    println!("\nAblation 5 — two-level topology (8 ranks/node, intra-node link 8x faster)");
    println!("(steady-state exchange, P = {p}, modeled ms; flat vs hierarchical network)");
    for (name, hier) in [("flat", false), ("hierarchical", true)] {
        let mut net = CostProfile::paper_calibrated().network();
        if hier {
            net = net.with_hierarchy(8, 8.0);
        }
        let mut rng = StdRng::seed_from_u64(17);
        let dense_in: Vec<Vec<f32>> =
            (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let t_dense = Cluster::new(p, net)
            .run(|comm| {
                let mut d = dense_in[comm.rank()].clone();
                collectives::allreduce_inplace(comm, &mut d);
                comm.now()
            })
            .results
            .iter()
            .copied()
            .fold(0.0, f64::max);
        let accs: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                let mut r2 = StdRng::seed_from_u64(23 + r as u64);
                (0..n).map(|_| r2.gen_range(-1.0f32..1.0)).collect()
            })
            .collect();
        let t_okt = {
            let accs = accs.clone();
            Cluster::new(p, net)
                .run(move |comm| {
                    let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1000, 1000));
                    okt.allreduce(comm, &accs[comm.rank()], 1);
                    let t1 = comm.now();
                    okt.allreduce(comm, &accs[comm.rank()], 2);
                    comm.now() - t1
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        println!("  {name:<13} dense {:>8.4} ms   ok-topk {:>8.4} ms", t_dense * 1e3, t_okt * 1e3);
    }
    println!("  (both algorithms are topology-agnostic; the hierarchy model exists to study");
    println!("   placement-aware variants — the paper's hybrid-parallelism future work)");
}
