//! Figure 12 reproduction: weak scaling of BERT pre-training (density 1%) from 32
//! to 256 ranks, plus Ok-Topk's parallel efficiency.
//!
//! Expected shape: at 256 ranks the communication of TopkA/Gaussiank exceeds even
//! the dense allreduce (allgather ∝ P); TopkDSA sits in between (fill-in grows
//! with P); Ok-Topk stays flat. Paper: Ok-Topk beats everything 3.29×–12.95× at
//! 256 ranks and keeps 76.3% weak-scaling parallel efficiency vs 32 ranks.
//!
//! `--paper-axis` instead sweeps the scalable trio over P ∈ {256 … 4096} on
//! the event engine (clean + one chaos cell at the top P).

use dnn::data::SyntheticMaskedLm;
use dnn::models::BertLite;
use okbench::{full_scale, iters, paper_axis_panel, weak_scaling_panel};
use train::{OptimizerKind, Scheme, TrainConfig};

fn main() {
    okbench::Header::begin("fig12", !okbench::full_scale()).print_text();
    let mut cfg = TrainConfig::new(Scheme::Dense, 0.01);
    cfg.iters = iters(112, 240);
    cfg.local_batch = 1;
    cfg.optimizer = OptimizerKind::Adam { lr: 2e-4, weight_decay: 0.01 };
    let tau = if full_scale() { 32 } else { 16 };
    cfg.tau = tau;
    cfg.tau_prime = tau;

    let ps: Vec<usize> = vec![32, 64, 128, 256];
    let data = SyntheticMaskedLm::new(5);
    let local_batch = cfg.local_batch;

    if std::env::args().any(|a| a == "--paper-axis") {
        paper_axis_panel(
            "Figure 12 (paper axis) — BERT stand-in weak scaling to P = 4096 (density = 1%)",
            &cfg,
            || BertLite::new(13),
            move |it, r, w| data.train_batch(it, r, w, local_batch),
        );
        return;
    }
    let results = weak_scaling_panel(
        "Figure 12 — weak scaling of BERT stand-in pre-training (density = 1%)",
        &ps,
        &Scheme::all(),
        &cfg,
        cfg.iters * 3 / 4,
        || BertLite::new(13),
        move |it, r, w| data.train_batch(it, r, w, local_batch),
    );

    let okt_at = |p: usize| {
        results
            .iter()
            .find(|(pp, s, _)| *pp == p && *s == Scheme::OkTopk)
            .map(|(_, _, t)| *t)
            .expect("Ok-Topk ran")
    };
    let p_max = *ps.last().expect("non-empty");
    let okt = okt_at(p_max);
    println!("\nOk-Topk speedup over each scheme at P = {p_max} (paper: 3.29x-12.95x at 256):");
    for (p, s, t) in &results {
        if *p == p_max && *s != Scheme::OkTopk {
            println!("  vs {:<10} {:>6.2}x", s.name(), t / okt);
        }
    }

    // Weak-scaling parallel efficiency vs the 32-rank baseline (constant local
    // work → efficiency = t(32)/t(P)).
    println!("\nOk-Topk weak-scaling parallel efficiency (baseline P = 32; paper: 76.3% at 256):");
    let base = okt_at(ps[0]);
    for &p in &ps {
        println!("  P = {p:<4} efficiency = {:>5.1}%", 100.0 * base / okt_at(p));
    }
}
