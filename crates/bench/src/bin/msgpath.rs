//! Message-path wall-clock benchmark: pooled zero-copy envelopes vs the
//! boxed-per-message baseline, across cluster sizes P ∈ {4, 16, 64}.
//!
//! Each rank runs a bucketed ring exchange: send a bucket of `msg_elems`-word
//! f32 messages to the right neighbour, then drain the matching bucket from
//! the left (the split-reduce pattern). The *pooled* variant is the hot path —
//! buffers come from the per-rank free-list ([`simnet::Comm::take_f32`]),
//! travel as the inline `Payload::F32` variant, and are recycled on receipt.
//! The *boxed* variant reproduces the pre-PR path: a fresh `Vec` is cloned
//! per message, wrapped in a type the envelope cannot specialize (so it pays
//! the `Box<dyn Any>` heap round-trip), and dropped on the receiving thread —
//! including the cross-thread malloc/free traffic that pattern generates.
//!
//! Runs in free mode (zero modeled cost, no ledger/trace work) so the numbers
//! isolate the real per-message CPU cost of the envelope machinery itself.
//!
//! Emits `BENCH_PR4.json` with messages/sec and bytes/sec per variant and P.
//!
//! Usage: `cargo run --release -p okbench --bin msgpath [-- --quick] [--gate]
//! [--out PATH]`. `--gate` exits non-zero if the pooled path loses to the
//! boxed baseline (speedup < 1.0) at P = 16 — the regression gate run by
//! `scripts/check.sh`.

use std::hint::black_box;
use std::time::Instant;

use simnet::{Cluster, CostModel, WireSize};

const TAG: u64 = 0x77;

/// A payload shape the envelope cannot specialize: forces `Payload::Boxed`,
/// i.e. one `Box<dyn Any>` allocation per message — the pre-PR wire format.
struct Opaque(Vec<f32>);

impl WireSize for Opaque {
    fn wire_elems(&self) -> u64 {
        self.0.len() as u64
    }
}

struct RunStats {
    /// Total messages moved across the cluster.
    msgs: u64,
    /// Median wall-clock seconds over the trials.
    secs: f64,
}

impl RunStats {
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.secs
    }
}

/// One timed cluster run of the bucketed ring exchange: send a bucket of
/// messages to the right neighbour, then drain the matching bucket from the
/// left — the pattern of the split-reduce phase, with the bucket keeping
/// enough messages in flight that ranks are not woken per message. In the
/// pooled variant the drain recycles every buffer the next bucket's sends
/// take back out, so its steady state performs no heap allocation at all.
fn ring_exchange(p: usize, msg_elems: usize, bucket: usize, msgs: usize, pooled: bool) -> f64 {
    let start = Instant::now();
    let report = Cluster::new(p, CostModel::free()).run(move |comm| {
        comm.set_free_mode(true);
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let src: Vec<f32> =
            (0..msg_elems).map(|i| i as f32 * 0.5 + comm.rank() as f32 + 1.0).collect();
        let mut check = 0.0f64;
        for _ in 0..msgs / bucket {
            if pooled {
                for _ in 0..bucket {
                    let mut buf = comm.take_f32(msg_elems);
                    buf.extend_from_slice(&src);
                    comm.send(right, TAG, buf);
                }
                for _ in 0..bucket {
                    let got: Vec<f32> = comm.recv(left, TAG);
                    check += got[0] as f64;
                    comm.recycle_f32(got);
                }
            } else {
                for _ in 0..bucket {
                    comm.send(right, TAG, Opaque(src.clone()));
                }
                for _ in 0..bucket {
                    let got: Opaque = comm.recv(left, TAG);
                    check += got.0[0] as f64;
                }
            }
        }
        black_box(check)
    });
    black_box(&report.results);
    start.elapsed().as_secs_f64()
}

/// Median-of-trials stats for one (P, variant) cell.
fn measure(
    p: usize,
    msg_elems: usize,
    bucket: usize,
    msgs: usize,
    trials: usize,
    pooled: bool,
) -> RunStats {
    // Warm-up run: thread spawn paths, channel blocks, pool population.
    ring_exchange(p, msg_elems, bucket, msgs.min(bucket * 20), pooled);
    let mut samples: Vec<f64> =
        (0..trials).map(|_| ring_exchange(p, msg_elems, bucket, msgs, pooled)).collect();
    samples.sort_by(f64::total_cmp);
    RunStats { msgs: (p * msgs) as u64, secs: samples[samples.len() / 2] }
}

struct Row {
    p: usize,
    pooled: RunStats,
    boxed: RunStats,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.pooled.msgs_per_sec() / self.boxed.msgs_per_sec()
    }
}

fn write_json(path: &str, header: &okbench::Header, msg_elems: usize, bucket: usize, rows: &[Row]) {
    let bytes = (msg_elems * 4) as f64;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&header.json_fields());
    out.push_str(&format!("  \"msg_elems\": {msg_elems},\n"));
    out.push_str(&format!("  \"msg_bytes\": {},\n", msg_elems * 4));
    out.push_str(&format!("  \"bucket\": {bucket},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"p\": {},\n", r.p));
        out.push_str(&format!("      \"messages\": {},\n", r.pooled.msgs));
        out.push_str(&format!("      \"pooled_msgs_per_sec\": {:.0},\n", r.pooled.msgs_per_sec()));
        out.push_str(&format!("      \"boxed_msgs_per_sec\": {:.0},\n", r.boxed.msgs_per_sec()));
        out.push_str(&format!(
            "      \"pooled_bytes_per_sec\": {:.0},\n",
            r.pooled.msgs_per_sec() * bytes
        ));
        out.push_str(&format!(
            "      \"boxed_bytes_per_sec\": {:.0},\n",
            r.boxed.msgs_per_sec() * bytes
        ));
        out.push_str(&format!("      \"speedup\": {:.3}\n", r.speedup()));
        out.push_str(if i + 1 < rows.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let header = okbench::Header::begin("msgpath", quick);
    let run_gate = args.iter().any(|a| a == "--gate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR4.json")
        .to_string();

    let msg_elems = 256; // 1 KiB messages: the COO-shard / dense-chunk regime
                         // Bucket depth within the per-rank pool cap, so the pooled variant's
                         // steady state recycles every buffer the next bucket takes (the
                         // collectives' own bucket sizes sit in the same range).
    let bucket = 32;
    let (msgs, trials) = if quick { (20_000, 2) } else { (60_000, 3) };
    let cluster_sizes = [4usize, 16, 64];

    eprintln!("msgpath: msg_elems={msg_elems} bucket={bucket} msgs/rank={msgs} quick={quick}");
    let mut rows = Vec::new();
    for &p in &cluster_sizes {
        // Keep cluster-wide message totals comparable: fewer per-rank
        // messages at higher P.
        let m = (msgs * 16 / p).max(2_000);
        let pooled = measure(p, msg_elems, bucket, m, trials, true);
        let boxed = measure(p, msg_elems, bucket, m, trials, false);
        let row = Row { p, pooled, boxed };
        eprintln!(
            "  p={:<3} pooled {:>12.0} msg/s  boxed {:>12.0} msg/s  speedup {:.2}x",
            p,
            row.pooled.msgs_per_sec(),
            row.boxed.msgs_per_sec(),
            row.speedup()
        );
        rows.push(row);
    }

    write_json(&out_path, &header, msg_elems, bucket, &rows);
    eprintln!("wrote {out_path}");

    if run_gate {
        let p16 = rows.iter().find(|r| r.p == 16).expect("P=16 row present");
        if p16.speedup() < 1.0 {
            eprintln!(
                "gate: FAIL — pooled path {:.3}x vs boxed at P=16 (must be ≥ 1.0)",
                p16.speedup()
            );
            std::process::exit(1);
        }
        eprintln!("gate: OK (pooled {:.2}x boxed at P=16)", p16.speedup());
    }
}
