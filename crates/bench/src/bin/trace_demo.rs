//! Timeline demo: watch split-and-reduce's destination rotation pipeline the
//! network (Fig. 2's optimization), as ASCII Gantt charts of each rank's modeled
//! activity.

use oktopk::split_reduce::split_and_reduce;
use oktopk::OkTopkConfig;
use rand::prelude::*;
use simnet::{render_timeline, Cluster};
use sparse::partition::equal_boundaries;
use sparse::select::topk_exact;
use sparse::CooGradient;
use sparse::SelectScratch;
use train::CostProfile;

fn main() {
    let (p, n) = (8usize, 1usize << 14);
    let k = n / 50;
    let cost = CostProfile::paper_calibrated();
    let locals: Vec<CooGradient> = {
        let mut rng = StdRng::seed_from_u64(4);
        (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect()
    };
    let bounds = equal_boundaries(n as u32, p);

    for rotation in [false, true] {
        let locals = locals.clone();
        let bounds = bounds.clone();
        let report = Cluster::new(p, cost.network()).run(move |comm| {
            comm.enable_trace();
            let cfg = OkTopkConfig::new(n, k)
                .with_rotation(rotation)
                .with_merge_cost(cost.merge_per_elem);
            split_and_reduce(comm, &cfg, &locals[comm.rank()], &bounds, &mut SelectScratch::new());
            comm.take_trace()
        });
        println!(
            "\nsplit-and-reduce, P = {p}, {} (makespan {:.2} µs):",
            if rotation { "WITH destination rotation" } else { "naive send order" },
            report.makespan() * 1e6
        );
        print!("{}", render_timeline(&report.results, 100));
    }
    println!("\nS = send-port busy, R = recv-port busy, C = merge compute, · = idle.");
    println!("With rotation the receive activity staggers across ranks instead of");
    println!("serializing on one endpoint per step.");
}
