//! Table 1 reproduction: communication overhead of dense and sparse allreduces.
//!
//! For each algorithm and each P, runs the collective on synthetic k-sparse
//! gradients with uniformly random supports, *measures* the per-rank sent volume
//! from the simnet traffic ledger and the modeled completion time, and prints them
//! next to the paper's analytic bandwidth/latency formulas.
//!
//! Expected shape (the paper's claim): Dense ≈ 2n; TopkA/Gaussiank grow ∝ 2kP;
//! TopkDSA sits between 4k and 2k+n depending on fill-in; gTopk ≈ 4k·logP on the
//! critical path; Ok-Topk stays within [2k, 6k]·(P−1)/P regardless of P.

use collectives::{dsa_allreduce, gtopk_allreduce, topk_allgather_allreduce};
use okbench::{full_scale, print_series};
use oktopk::{OkTopk, OkTopkConfig};
use rand::prelude::*;
use simnet::Cluster;
use sparse::select::topk_exact;
use sparse::CooGradient;
use train::CostProfile;

fn random_locals(p: usize, n: usize, k: usize, seed: u64) -> Vec<CooGradient> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..p)
        .map(|_| {
            let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            topk_exact(&dense, k)
        })
        .collect()
}

struct Row {
    /// Per-rank sent elements: max over ranks (critical path) and mean.
    max_vol: u64,
    mean_vol: f64,
    /// Modeled completion time (makespan), seconds.
    time: f64,
}

fn measure(p: usize, f: impl Fn(&mut simnet::Comm) + Send + Sync) -> Row {
    let cost = CostProfile::paper_calibrated().network();
    let report = Cluster::new(p, cost).run(|comm| f(comm));
    let max_vol = (0..p).map(|r| report.ledger.rank_elements(r)).max().unwrap_or(0);
    let mean_vol = report.ledger.total_elements() as f64 / p as f64;
    Row { max_vol, mean_vol, time: report.makespan() }
}

fn main() {
    okbench::Header::begin("table1", !okbench::full_scale()).print_text();
    let n: usize = if full_scale() { 1 << 20 } else { 1 << 17 };
    let k = n / 100; // density 1%
    let ps: Vec<usize> =
        if full_scale() { vec![4, 8, 16, 32, 64, 128] } else { vec![4, 8, 16, 32, 64] };
    println!("Table 1 — communication overhead (n = {n}, k = {k}, density 1%)");
    println!("volumes are per-rank sent elements; time is modeled seconds\n");

    let header: Vec<f64> = ps.iter().map(|&p| p as f64).collect();
    print_series("P =", &header);

    let mut dense_mean = Vec::new();
    let mut dense_time = Vec::new();
    type Row4 = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>); // name, max, mean, time
    let mut rows: Vec<Row4> = Vec::new();

    for &name in &["Dense", "TopkA", "TopkDSA", "gTopk", "Gaussiank", "Ok-Topk"] {
        let mut maxs = Vec::new();
        let mut means = Vec::new();
        let mut times = Vec::new();
        for &p in &ps {
            let locals = random_locals(p, n, k, 42 + p as u64);
            let row = match name {
                "Dense" => {
                    let dense_inputs: Vec<Vec<f32>> = {
                        let mut rng = StdRng::seed_from_u64(7);
                        (0..p)
                            .map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                            .collect()
                    };
                    measure(p, move |comm| {
                        let mut d = dense_inputs[comm.rank()].clone();
                        collectives::allreduce_inplace(comm, &mut d);
                    })
                }
                "TopkA" | "Gaussiank" => {
                    // Gaussiank shares TopkA's transport; only selection differs
                    // (and Table 1's entries for them match up to selection cost).
                    let locals = locals.clone();
                    measure(p, move |comm| {
                        topk_allgather_allreduce(comm, locals[comm.rank()].clone());
                    })
                }
                "TopkDSA" => {
                    let locals = locals.clone();
                    measure(p, move |comm| {
                        dsa_allreduce(comm, locals[comm.rank()].clone(), n);
                    })
                }
                "gTopk" => {
                    let locals = locals.clone();
                    measure(p, move |comm| {
                        gtopk_allreduce(comm, locals[comm.rank()].clone(), k);
                    })
                }
                "Ok-Topk" => {
                    // Steady-state iteration: subtract a 1-iteration run from a
                    // 2-iteration run (deterministic), so the τ′-amortized re-eval
                    // traffic is excluded, exactly as the paper's model assumes.
                    let locals2 = random_locals(p, n, k, 1000 + p as u64);
                    let dense_of = |ls: &[CooGradient]| -> Vec<Vec<f32>> {
                        ls.iter().map(|g| g.to_dense(n)).collect()
                    };
                    let acc1 = dense_of(&locals);
                    let acc2 = dense_of(&locals2);
                    let run = |iters: usize| {
                        let acc1 = acc1.clone();
                        let acc2 = acc2.clone();
                        let cost = CostProfile::paper_calibrated().network();
                        Cluster::new(p, cost).run(move |comm| {
                            let mut okt =
                                OkTopk::new(OkTopkConfig::new(n, k).with_periods(1_000, 1_000));
                            for t in 1..=iters {
                                let acc = if t == 1 { &acc1 } else { &acc2 };
                                okt.allreduce(comm, &acc[comm.rank()], t);
                            }
                            comm.now()
                        })
                    };
                    let r1 = run(1);
                    let r2 = run(2);
                    let max_vol = (0..p)
                        .map(|r| r2.ledger.rank_elements(r) - r1.ledger.rank_elements(r))
                        .max()
                        .unwrap_or(0);
                    let mean_vol =
                        (r2.ledger.total_elements() - r1.ledger.total_elements()) as f64 / p as f64;
                    Row { max_vol, mean_vol, time: r2.makespan() - r1.makespan() }
                }
                _ => unreachable!(),
            };
            if name == "Dense" {
                dense_mean.push(row.mean_vol);
                dense_time.push(row.time);
            }
            maxs.push(row.max_vol as f64);
            means.push(row.mean_vol);
            times.push(row.time * 1e3); // ms
        }
        rows.push((name, maxs, means, times));
    }

    for (name, maxs, means, times) in &rows {
        println!("\n{name}");
        print_series("max sent/rank", maxs);
        print_series("mean sent/rank", means);
        print_series("modeled time (ms)", times);
        let analytic: Vec<f64> = ps
            .iter()
            .map(|&p| {
                let pf = p as f64;
                let kf = k as f64;
                let nf = n as f64;
                match *name {
                    "Dense" => 2.0 * nf * (pf - 1.0) / pf,
                    "TopkA" | "Gaussiank" => 2.0 * kf * (pf - 1.0),
                    "TopkDSA" => 4.0 * kf * (pf - 1.0) / pf, // best case; fill-in raises it
                    "gTopk" => 4.0 * kf * pf.log2(),
                    "Ok-Topk" => 6.0 * kf * (pf - 1.0) / pf,
                    _ => 0.0,
                }
            })
            .collect();
        print_series("paper bandwidth bound", &analytic);
    }

    println!("\nSanity: Ok-Topk per-rank volume must stay within the 6k(P-1)/P bound:");
    let okt = rows.iter().find(|(n2, ..)| *n2 == "Ok-Topk").expect("row exists");
    for (i, &p) in ps.iter().enumerate() {
        let bound = 6.0 * k as f64 * (p as f64 - 1.0) / p as f64;
        let ok = okt.1[i] <= bound * 1.10;
        println!(
            "  P={p:<4} max/rank {:>10.0}  bound {:>10.0}  {}",
            okt.1[i],
            bound,
            if ok { "OK" } else { "VIOLATION" }
        );
    }
}
