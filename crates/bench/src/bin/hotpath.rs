//! Hot-path wall-clock benchmark: selection throughput, dense-kernel and
//! dispatch costs across a thread-count sweep, per-iteration SGD step time,
//! and end-to-end trainer wall-clock.
//!
//! Emits `BENCH_PR2.json` (in the working directory — repo root under
//! `cargo run`) with per-bench baseline/optimized nanoseconds, speedups, and a
//! per-thread-count sweep so numbers are comparable across machines:
//!
//! - *baseline* for the selection benches is the allocating `sparse::select`
//!   path (fresh `Vec`s every call), exactly what the hot loop did before the
//!   scratch subsystem.
//! - the `*_serial_vs_parallel` headline rows compare explicit `threads = 1`
//!   against the **auto-dispatch path at the default thread count** — what a
//!   caller actually gets. When the adaptive granularity policy picks one
//!   thread (e.g. on a single-core host), the row is flagged
//!   `serial_fallback: true`: parallel == serial *by design*, not a
//!   regression. The accompanying `sweep` arrays record explicit
//!   1/2/4/`available_parallelism` timings regardless.
//! - `dispatch_spawn_vs_pool` isolates the tentpole change: the same chunked
//!   kernel at 2 threads dispatched by spawning scoped threads per call (the
//!   PR 1 mechanism) vs through the persistent okpar worker pool.
//!
//! The pool is prewarmed before any timing so no measurement pays one-time
//! thread creation.
//!
//! Usage: `cargo run --release -p okbench --bin hotpath [-- --quick] [--gate]
//! [--out PATH]`. `--gate` exits non-zero if a headline speedup at the default
//! thread count falls below 0.98 (2% noise floor) without the serial-fallback
//! flag — the pre-PR regression gate run by `scripts/check.sh`.

use std::hint::black_box;
use std::time::Instant;

use dnn::ops::matmul_acc_with_threads;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{Cluster, CostModel};
use sparse::scratch::{
    exact_threshold_scratch, exact_threshold_with_threads, select_ge_scratch,
    select_ge_with_threads, SelectScratch, SCAN_GRAIN,
};
use sparse::select::{exact_threshold, select_ge};

struct BenchResult {
    name: &'static str,
    baseline_ns: Option<f64>,
    optimized_ns: Option<f64>,
    /// True when the optimized path deliberately ran serial (adaptive
    /// granularity chose 1 thread), so speedup ≈ 1.0 is by design.
    serial_fallback: bool,
    /// Explicit-thread-count sweep: (threads, ns per rep).
    sweep: Vec<(usize, f64)>,
    note: String,
}

impl BenchResult {
    fn speedup(&self) -> Option<f64> {
        match (self.baseline_ns, self.optimized_ns) {
            (Some(b), Some(o)) if o > 0.0 => Some(b / o),
            _ => None,
        }
    }
}

/// Median ns/rep over `trials` timed runs of `reps` calls each (one warm-up run).
fn time_ns(reps: usize, trials: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: fill scratch pools, fault in pages
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn pseudo_dense(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let v = ((h >> 33) % 2000) as f32 / 1000.0 - 1.0;
            // ~60% exact zeros: the duplicate-heavy regime of a residual buffer.
            if v.abs() < 0.6 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

/// Selection: allocating `select` path vs pooled scratch path (auto-dispatch).
fn bench_selection_scratch(n: usize, k: usize, reps: usize, trials: usize) -> BenchResult {
    let dense = pseudo_dense(n, 1);
    let baseline = time_ns(reps, trials, || {
        let th = exact_threshold(black_box(&dense), k);
        black_box(select_ge(&dense, th));
    });
    let mut scratch = SelectScratch::new();
    let optimized = time_ns(reps, trials, || {
        let th = exact_threshold_scratch(black_box(&dense), k, &mut scratch);
        let g = select_ge_scratch(&dense, th, &mut scratch);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_alloc_vs_scratch",
        baseline_ns: Some(baseline),
        optimized_ns: Some(optimized),
        serial_fallback: false,
        sweep: Vec::new(),
        note: format!("n={n} k={k}; exact_threshold + select_ge per rep"),
    }
}

/// Selection: serial vs the auto-dispatch path at the default thread count,
/// plus an explicit thread sweep through the same pool-backed kernels.
fn bench_selection_parallel(
    n: usize,
    k: usize,
    reps: usize,
    trials: usize,
    sweep_threads: &[usize],
) -> BenchResult {
    let dense = pseudo_dense(n, 2);
    let mut scratch = SelectScratch::new();
    let mut at = |threads: usize| {
        time_ns(reps, trials, || {
            let th = exact_threshold_with_threads(black_box(&dense), k, &mut scratch, threads);
            let g = select_ge_with_threads(&dense, th, &mut scratch, threads);
            black_box(g.nnz());
            scratch.recycle(g);
        })
    };
    let sweep: Vec<(usize, f64)> = sweep_threads.iter().map(|&t| (t, at(t))).collect();
    let serial = sweep.iter().find(|(t, _)| *t == 1).map(|&(_, ns)| ns).unwrap_or_else(|| at(1));
    // The path callers actually hit: adaptive granularity at the default count.
    let auto_threads = okpar::threads_for(n, SCAN_GRAIN);
    let mut scratch = SelectScratch::new();
    let optimized = time_ns(reps, trials, || {
        let th = exact_threshold_scratch(black_box(&dense), k, &mut scratch);
        let g = select_ge_scratch(&dense, th, &mut scratch);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(optimized),
        serial_fallback: auto_threads <= 1,
        sweep,
        note: format!("n={n} k={k}; threads 1 vs auto ({auto_threads})"),
    }
}

/// Dense forward kernel: serial vs auto-dispatch `matmul_acc`, plus sweep.
fn bench_matmul_parallel(
    dim: usize,
    reps: usize,
    trials: usize,
    sweep_threads: &[usize],
) -> BenchResult {
    let x = pseudo_dense(dim * dim, 3);
    let w = pseudo_dense(dim * dim, 4);
    let mut out = vec![0.0f32; dim * dim];
    let mut at = |threads: usize| {
        time_ns(reps, trials, || {
            out.iter_mut().for_each(|o| *o = 0.0);
            matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, threads);
            black_box(out[0]);
        })
    };
    let sweep: Vec<(usize, f64)> = sweep_threads.iter().map(|&t| (t, at(t))).collect();
    let serial = sweep.iter().find(|(t, _)| *t == 1).map(|&(_, ns)| ns).unwrap_or_else(|| at(1));
    let auto_threads = okpar::threads_for(dim * dim * dim, dnn::ops::MATMUL_GRAIN_FLOPS);
    let optimized = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        dnn::ops::matmul_acc(black_box(&x), &w, &mut out, dim, dim, dim);
        black_box(out[0]);
    });
    BenchResult {
        name: "matmul_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(optimized),
        serial_fallback: auto_threads <= 1,
        sweep,
        note: format!("{dim}x{dim}x{dim} matmul_acc; threads 1 vs auto ({auto_threads})"),
    }
}

/// The PR 1 dispatch mechanism, preserved here as the baseline: spawn scoped
/// threads per call over the same chunk partition the pool kernels use.
fn spawn_matmul_acc(x: &[f32], w: &[f32], out: &mut [f32], dim: usize, threads: usize) {
    let chunks: Vec<std::ops::Range<usize>> = okpar::chunk_ranges(dim, threads);
    std::thread::scope(|s| {
        let mut rest = &mut *out;
        for r in &chunks {
            let (head, tail) = rest.split_at_mut(r.len() * dim);
            rest = tail;
            let xp = &x[r.start * dim..r.end * dim];
            s.spawn(move || {
                for b in 0..r.len() {
                    let xb = &xp[b * dim..(b + 1) * dim];
                    let ob = &mut head[b * dim..(b + 1) * dim];
                    for (i, &xv) in xb.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        for (o, &wv) in ob.iter_mut().zip(&w[i * dim..(i + 1) * dim]) {
                            *o += xv * wv;
                        }
                    }
                }
            });
        }
    });
}

/// Dispatch cost head-to-head at a fixed 2 threads: spawn-per-call (PR 1)
/// vs the persistent pool, on a kernel small enough that dispatch overhead
/// is a visible fraction of the runtime.
fn bench_dispatch_spawn_vs_pool(dim: usize, reps: usize, trials: usize) -> BenchResult {
    const THREADS: usize = 2;
    let x = pseudo_dense(dim * dim, 5);
    let w = pseudo_dense(dim * dim, 6);
    let mut out = vec![0.0f32; dim * dim];
    let spawn = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        spawn_matmul_acc(black_box(&x), &w, &mut out, dim, THREADS);
        black_box(out[0]);
    });
    let pool = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, THREADS);
        black_box(out[0]);
    });
    BenchResult {
        name: "dispatch_spawn_vs_pool",
        baseline_ns: Some(spawn),
        optimized_ns: Some(pool),
        serial_fallback: false,
        sweep: Vec::new(),
        note: format!(
            "{dim}x{dim}x{dim} matmul_acc at {THREADS} threads; scoped spawn per call vs \
             persistent pool"
        ),
    }
}

/// Per-iteration Ok-Topk SGD step time on a simulated cluster (current code;
/// the zero-allocation refactor is in-library, so no allocating twin exists to
/// run as a baseline — track this number across PRs instead).
fn bench_sgd_step(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let start = Instant::now();
    Cluster::new(p, CostModel::free()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut grad = vec![0.0f32; n];
        for it in 0..iters {
            for (i, g) in grad.iter_mut().enumerate() {
                *g = (((it * 31 + i * 7 + comm.rank()) % 997) as f32 / 997.0) - 0.5;
            }
            black_box(sgd.step(comm, &grad, 0.01).update.nnz());
        }
    });
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    BenchResult {
        name: "sgd_step",
        baseline_ns: None,
        optimized_ns: Some(per_iter),
        serial_fallback: false,
        sweep: Vec::new(),
        note: format!("p={p} n={n} k={k}; wall-clock per collective step, {iters} iters"),
    }
}

/// End-to-end trainer wall-clock: distributed quadratic fit (the convergence
/// test's workload) for a fixed iteration budget.
fn bench_e2e_trainer(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let centers: Vec<Vec<f32>> = (0..p).map(|r| pseudo_dense(n, 100 + r as u64)).collect();
    let start = Instant::now();
    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut w = vec![0.0f32; n];
        for it in 0..iters {
            let grad: Vec<f32> =
                w.iter().zip(&centers[comm.rank()]).map(|(wi, ci)| wi - ci).collect();
            let lr = 0.1 / (1.0 + it as f32 / 100.0);
            let step = sgd.step(comm, &grad, lr);
            for (i, v) in step.update.iter() {
                w[i as usize] -= v;
            }
        }
        w.iter().map(|v| *v as f64).sum::<f64>()
    });
    black_box(&report.results);
    let total = start.elapsed().as_nanos() as f64;
    BenchResult {
        name: "e2e_trainer",
        baseline_ns: None,
        optimized_ns: Some(total),
        serial_fallback: false,
        sweep: Vec::new(),
        note: format!("p={p} n={n} k={k} iters={iters}; total wall-clock ns"),
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.1}"),
        _ => "null".to_string(),
    }
}

fn write_json(
    path: &str,
    quick: bool,
    default_threads: usize,
    sweep_threads: &[usize],
    results: &[BenchResult],
) {
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads_env = std::env::var("OKTOPK_THREADS").ok();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"available_parallelism\": {host_threads},\n"));
    out.push_str(&format!(
        "  \"oktopk_threads_env\": {},\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    out.push_str(&format!("  \"default_threads\": {default_threads},\n"));
    let sweep_list: Vec<String> = sweep_threads.iter().map(|t| t.to_string()).collect();
    out.push_str(&format!("  \"thread_sweep\": [{}],\n", sweep_list.join(", ")));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"baseline_ns\": {},\n", json_f64(r.baseline_ns)));
        out.push_str(&format!("      \"optimized_ns\": {},\n", json_f64(r.optimized_ns)));
        let speedup = match r.speedup() {
            Some(s) if s.is_finite() => format!("{s:.3}"),
            _ => "null".to_string(),
        };
        out.push_str(&format!("      \"speedup\": {speedup},\n"));
        out.push_str(&format!("      \"serial_fallback\": {},\n", r.serial_fallback));
        if r.sweep.is_empty() {
            out.push_str("      \"sweep\": [],\n");
        } else {
            out.push_str("      \"sweep\": [\n");
            for (j, (t, ns)) in r.sweep.iter().enumerate() {
                let sep = if j + 1 < r.sweep.len() { "," } else { "" };
                out.push_str(&format!(
                    "        {{ \"threads\": {t}, \"ns\": {} }}{sep}\n",
                    json_f64(Some(*ns))
                ));
            }
            out.push_str("      ],\n");
        }
        out.push_str(&format!("      \"note\": \"{}\"\n", r.note));
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

/// Regression gate over the headline serial-vs-parallel rows: at the default
/// thread count the auto-dispatch path must not lose to serial. A 2% noise
/// floor avoids flaking on timer jitter; rows flagged `serial_fallback`
/// (parallel == serial by design, e.g. single-core hosts) always pass.
fn gate(results: &[BenchResult]) -> Result<(), String> {
    const NOISE_FLOOR: f64 = 0.98;
    let mut failures = Vec::new();
    for r in results {
        if !r.name.ends_with("_serial_vs_parallel") {
            continue;
        }
        if r.serial_fallback {
            continue;
        }
        match r.speedup() {
            Some(s) if s < NOISE_FLOOR => failures.push(format!(
                "{}: speedup {s:.3} < {NOISE_FLOOR} at default threads (not a serial fallback)",
                r.name
            )),
            _ => {}
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let run_gate = args.iter().any(|a| a == "--gate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR2.json")
        .to_string();

    let default_threads = okpar::configured_threads();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Sweep 1/2/4/available_parallelism (plus the default count), deduped.
    let mut sweep_threads = vec![1usize, 2, 4, host_threads, default_threads];
    sweep_threads.sort_unstable();
    sweep_threads.dedup();

    let (n, k, reps, trials) =
        if quick { (1 << 15, 1 << 9, 5, 3) } else { (1 << 18, 1 << 12, 10, 5) };
    // The matmul/dispatch kernels are ~2 orders of magnitude shorter than a
    // selection pass; give them proportionally more reps per trial so the
    // median is not dominated by scheduler noise.
    let (mm_reps, mm_trials) = if quick { (20, 5) } else { (100, 9) };
    let mm_dim = if quick { 48 } else { 128 };
    let disp_dim = if quick { 48 } else { 64 };
    let (sgd_n, sgd_iters) = if quick { (1 << 12, 30) } else { (1 << 14, 100) };
    let e2e_iters = if quick { 60 } else { 300 };

    // No timed region pays one-time worker creation or queue growth.
    okpar::prewarm(*sweep_threads.last().unwrap());

    eprintln!(
        "hotpath: n={n} k={k} default_threads={default_threads} host_threads={host_threads} \
         sweep={sweep_threads:?} quick={quick}"
    );
    let results = vec![
        bench_selection_scratch(n, k, reps, trials),
        bench_selection_parallel(n, k, reps, trials, &sweep_threads),
        bench_matmul_parallel(mm_dim, mm_reps, mm_trials, &sweep_threads),
        bench_dispatch_spawn_vs_pool(disp_dim, mm_reps, mm_trials),
        bench_sgd_step(4, sgd_n, sgd_n / 64, sgd_iters),
        bench_e2e_trainer(4, 4096, 256, e2e_iters),
    ];

    for r in &results {
        let speedup = r.speedup().map(|s| format!("{s:.2}x")).unwrap_or_else(|| "—".to_string());
        let fb = if r.serial_fallback { " [serial fallback]" } else { "" };
        eprintln!(
            "  {:<28} baseline {:>12} ns  optimized {:>12} ns  speedup {}{}",
            r.name,
            json_f64(r.baseline_ns),
            json_f64(r.optimized_ns),
            speedup,
            fb
        );
        for (t, ns) in &r.sweep {
            eprintln!("      threads={t:<3} {:>12} ns", json_f64(Some(*ns)));
        }
    }
    write_json(&out_path, quick, default_threads, &sweep_threads, &results);
    eprintln!("wrote {out_path}");

    if run_gate {
        match gate(&results) {
            Ok(()) => eprintln!("gate: OK (serial-vs-parallel speedups at default threads)"),
            Err(msg) => {
                eprintln!("gate: FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
