//! Hot-path wall-clock benchmark: selection throughput, per-iteration SGD step
//! time, and end-to-end trainer wall-clock, before/after the scratch-buffer and
//! chunked-kernel overhaul.
//!
//! Emits `BENCH_PR1.json` (in the working directory — repo root under
//! `cargo run`) with per-bench baseline/optimized nanoseconds and speedups.
//!
//! - *baseline* for the selection benches is the allocating `sparse::select`
//!   path (fresh `Vec`s every call), exactly what the hot loop did before the
//!   scratch subsystem.
//! - *parallel* benches compare `threads = 1` against `OKTOPK_THREADS` (default:
//!   all cores) through the same `*_with_threads` kernels. On a single-core
//!   host these report ≈1× — the JSON records `host_threads` so readers can
//!   tell an absent speedup from an impossible one.
//!
//! Usage: `cargo run --release -p okbench --bin hotpath [-- --quick] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use dnn::ops::matmul_acc_with_threads;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{Cluster, CostModel};
use sparse::scratch::{
    exact_threshold_scratch, exact_threshold_with_threads, select_ge_scratch,
    select_ge_with_threads, SelectScratch,
};
use sparse::select::{exact_threshold, select_ge};

struct BenchResult {
    name: &'static str,
    baseline_ns: Option<f64>,
    optimized_ns: Option<f64>,
    note: String,
}

impl BenchResult {
    fn speedup(&self) -> Option<f64> {
        match (self.baseline_ns, self.optimized_ns) {
            (Some(b), Some(o)) if o > 0.0 => Some(b / o),
            _ => None,
        }
    }
}

/// Median ns/rep over `trials` timed runs of `reps` calls each (one warm-up run).
fn time_ns(reps: usize, trials: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: fill scratch pools, fault in pages
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn pseudo_dense(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let v = ((h >> 33) % 2000) as f32 / 1000.0 - 1.0;
            // ~60% exact zeros: the duplicate-heavy regime of a residual buffer.
            if v.abs() < 0.6 { 0.0 } else { v }
        })
        .collect()
}

/// Selection: allocating `select` path vs pooled scratch path (auto-dispatch).
fn bench_selection_scratch(n: usize, k: usize, reps: usize, trials: usize) -> BenchResult {
    let dense = pseudo_dense(n, 1);
    let baseline = time_ns(reps, trials, || {
        let th = exact_threshold(black_box(&dense), k);
        black_box(select_ge(&dense, th));
    });
    let mut scratch = SelectScratch::new();
    let optimized = time_ns(reps, trials, || {
        let th = exact_threshold_scratch(black_box(&dense), k, &mut scratch);
        let g = select_ge_scratch(&dense, th, &mut scratch);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_alloc_vs_scratch",
        baseline_ns: Some(baseline),
        optimized_ns: Some(optimized),
        note: format!("n={n} k={k}; exact_threshold + select_ge per rep"),
    }
}

/// Selection: serial vs parallel through the same scratch kernels.
fn bench_selection_parallel(
    n: usize,
    k: usize,
    reps: usize,
    trials: usize,
    par: usize,
) -> BenchResult {
    let dense = pseudo_dense(n, 2);
    let mut scratch = SelectScratch::new();
    let serial = time_ns(reps, trials, || {
        let th = exact_threshold_with_threads(black_box(&dense), k, &mut scratch, 1);
        let g = select_ge_with_threads(&dense, th, &mut scratch, 1);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    let parallel = time_ns(reps, trials, || {
        let th = exact_threshold_with_threads(black_box(&dense), k, &mut scratch, par);
        let g = select_ge_with_threads(&dense, th, &mut scratch, par);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(parallel),
        note: format!("n={n} k={k}; threads 1 vs {par}"),
    }
}

/// Dense forward kernel: serial vs parallel `matmul_acc`.
fn bench_matmul_parallel(dim: usize, reps: usize, trials: usize, par: usize) -> BenchResult {
    let x = pseudo_dense(dim * dim, 3);
    let w = pseudo_dense(dim * dim, 4);
    let mut out = vec![0.0f32; dim * dim];
    let serial = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, 1);
        black_box(out[0]);
    });
    let parallel = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, par);
        black_box(out[0]);
    });
    BenchResult {
        name: "matmul_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(parallel),
        note: format!("{dim}x{dim}x{dim} matmul_acc; threads 1 vs {par}"),
    }
}

/// Per-iteration Ok-Topk SGD step time on a simulated cluster (current code;
/// the zero-allocation refactor is in-library, so no allocating twin exists to
/// run as a baseline — track this number across PRs instead).
fn bench_sgd_step(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let start = Instant::now();
    Cluster::new(p, CostModel::free()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut grad = vec![0.0f32; n];
        for it in 0..iters {
            for (i, g) in grad.iter_mut().enumerate() {
                *g = (((it * 31 + i * 7 + comm.rank()) % 997) as f32 / 997.0) - 0.5;
            }
            black_box(sgd.step(comm, &grad, 0.01).update.nnz());
        }
    });
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    BenchResult {
        name: "sgd_step",
        baseline_ns: None,
        optimized_ns: Some(per_iter),
        note: format!("p={p} n={n} k={k}; wall-clock per collective step, {iters} iters"),
    }
}

/// End-to-end trainer wall-clock: distributed quadratic fit (the convergence
/// test's workload) for a fixed iteration budget.
fn bench_e2e_trainer(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let centers: Vec<Vec<f32>> = (0..p).map(|r| pseudo_dense(n, 100 + r as u64)).collect();
    let start = Instant::now();
    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut w = vec![0.0f32; n];
        for it in 0..iters {
            let grad: Vec<f32> =
                w.iter().zip(&centers[comm.rank()]).map(|(wi, ci)| wi - ci).collect();
            let lr = 0.1 / (1.0 + it as f32 / 100.0);
            let step = sgd.step(comm, &grad, lr);
            for (i, v) in step.update.iter() {
                w[i as usize] -= v;
            }
        }
        w.iter().map(|v| *v as f64).sum::<f64>()
    });
    black_box(&report.results);
    let total = start.elapsed().as_nanos() as f64;
    BenchResult {
        name: "e2e_trainer",
        baseline_ns: None,
        optimized_ns: Some(total),
        note: format!("p={p} n={n} k={k} iters={iters}; total wall-clock ns"),
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.1}"),
        _ => "null".to_string(),
    }
}

fn write_json(path: &str, quick: bool, par: usize, results: &[BenchResult]) {
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads_env = std::env::var("OKTOPK_THREADS").ok();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!(
        "  \"oktopk_threads_env\": {},\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    out.push_str(&format!("  \"parallel_threads\": {par},\n"));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"baseline_ns\": {},\n", json_f64(r.baseline_ns)));
        out.push_str(&format!("      \"optimized_ns\": {},\n", json_f64(r.optimized_ns)));
        let speedup = match r.speedup() {
            Some(s) if s.is_finite() => format!("{s:.3}"),
            _ => "null".to_string(),
        };
        out.push_str(&format!("      \"speedup\": {speedup},\n"));
        out.push_str(&format!("      \"note\": \"{}\"\n", r.note));
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR1.json")
        .to_string();

    let par = okpar::configured_threads().max(2);
    let (n, k, reps, trials) =
        if quick { (1 << 15, 1 << 9, 5, 3) } else { (1 << 18, 1 << 12, 10, 5) };
    let mm_dim = if quick { 48 } else { 128 };
    let (sgd_n, sgd_iters) = if quick { (1 << 12, 30) } else { (1 << 14, 100) };
    let e2e_iters = if quick { 60 } else { 300 };

    eprintln!("hotpath: n={n} k={k} parallel_threads={par} quick={quick}");
    let results = vec![
        bench_selection_scratch(n, k, reps, trials),
        bench_selection_parallel(n, k, reps, trials, par),
        bench_matmul_parallel(mm_dim, reps, trials, par),
        bench_sgd_step(4, sgd_n, sgd_n / 64, sgd_iters),
        bench_e2e_trainer(4, 4096, 256, e2e_iters),
    ];

    for r in &results {
        let speedup = r
            .speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "—".to_string());
        eprintln!(
            "  {:<28} baseline {:>12} ns  optimized {:>12} ns  speedup {}",
            r.name,
            json_f64(r.baseline_ns),
            json_f64(r.optimized_ns),
            speedup
        );
    }
    write_json(&out_path, quick, par, &results);
    eprintln!("wrote {out_path}");
}
