//! Hot-path wall-clock benchmark: selection throughput, SIMD lane-kernel
//! headroom, dense-kernel and dispatch costs across a thread-count sweep,
//! per-iteration SGD step time, and end-to-end trainer wall-clock.
//!
//! Emits `BENCH_PR6.json` (in the working directory — repo root under
//! `cargo run`) with per-bench baseline/optimized nanoseconds, speedups, and a
//! per-thread-count sweep so numbers are comparable across machines:
//!
//! - *baseline* for the selection benches is the allocating `sparse::select`
//!   path (fresh `Vec`s every call), exactly what the hot loop did before the
//!   scratch subsystem.
//! - the `*_serial_vs_parallel` headline rows compare explicit `threads = 1`
//!   against the **auto-dispatch path at the default thread count** — what a
//!   caller actually gets. When the adaptive granularity policy picks one
//!   thread (e.g. on a single-core host), the row is flagged
//!   `serial_fallback: true`: parallel == serial *by design*, not a
//!   regression. The accompanying `sweep` arrays record explicit
//!   1/2/4/`available_parallelism` timings regardless.
//! - the `*_scalar_vs_simd` headline rows compare the forced-scalar lane
//!   kernels (`Lanes::S1`) against the auto-dispatched SIMD width, with a
//!   per-lane-width sweep. When the process resolved to the scalar path
//!   (`OKTOPK_SIMD=off`, feature compiled out, or no vector unit) the row is
//!   flagged `serial_fallback: true` and the SIMD gate auto-skips.
//! - `dispatch_spawn_vs_pool` isolates the PR 2 change: the same chunked
//!   kernel at 2 threads dispatched by spawning scoped threads per call (the
//!   PR 1 mechanism) vs through the persistent okpar worker pool.
//!
//! The JSON header records the resolved SIMD capability (ISA, lane width,
//! `OKTOPK_SIMD` state, compile flag) so perf trajectories across hosts stay
//! interpretable. The pool is prewarmed before any timing so no measurement
//! pays one-time thread creation.
//!
//! Usage: `cargo run --release -p okbench --bin hotpath [-- --quick] [--gate]
//! [--out PATH]`. `--gate` exits non-zero if a `*_serial_vs_parallel` headline
//! falls below 0.98 (2% noise floor) without the serial-fallback flag, the
//! `scan_scalar_vs_simd` headline falls below 1.5x on a SIMD-capable host, or
//! the `obs_off_vs_on` row shows the metrics registry costing more than the
//! same 2% floor — the pre-PR regression gate run by `scripts/check.sh`.

use std::hint::black_box;
use std::time::Instant;

use dnn::ops::matmul_acc_with_threads;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{Cluster, CostModel};
use sparse::scratch::{
    exact_threshold_scratch, exact_threshold_with_threads, select_ge_scratch,
    select_ge_with_threads, SelectScratch, SCAN_GRAIN,
};
use sparse::select::{exact_threshold, select_ge};
use sparse::simd::{self, Lanes};

struct BenchResult {
    name: &'static str,
    baseline_ns: Option<f64>,
    optimized_ns: Option<f64>,
    /// True when the optimized path deliberately ran without its optimization
    /// (adaptive granularity chose 1 thread; the SIMD dispatch resolved to
    /// scalar), so speedup ≈ 1.0 is by design and the gates skip the row.
    serial_fallback: bool,
    /// Sweep over the dispatch axis: (`sweep_key` value, ns per rep).
    sweep: Vec<(usize, f64)>,
    /// JSON key for the sweep axis: "threads" or "lanes".
    sweep_key: &'static str,
    note: String,
}

impl BenchResult {
    fn speedup(&self) -> Option<f64> {
        match (self.baseline_ns, self.optimized_ns) {
            (Some(b), Some(o)) if o > 0.0 => Some(b / o),
            _ => None,
        }
    }
}

/// Median ns/rep over `trials` timed runs of `reps` calls each (one warm-up run).
fn time_ns(reps: usize, trials: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: fill scratch pools, fault in pages
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn pseudo_dense(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let v = ((h >> 33) % 2000) as f32 / 1000.0 - 1.0;
            // ~60% exact zeros: the duplicate-heavy regime of a residual buffer.
            if v.abs() < 0.6 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

/// Selection: allocating `select` path vs pooled scratch path (auto-dispatch).
fn bench_selection_scratch(n: usize, k: usize, reps: usize, trials: usize) -> BenchResult {
    let dense = pseudo_dense(n, 1);
    let baseline = time_ns(reps, trials, || {
        let th = exact_threshold(black_box(&dense), k);
        black_box(select_ge(&dense, th));
    });
    let mut scratch = SelectScratch::new();
    let optimized = time_ns(reps, trials, || {
        let th = exact_threshold_scratch(black_box(&dense), k, &mut scratch);
        let g = select_ge_scratch(&dense, th, &mut scratch);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_alloc_vs_scratch",
        baseline_ns: Some(baseline),
        optimized_ns: Some(optimized),
        serial_fallback: false,
        sweep: Vec::new(),
        sweep_key: "threads",
        note: format!(
            "n={n} k={k}; exact_threshold + select_ge per rep; baseline is the scalar \
             allocating select path, scratch runs pooled buffers + SIMD lanes (PR2's \
             0.974x was alloc-vs-pool parity inside the 2% bench noise floor — the \
             pooled path saves allocation but did identical scalar arithmetic; the \
             lane kernels now pull it decisively ahead)"
        ),
    }
}

/// Selection: serial vs the auto-dispatch path at the default thread count,
/// plus an explicit thread sweep through the same pool-backed kernels.
fn bench_selection_parallel(
    n: usize,
    k: usize,
    reps: usize,
    trials: usize,
    sweep_threads: &[usize],
) -> BenchResult {
    let dense = pseudo_dense(n, 2);
    let mut scratch = SelectScratch::new();
    let mut at = |threads: usize| {
        time_ns(reps, trials, || {
            let th = exact_threshold_with_threads(black_box(&dense), k, &mut scratch, threads);
            let g = select_ge_with_threads(&dense, th, &mut scratch, threads);
            black_box(g.nnz());
            scratch.recycle(g);
        })
    };
    let sweep: Vec<(usize, f64)> = sweep_threads.iter().map(|&t| (t, at(t))).collect();
    let serial = sweep.iter().find(|(t, _)| *t == 1).map(|&(_, ns)| ns).unwrap_or_else(|| at(1));
    // The path callers actually hit: adaptive granularity at the default count.
    let auto_threads = okpar::threads_for(n, SCAN_GRAIN);
    let mut scratch = SelectScratch::new();
    let optimized = time_ns(reps, trials, || {
        let th = exact_threshold_scratch(black_box(&dense), k, &mut scratch);
        let g = select_ge_scratch(&dense, th, &mut scratch);
        black_box(g.nnz());
        scratch.recycle(g);
    });
    BenchResult {
        name: "selection_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(optimized),
        serial_fallback: auto_threads <= 1,
        sweep,
        sweep_key: "threads",
        note: format!("n={n} k={k}; threads 1 vs auto ({auto_threads})"),
    }
}

/// Lane-width sweep helper: time `f` at every [`Lanes`] width, returning
/// `(width, ns)` rows plus the scalar and auto-width timings.
fn lane_sweep(reps: usize, trials: usize, mut f: impl FnMut(Lanes)) -> (Vec<(usize, f64)>, f64) {
    let sweep: Vec<(usize, f64)> =
        Lanes::ALL.iter().map(|&l| (l.width(), time_ns(reps, trials, || f(l)))).collect();
    let scalar = sweep[0].1;
    (sweep, scalar)
}

/// The tentpole headline: threshold-scan throughput, forced-scalar vs the
/// auto-dispatched SIMD width. This is the O(n) pass Ok-Topk runs every
/// steady-state iteration (Algorithm 1's reuse path), so the gate pins the
/// ≥1.5x floor here.
fn bench_scan_simd(n: usize, reps: usize, trials: usize) -> BenchResult {
    let dense = pseudo_dense(n, 7);
    let th = 0.75f32;
    let caps = simd::caps();
    let (sweep, scalar) = lane_sweep(reps, trials, |l| {
        black_box(simd::count_abs_ge_with_lanes(black_box(&dense), th, l));
    });
    let auto = time_ns(reps, trials, || {
        black_box(simd::count_abs_ge(black_box(&dense), th));
    });
    BenchResult {
        name: "scan_scalar_vs_simd",
        baseline_ns: Some(scalar),
        optimized_ns: Some(auto),
        serial_fallback: caps.lanes == Lanes::S1,
        sweep,
        sweep_key: "lanes",
        note: format!(
            "n={n} th={th}; count_abs_ge scalar vs auto ({} lanes, {})",
            caps.lanes.width(),
            caps.isa
        ),
    }
}

/// Survivor-scan headroom: the full `select_ge` keep-scan (mask + ordered
/// emit), forced-scalar vs auto SIMD. Informational — the emit tail is scalar
/// by construction (order-preserving compaction), so the speedup is bounded
/// below the pure-count row and not gated.
fn bench_select_fill_simd(n: usize, reps: usize, trials: usize) -> BenchResult {
    let dense = pseudo_dense(n, 8);
    let th = 0.75f32;
    let caps = simd::caps();
    let (mut idx, mut val) = (Vec::new(), Vec::new());
    let (sweep, scalar) = lane_sweep(reps, trials, |l| {
        idx.clear();
        val.clear();
        simd::scan_keep_append_with_lanes(black_box(&dense), th, 0, &mut idx, &mut val, l);
        black_box(idx.len());
    });
    let auto = time_ns(reps, trials, || {
        idx.clear();
        val.clear();
        simd::scan_keep_append(black_box(&dense), th, 0, &mut idx, &mut val);
        black_box(idx.len());
    });
    BenchResult {
        name: "select_fill_simd",
        baseline_ns: Some(scalar),
        optimized_ns: Some(auto),
        serial_fallback: caps.lanes == Lanes::S1,
        sweep,
        sweep_key: "lanes",
        note: format!("n={n} th={th}; scan_keep_append scalar vs auto; informational (not gated)"),
    }
}

/// Residual-accumulate headroom: `acc = e + s·g` (Algorithm 2 line 4),
/// forced-scalar vs auto SIMD. Informational — LLVM already autovectorizes
/// the scalar elementwise loop at the SSE2 baseline and the stream is
/// memory-bound, so ~1.0x is the expected (and desired) reading; this row
/// exists to catch the lane cores *regressing* below the autovectorized
/// baseline (an explicit AVX2 wrapper once cost 0.8x here and was removed).
fn bench_residual_fuse_simd(n: usize, reps: usize, trials: usize) -> BenchResult {
    let e = pseudo_dense(n, 9);
    let g = pseudo_dense(n, 10);
    let mut acc = vec![0.0f32; n];
    let caps = simd::caps();
    let (sweep, scalar) = lane_sweep(reps, trials, |l| {
        simd::fused_scale_add_with_lanes(&mut acc, black_box(&e), &g, 0.01, l);
        black_box(acc[0]);
    });
    let auto = time_ns(reps, trials, || {
        simd::fused_scale_add(&mut acc, black_box(&e), &g, 0.01);
        black_box(acc[0]);
    });
    BenchResult {
        name: "residual_fuse_simd",
        baseline_ns: Some(scalar),
        optimized_ns: Some(auto),
        serial_fallback: caps.lanes == Lanes::S1,
        sweep,
        sweep_key: "lanes",
        note: format!("n={n}; fused_scale_add scalar vs auto; informational (not gated)"),
    }
}

/// Dense forward kernel: serial vs auto-dispatch `matmul_acc`, plus sweep.
fn bench_matmul_parallel(
    dim: usize,
    reps: usize,
    trials: usize,
    sweep_threads: &[usize],
) -> BenchResult {
    let x = pseudo_dense(dim * dim, 3);
    let w = pseudo_dense(dim * dim, 4);
    let mut out = vec![0.0f32; dim * dim];
    let mut at = |threads: usize| {
        time_ns(reps, trials, || {
            out.iter_mut().for_each(|o| *o = 0.0);
            matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, threads);
            black_box(out[0]);
        })
    };
    let sweep: Vec<(usize, f64)> = sweep_threads.iter().map(|&t| (t, at(t))).collect();
    let serial = sweep.iter().find(|(t, _)| *t == 1).map(|&(_, ns)| ns).unwrap_or_else(|| at(1));
    let auto_threads = okpar::threads_for(dim * dim * dim, dnn::ops::MATMUL_GRAIN_FLOPS);
    let optimized = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        dnn::ops::matmul_acc(black_box(&x), &w, &mut out, dim, dim, dim);
        black_box(out[0]);
    });
    BenchResult {
        name: "matmul_serial_vs_parallel",
        baseline_ns: Some(serial),
        optimized_ns: Some(optimized),
        serial_fallback: auto_threads <= 1,
        sweep,
        sweep_key: "threads",
        note: format!("{dim}x{dim}x{dim} matmul_acc; threads 1 vs auto ({auto_threads})"),
    }
}

/// The PR 1 dispatch mechanism, preserved here as the baseline: spawn scoped
/// threads per call over the same chunk partition the pool kernels use.
fn spawn_matmul_acc(x: &[f32], w: &[f32], out: &mut [f32], dim: usize, threads: usize) {
    let chunks: Vec<std::ops::Range<usize>> = okpar::chunk_ranges(dim, threads);
    std::thread::scope(|s| {
        let mut rest = &mut *out;
        for r in &chunks {
            let (head, tail) = rest.split_at_mut(r.len() * dim);
            rest = tail;
            let xp = &x[r.start * dim..r.end * dim];
            s.spawn(move || {
                for b in 0..r.len() {
                    let xb = &xp[b * dim..(b + 1) * dim];
                    let ob = &mut head[b * dim..(b + 1) * dim];
                    for (i, &xv) in xb.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        for (o, &wv) in ob.iter_mut().zip(&w[i * dim..(i + 1) * dim]) {
                            *o += xv * wv;
                        }
                    }
                }
            });
        }
    });
}

/// Dispatch cost head-to-head at a fixed 2 threads: spawn-per-call (PR 1)
/// vs the persistent pool, on a kernel small enough that dispatch overhead
/// is a visible fraction of the runtime.
fn bench_dispatch_spawn_vs_pool(dim: usize, reps: usize, trials: usize) -> BenchResult {
    const THREADS: usize = 2;
    let x = pseudo_dense(dim * dim, 5);
    let w = pseudo_dense(dim * dim, 6);
    let mut out = vec![0.0f32; dim * dim];
    let spawn = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        spawn_matmul_acc(black_box(&x), &w, &mut out, dim, THREADS);
        black_box(out[0]);
    });
    let pool = time_ns(reps, trials, || {
        out.iter_mut().for_each(|o| *o = 0.0);
        matmul_acc_with_threads(black_box(&x), &w, &mut out, dim, dim, dim, THREADS);
        black_box(out[0]);
    });
    BenchResult {
        name: "dispatch_spawn_vs_pool",
        baseline_ns: Some(spawn),
        optimized_ns: Some(pool),
        serial_fallback: false,
        sweep: Vec::new(),
        sweep_key: "threads",
        note: format!(
            "{dim}x{dim}x{dim} matmul_acc at {THREADS} threads; scoped spawn per call vs \
             persistent pool"
        ),
    }
}

/// Per-iteration Ok-Topk SGD step time on a simulated cluster (current code;
/// the zero-allocation refactor is in-library, so no allocating twin exists to
/// run as a baseline — track this number across PRs instead).
fn bench_sgd_step(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let start = Instant::now();
    Cluster::new(p, CostModel::free()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut grad = vec![0.0f32; n];
        for it in 0..iters {
            for (i, g) in grad.iter_mut().enumerate() {
                *g = (((it * 31 + i * 7 + comm.rank()) % 997) as f32 / 997.0) - 0.5;
            }
            black_box(sgd.step(comm, &grad, 0.01).update.nnz());
        }
    });
    let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    BenchResult {
        name: "sgd_step",
        baseline_ns: None,
        optimized_ns: Some(per_iter),
        serial_fallback: false,
        sweep: Vec::new(),
        sweep_key: "threads",
        note: format!("p={p} n={n} k={k}; wall-clock per collective step, {iters} iters"),
    }
}

/// End-to-end trainer wall-clock: distributed quadratic fit (the convergence
/// test's workload) for a fixed iteration budget.
fn bench_e2e_trainer(p: usize, n: usize, k: usize, iters: usize) -> BenchResult {
    let centers: Vec<Vec<f32>> = (0..p).map(|r| pseudo_dense(n, 100 + r as u64)).collect();
    let start = Instant::now();
    let report = Cluster::new(p, CostModel::aries()).run(|comm| {
        let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
        let mut w = vec![0.0f32; n];
        for it in 0..iters {
            let grad: Vec<f32> =
                w.iter().zip(&centers[comm.rank()]).map(|(wi, ci)| wi - ci).collect();
            let lr = 0.1 / (1.0 + it as f32 / 100.0);
            let step = sgd.step(comm, &grad, lr);
            for (i, v) in step.update.iter() {
                w[i as usize] -= v;
            }
        }
        w.iter().map(|v| *v as f64).sum::<f64>()
    });
    black_box(&report.results);
    let total = start.elapsed().as_nanos() as f64;
    BenchResult {
        name: "e2e_trainer",
        baseline_ns: None,
        optimized_ns: Some(total),
        serial_fallback: false,
        sweep: Vec::new(),
        sweep_key: "threads",
        note: format!("p={p} n={n} k={k} iters={iters}; total wall-clock ns"),
    }
}

/// Observability overhead on the simnet hot path: the same messaging-heavy
/// collective workload with the per-run metrics registry disabled (baseline)
/// vs enabled (optimized column). The gate demands the enabled run stays
/// within the 2% noise floor — the kill switch must make obs effectively
/// free, and the enabled fast path (relaxed atomics, single-writer slots)
/// must stay cheap.
fn bench_obs_overhead(p: usize, n: usize, k: usize, iters: usize, trials: usize) -> BenchResult {
    let run = |obs_on: bool| {
        let start = Instant::now();
        Cluster::new(p, CostModel::free()).with_obs(obs_on).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
            let mut grad = vec![0.0f32; n];
            for it in 0..iters {
                for (i, g) in grad.iter_mut().enumerate() {
                    *g = (((it * 31 + i * 7 + comm.rank()) % 997) as f32 / 997.0) - 0.5;
                }
                black_box(sgd.step(comm, &grad, 0.01).update.nnz());
            }
        });
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    // Paired-ratio median: each trial times the off and on configurations
    // back to back (~ms apart, inside the same host-noise regime) and the
    // gate statistic is the median of the per-pair off/on ratios. Taking
    // independent minima instead would be fooled whenever a noise-regime
    // boundary lands inside a pair (one side catches a fast window the other
    // never sees); the per-pair ratio cancels regime-scale noise and the
    // median discards the boundary pairs.
    run(true); // warm-up both pools and the page cache
    let pairs: Vec<(f64, f64)> = (0..trials).map(|_| (run(false), run(true))).collect();
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let ratio = median(pairs.iter().map(|&(o, n)| o / n).collect());
    let off = median(pairs.iter().map(|&(o, _)| o).collect());
    // Report the off median and an on value derived so that the displayed
    // speedup IS the paired-median ratio the gate tests.
    let on = off / ratio;
    BenchResult {
        name: "obs_off_vs_on",
        baseline_ns: Some(off),
        optimized_ns: Some(on),
        serial_fallback: false,
        sweep: Vec::new(),
        sweep_key: "threads",
        note: format!(
            "p={p} n={n} k={k}; per-step wall, registry off vs on, paired-ratio \
             median over {trials} trials (gate: on within 2% of off)"
        ),
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.1}"),
        _ => "null".to_string(),
    }
}

fn write_json(
    path: &str,
    header: &okbench::Header,
    default_threads: usize,
    sweep_threads: &[usize],
    results: &[BenchResult],
) {
    let threads_env = std::env::var("OKTOPK_THREADS").ok();
    let caps = simd::caps();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&header.json_fields());
    out.push_str(&format!(
        "  \"oktopk_threads_env\": {},\n",
        threads_env.map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    out.push_str(&format!("  \"default_threads\": {default_threads},\n"));
    out.push_str(&format!(
        "  \"oktopk_simd_env\": {},\n",
        caps.env.as_ref().map_or("null".to_string(), |v| format!("\"{v}\""))
    ));
    let sweep_list: Vec<String> = sweep_threads.iter().map(|t| t.to_string()).collect();
    out.push_str(&format!("  \"thread_sweep\": [{}],\n", sweep_list.join(", ")));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"baseline_ns\": {},\n", json_f64(r.baseline_ns)));
        out.push_str(&format!("      \"optimized_ns\": {},\n", json_f64(r.optimized_ns)));
        let speedup = match r.speedup() {
            Some(s) if s.is_finite() => format!("{s:.3}"),
            _ => "null".to_string(),
        };
        out.push_str(&format!("      \"speedup\": {speedup},\n"));
        out.push_str(&format!("      \"serial_fallback\": {},\n", r.serial_fallback));
        if r.sweep.is_empty() {
            out.push_str("      \"sweep\": [],\n");
        } else {
            out.push_str("      \"sweep\": [\n");
            for (j, (t, ns)) in r.sweep.iter().enumerate() {
                let sep = if j + 1 < r.sweep.len() { "," } else { "" };
                out.push_str(&format!(
                    "        {{ \"{}\": {t}, \"ns\": {} }}{sep}\n",
                    r.sweep_key,
                    json_f64(Some(*ns))
                ));
            }
            out.push_str("      ],\n");
        }
        out.push_str(&format!("      \"note\": \"{}\"\n", r.note));
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

/// Regression gate over the headline rows.
///
/// - `*_serial_vs_parallel`: at the default thread count the auto-dispatch
///   path must not lose to serial. A 2% noise floor avoids flaking on timer
///   jitter; rows flagged `serial_fallback` (parallel == serial by design,
///   e.g. single-core hosts) always pass.
/// - `scan_scalar_vs_simd`: the vectorized threshold scan must beat the
///   forced-scalar kernel by ≥1.5x on a SIMD-capable host. When the process
///   resolved to the scalar path (`serial_fallback` flag: `OKTOPK_SIMD=off`,
///   feature off, or no vector unit) the row auto-skips.
fn gate(results: &[BenchResult]) -> Result<(), String> {
    const NOISE_FLOOR: f64 = 0.98;
    const SIMD_FLOOR: f64 = 1.5;
    let mut failures = Vec::new();
    for r in results {
        let floor = if r.name.ends_with("_serial_vs_parallel") || r.name == "obs_off_vs_on" {
            NOISE_FLOOR
        } else if r.name == "scan_scalar_vs_simd" {
            SIMD_FLOOR
        } else {
            continue;
        };
        if r.serial_fallback {
            continue;
        }
        match r.speedup() {
            Some(s) if s < floor => {
                failures.push(format!("{}: speedup {s:.3} < {floor} (not a fallback row)", r.name))
            }
            _ => {}
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let header = okbench::Header::begin("hotpath", quick);
    let run_gate = args.iter().any(|a| a == "--gate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR6.json")
        .to_string();

    let default_threads = okpar::configured_threads();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Sweep 1/2/4/available_parallelism (plus the default count), deduped.
    let mut sweep_threads = vec![1usize, 2, 4, host_threads, default_threads];
    sweep_threads.sort_unstable();
    sweep_threads.dedup();

    let (n, k, reps, trials) =
        if quick { (1 << 15, 1 << 9, 5, 3) } else { (1 << 18, 1 << 12, 10, 5) };
    // The matmul/dispatch kernels are ~2 orders of magnitude shorter than a
    // selection pass; give them proportionally more reps per trial so the
    // median is not dominated by scheduler noise.
    let (mm_reps, mm_trials) = if quick { (20, 5) } else { (100, 9) };
    let mm_dim = if quick { 48 } else { 128 };
    let disp_dim = if quick { 48 } else { 64 };
    let (sgd_n, sgd_iters) = if quick { (1 << 12, 30) } else { (1 << 14, 100) };
    let e2e_iters = if quick { 60 } else { 300 };

    // No timed region pays one-time worker creation or queue growth.
    okpar::prewarm(*sweep_threads.last().unwrap());

    eprintln!(
        "hotpath: n={n} k={k} default_threads={default_threads} host_threads={host_threads} \
         sweep={sweep_threads:?} quick={quick}"
    );
    let caps = simd::caps();
    eprintln!(
        "hotpath: simd isa={} lanes={} env={:?} compiled={} forced_scalar={}",
        caps.isa,
        caps.lanes.width(),
        caps.env,
        caps.compiled,
        caps.forced_scalar
    );
    let results = vec![
        bench_scan_simd(n, reps, trials),
        bench_select_fill_simd(n, reps, trials),
        bench_residual_fuse_simd(n, reps, trials),
        bench_selection_scratch(n, k, reps, trials),
        bench_selection_parallel(n, k, reps, trials, &sweep_threads),
        bench_matmul_parallel(mm_dim, mm_reps, mm_trials, &sweep_threads),
        bench_dispatch_spawn_vs_pool(disp_dim, mm_reps, mm_trials),
        bench_sgd_step(4, sgd_n, sgd_n / 64, sgd_iters),
        bench_e2e_trainer(4, 4096, 256, e2e_iters),
        bench_obs_overhead(4, sgd_n, sgd_n / 64, sgd_iters * 4, if quick { 11 } else { 15 }),
    ];

    for r in &results {
        let speedup = r.speedup().map(|s| format!("{s:.2}x")).unwrap_or_else(|| "—".to_string());
        let fb = if r.serial_fallback { " [serial fallback]" } else { "" };
        eprintln!(
            "  {:<28} baseline {:>12} ns  optimized {:>12} ns  speedup {}{}",
            r.name,
            json_f64(r.baseline_ns),
            json_f64(r.optimized_ns),
            speedup,
            fb
        );
        for (t, ns) in &r.sweep {
            eprintln!("      {}={t:<3} {:>12} ns", r.sweep_key, json_f64(Some(*ns)));
        }
    }
    write_json(&out_path, &header, default_threads, &sweep_threads, &results);
    eprintln!("wrote {out_path}");

    if run_gate {
        match gate(&results) {
            Ok(()) => {
                eprintln!(
                    "gate: OK (serial-vs-parallel >= 0.98, scan scalar-vs-simd >= 1.5, \
                     obs overhead <= 2%)"
                )
            }
            Err(msg) => {
                eprintln!("gate: FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
