//! Quantization × sparsification ablation (the SparCML combination the paper
//! calls orthogonal, §2): compare the allgather-based sparse allreduce with
//! full-precision, 16-bit and 8-bit values on (a) measured wire volume and modeled
//! time, and (b) convergence of a real training run where quantization noise is
//! absorbed by the residual.

use okbench::print_series;
use rand::prelude::*;
use simnet::Cluster;
use sparse::quant::QuantMode;
use sparse::select::topk_exact;
use sparse::CooGradient;
use train::{CostProfile, Reducer, Scheme};

fn main() {
    let (p, n) = (16usize, 1usize << 16);
    let k = n / 100;
    let cost = CostProfile::paper_calibrated();

    println!("Quantized sparse allreduce (TopkA transport, P = {p}, n = {n}, k = {k})\n");

    // (a) Volume and modeled time of one collective.
    let locals: Vec<CooGradient> = {
        let mut rng = StdRng::seed_from_u64(5);
        (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect()
    };
    let mut labels = Vec::new();
    let mut volumes = Vec::new();
    let mut times = Vec::new();
    for (label, mode) in
        [("f32 (plain)", None), ("q16", Some(QuantMode::Q16)), ("q8", Some(QuantMode::Q8))]
    {
        let ls = locals.clone();
        let report = Cluster::new(p, cost.network()).run(move |comm| match mode {
            None => {
                collectives::topk_allgather_allreduce(comm, ls[comm.rank()].clone());
            }
            Some(m) => {
                collectives::quantized_allgather_allreduce(comm, ls[comm.rank()].clone(), m);
            }
        });
        labels.push(label);
        volumes.push(report.ledger.total_elements() as f64 / p as f64);
        times.push(report.makespan() * 1e3);
    }
    println!("  format: {labels:?}");
    print_series("elements/rank", &volumes);
    print_series("modeled time (ms)", &times);

    // (b) Convergence with residual-absorbed quantization noise: a small convex
    // problem driven through the Reducer (quadratic per rank, as in §4's setting).
    println!("\nConvergence on a separable quadratic (error vs iteration, lower is better):");
    let n2 = 4096;
    let k2 = n2 / 20;
    let centers: Vec<Vec<f32>> = {
        let mut rng = StdRng::seed_from_u64(9);
        (0..p).map(|_| (0..n2).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    };
    let mut mean = vec![0.0f32; n2];
    for c in &centers {
        for (m, x) in mean.iter_mut().zip(c) {
            *m += x / p as f32;
        }
    }
    for (label, mode) in
        [("f32 (plain)", None), ("q16", Some(QuantMode::Q16)), ("q8", Some(QuantMode::Q8))]
    {
        let centers = centers.clone();
        let mean = mean.clone();
        let report = Cluster::new(p, cost.network()).run(move |comm| {
            let mut reducer = Reducer::new(Scheme::TopkA, n2, k2 as f64 / n2 as f64, cost, 8, 8);
            if let Some(m) = mode {
                reducer = reducer.with_quantization(m);
            }
            let mut w = vec![0.0f32; n2];
            let mut errs = Vec::new();
            for it in 0..300 {
                let grad: Vec<f32> =
                    w.iter().zip(&centers[comm.rank()]).map(|(wi, ci)| wi - ci).collect();
                let lr = 0.1 / (1.0 + it as f32 / 100.0);
                let (update, _) = reducer.reduce(comm, &grad, lr);
                if let train::Update::Sparse(u) = update {
                    for (i, v) in u.iter() {
                        w[i as usize] -= v;
                    }
                }
                if it % 60 == 59 {
                    let err: f64 = w
                        .iter()
                        .zip(&mean)
                        .map(|(a, b)| ((a - b) as f64).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    errs.push(err);
                }
            }
            errs
        });
        print_series(label, &report.results[0]);
    }
    println!("\nExpected: q16 indistinguishable from f32; q8 slightly noisier but converging,");
    println!("with 25-37% less wire volume — quantization composes with sparsification.");
}
