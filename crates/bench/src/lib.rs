//! # okbench — reproduction harnesses for every table and figure
//!
//! One binary per experiment (`cargo run --release -p okbench --bin figNN`),
//! printing the same rows/series the paper reports, plus Criterion benches over
//! the real compute kernels (`cargo bench -p okbench`).
//!
//! All harnesses run a *quick* configuration by default (minutes on a laptop
//! core); set `OKBENCH_FULL=1` for configurations closer to the paper's scale.
//! EXPERIMENTS.md records paper-vs-measured for the quick settings.

use dnn::models::{BertLite, LstmNet, VggLite};
use train::{Scheme, TrainConfig};

/// Whether the full-scale configuration was requested.
pub fn full_scale() -> bool {
    std::env::var("OKBENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Scale an iteration count by the quick/full switch.
pub fn iters(quick: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Standard model constructors with fixed seeds so every harness trains the same
/// replicas.
pub fn vgg() -> VggLite {
    VggLite::new(16)
}

pub fn lstm() -> LstmNet {
    LstmNet::new(21)
}

pub fn bert() -> BertLite {
    BertLite::new(13)
}

/// Print a breakdown row in a fixed-width table (seconds per iteration).
pub fn print_breakdown_row(scheme: Scheme, compute: f64, sparsify: f64, comm: f64) {
    println!(
        "  {:<10} sparsification {:>9.4}s  communication {:>9.4}s  compute+IO {:>9.4}s  total {:>9.4}s",
        scheme.name(),
        sparsify,
        comm,
        compute,
        compute + sparsify + comm
    );
}

/// Standard quick-mode TrainConfig shared by the case studies.
pub fn base_config(scheme: Scheme, density: f64) -> TrainConfig {
    TrainConfig::new(scheme, density)
}

/// Simple fixed-width series printer: `label: v1 v2 v3 …`.
pub fn print_series(label: &str, values: &[f64]) {
    print!("  {label:<24}");
    for v in values {
        print!(" {v:>10.4}");
    }
    println!();
}

/// Standard header shared by every `BENCH_*.json` harness and the text-mode
/// figure/table harnesses: host shape (cores, SIMD capabilities), the
/// simulation engine in effect, wall time, peak RSS, and a compact snapshot
/// of the process-global observability registry. One implementation so the
/// files stay mechanically comparable across PRs and hosts.
pub struct Header {
    bench: &'static str,
    quick: bool,
    start: std::time::Instant,
}

impl Header {
    /// Start the harness clock. Call once at the top of `main`.
    pub fn begin(bench: &'static str, quick: bool) -> Self {
        Self { bench, quick, start: std::time::Instant::now() }
    }

    /// Peak resident set size of this process, in KiB (Linux `VmHWM`; 0 where
    /// `/proc` is unavailable).
    pub fn peak_rss_kb() -> u64 {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// The engine harness runs default to (`SIMNET_ENGINE`, else thread).
    pub fn engine_name() -> &'static str {
        match simnet::Engine::from_env() {
            simnet::Engine::Thread => "thread",
            simnet::Engine::Event => "event",
        }
    }

    /// The standard JSON field block, one `"key": value,` line per field,
    /// indented two spaces — splice at the top of a `BENCH_*.json` object.
    /// Wall time and RSS are read now, so call this when measurement is done.
    pub fn json_fields(&self) -> String {
        let caps = sparse::simd::caps();
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut out = String::new();
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.bench));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        out.push_str(&format!("  \"simd_isa\": \"{}\",\n", caps.isa));
        out.push_str(&format!("  \"simd_lanes\": {},\n", caps.lanes.width()));
        out.push_str(&format!("  \"simd_compiled\": {},\n", caps.compiled));
        out.push_str(&format!("  \"simd_forced_scalar\": {},\n", caps.forced_scalar));
        out.push_str(&format!("  \"engine\": \"{}\",\n", Self::engine_name()));
        out.push_str(&format!("  \"wall_secs\": {:.3},\n", self.start.elapsed().as_secs_f64()));
        out.push_str(&format!("  \"peak_rss_kb\": {},\n", Self::peak_rss_kb()));
        out.push_str(&format!("  \"obs_enabled\": {},\n", obs::enabled()));
        out.push_str(&format!("  \"obs\": {},\n", obs::global().snapshot().to_json()));
        out
    }

    /// One-line text header for the figure/table harnesses that print tables
    /// instead of JSON.
    pub fn print_text(&self) {
        let caps = sparse::simd::caps();
        println!(
            "[{}] engine={} simd={}x{} cores={} quick={} obs={}",
            self.bench,
            Self::engine_name(),
            caps.isa,
            caps.lanes.width(),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            self.quick,
            if obs::enabled() { "on" } else { "off" },
        );
    }
}

pub mod obsdump;

use dnn::Model;
use train::{run_data_parallel, RunResult};

/// Weak-scaling panel shared by Figs. 8, 10 and 12: for each rank count, run every
/// scheme for a few iterations and print the per-iteration time breakdown.
/// Returns `(P, scheme, mean time/iter)` tuples for further analysis.
pub fn weak_scaling_panel<M, FM, FB>(
    title: &str,
    ps: &[usize],
    schemes: &[Scheme],
    base: &TrainConfig,
    warmup: usize,
    make_model: FM,
    make_batch: FB,
) -> Vec<(usize, Scheme, f64)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}");
    let mut out = Vec::new();
    for &p in ps {
        println!("\nP = {p} ranks (global batch = {} × local batch):", p);
        for &scheme in schemes {
            let mut cfg = *base;
            cfg.scheme = scheme;
            // One OS thread per rank stops being viable well before the weak-
            // scaling sweeps top out; above 64 ranks default to the event
            // engine (bit-identical results, bounded workers) unless the
            // caller pinned an engine explicitly.
            if cfg.engine.is_none() && p > 64 {
                cfg.engine = Some(simnet::Engine::Event);
            }
            let res = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
            let (c, s, m) = res.mean_breakdown(warmup);
            print_breakdown_row(scheme, c, s, m);
            if let Some(line) = obs_summary(&res.metrics) {
                println!("             {line}");
            }
            out.push((p, scheme, c + s + m));
        }
    }
    out
}

/// Compact one-line observability summary of a run's metrics snapshot, or
/// `None` when the snapshot is empty (observability off).
pub fn obs_summary(metrics: &obs::MetricsSnapshot) -> Option<String> {
    use obs::MetricValue;
    if metrics.is_empty() {
        return None;
    }
    let tx_mib = match metrics.get("sim.tx_bytes") {
        Some(MetricValue::PerRankU64(v)) => v.iter().sum::<u64>() as f64 / (1 << 20) as f64,
        _ => 0.0,
    };
    let (wait_max, wait_sum) = match metrics.get("sim.recv_wait_vsec") {
        Some(MetricValue::PerRankF64(v)) => {
            (v.iter().cloned().fold(0.0f64, f64::max), v.iter().sum::<f64>())
        }
        _ => (0.0, 0.0),
    };
    let msgs = match metrics.get("sim.msg_elems") {
        Some(MetricValue::Histogram { count, .. }) => *count,
        _ => 0,
    };
    Some(format!(
        "obs: {msgs} msgs, {tx_mib:.2} MiB sent, recv-wait max {wait_max:.4}s / total {wait_sum:.4}s"
    ))
}

/// Convergence panel shared by Figs. 9, 11 and 13: run each scheme to completion
/// with periodic held-out evaluation and print metric-vs-modeled-time curves.
#[allow(clippy::too_many_arguments)] // experiment harness: explicit is clearer
pub fn convergence_panel<M, FM, FB>(
    title: &str,
    metric_name: &str,
    p: usize,
    schemes: &[Scheme],
    base: &TrainConfig,
    make_model: FM,
    make_batch: FB,
    eval_batches: &[M::Batch],
    // true → report accuracy; false → report error rate; None → report loss
    metric: Option<bool>,
) -> Vec<(Scheme, RunResult)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}  (P = {p})");
    let mut results = Vec::new();
    for &scheme in schemes {
        let mut cfg = *base;
        cfg.scheme = scheme;
        let res = run_data_parallel(p, &cfg, &make_model, &make_batch, eval_batches);
        println!("\n  {} — {metric_name} vs modeled time:", scheme.name());
        for e in &res.evals {
            let v = match metric {
                Some(true) => e.accuracy,
                Some(false) => 1.0 - e.accuracy,
                None => e.loss,
            };
            println!("    t={:>6}  time={:>9.2}s  {metric_name}={v:.4}", e.t, e.time);
        }
        if let Some(last) = res.evals.last() {
            let v = match metric {
                Some(true) => last.accuracy,
                Some(false) => 1.0 - last.accuracy,
                None => last.loss,
            };
            println!("    final: {metric_name} = {v:.4} at modeled time {:.2}s", last.time);
        }
        results.push((scheme, res));
    }
    results
}
