//! # okbench — reproduction harnesses for every table and figure
//!
//! One binary per experiment (`cargo run --release -p okbench --bin figNN`),
//! printing the same rows/series the paper reports, plus Criterion benches over
//! the real compute kernels (`cargo bench -p okbench`).
//!
//! All harnesses run a *quick* configuration by default (minutes on a laptop
//! core); set `OKBENCH_FULL=1` for configurations closer to the paper's scale.
//! EXPERIMENTS.md records paper-vs-measured for the quick settings.

use dnn::models::{BertLite, LstmNet, VggLite};
use train::{Scheme, TrainConfig};

/// Whether the full-scale configuration was requested.
pub fn full_scale() -> bool {
    std::env::var("OKBENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Scale an iteration count by the quick/full switch.
pub fn iters(quick: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Standard model constructors with fixed seeds so every harness trains the same
/// replicas.
pub fn vgg() -> VggLite {
    VggLite::new(16)
}

pub fn lstm() -> LstmNet {
    LstmNet::new(21)
}

pub fn bert() -> BertLite {
    BertLite::new(13)
}

/// Print a breakdown row in a fixed-width table (seconds per iteration).
pub fn print_breakdown_row(scheme: Scheme, compute: f64, sparsify: f64, comm: f64) {
    println!(
        "  {:<10} sparsification {:>9.4}s  communication {:>9.4}s  compute+IO {:>9.4}s  total {:>9.4}s",
        scheme.name(),
        sparsify,
        comm,
        compute,
        compute + sparsify + comm
    );
}

/// Standard quick-mode TrainConfig shared by the case studies.
pub fn base_config(scheme: Scheme, density: f64) -> TrainConfig {
    TrainConfig::new(scheme, density)
}

/// Simple fixed-width series printer: `label: v1 v2 v3 …`.
pub fn print_series(label: &str, values: &[f64]) {
    print!("  {label:<24}");
    for v in values {
        print!(" {v:>10.4}");
    }
    println!();
}

/// Standard header shared by every `BENCH_*.json` harness and the text-mode
/// figure/table harnesses: host shape (cores, SIMD capabilities), the
/// simulation engine in effect, wall time, peak RSS, and a compact snapshot
/// of the process-global observability registry. One implementation so the
/// files stay mechanically comparable across PRs and hosts.
pub struct Header {
    bench: &'static str,
    quick: bool,
    start: std::time::Instant,
}

impl Header {
    /// Start the harness clock. Call once at the top of `main`.
    pub fn begin(bench: &'static str, quick: bool) -> Self {
        Self { bench, quick, start: std::time::Instant::now() }
    }

    /// Peak resident set size of this process, in KiB (Linux `VmHWM`; 0 where
    /// `/proc` is unavailable).
    pub fn peak_rss_kb() -> u64 {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// The engine harness runs default to (`SIMNET_ENGINE`, else thread).
    pub fn engine_name() -> &'static str {
        match simnet::Engine::from_env() {
            simnet::Engine::Thread => "thread",
            simnet::Engine::Event => "event",
        }
    }

    /// The standard JSON field block, one `"key": value,` line per field,
    /// indented two spaces — splice at the top of a `BENCH_*.json` object.
    /// Wall time and RSS are read now, so call this when measurement is done.
    pub fn json_fields(&self) -> String {
        let caps = sparse::simd::caps();
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut out = String::new();
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.bench));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        out.push_str(&format!("  \"simd_isa\": \"{}\",\n", caps.isa));
        out.push_str(&format!("  \"simd_lanes\": {},\n", caps.lanes.width()));
        out.push_str(&format!("  \"simd_compiled\": {},\n", caps.compiled));
        out.push_str(&format!("  \"simd_forced_scalar\": {},\n", caps.forced_scalar));
        out.push_str(&format!("  \"engine\": \"{}\",\n", Self::engine_name()));
        out.push_str(&format!("  \"wall_secs\": {:.3},\n", self.start.elapsed().as_secs_f64()));
        out.push_str(&format!("  \"peak_rss_kb\": {},\n", Self::peak_rss_kb()));
        out.push_str(&format!("  \"obs_enabled\": {},\n", obs::enabled()));
        out.push_str(&format!("  \"obs\": {},\n", obs::global().snapshot().to_json()));
        out
    }

    /// One-line text header for the figure/table harnesses that print tables
    /// instead of JSON.
    pub fn print_text(&self) {
        let caps = sparse::simd::caps();
        println!(
            "[{}] engine={} simd={}x{} cores={} quick={} obs={}",
            self.bench,
            Self::engine_name(),
            caps.isa,
            caps.lanes.width(),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            self.quick,
            if obs::enabled() { "on" } else { "off" },
        );
    }
}

pub mod obsdump;

use dnn::Model;
use train::{run_data_parallel, RunResult};

/// Weak-scaling panel shared by Figs. 8, 10 and 12: for each rank count, run every
/// scheme for a few iterations and print the per-iteration time breakdown.
/// Returns `(P, scheme, mean time/iter)` tuples for further analysis.
pub fn weak_scaling_panel<M, FM, FB>(
    title: &str,
    ps: &[usize],
    schemes: &[Scheme],
    base: &TrainConfig,
    warmup: usize,
    make_model: FM,
    make_batch: FB,
) -> Vec<(usize, Scheme, f64)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}");
    let mut out = Vec::new();
    for &p in ps {
        println!("\nP = {p} ranks (global batch = {} × local batch):", p);
        for &scheme in schemes {
            let mut cfg = *base;
            cfg.scheme = scheme;
            // One OS thread per rank stops being viable well before the weak-
            // scaling sweeps top out; above 64 ranks default to the event
            // engine (bit-identical results, bounded workers) unless the
            // caller pinned an engine explicitly.
            if cfg.engine.is_none() && p > 64 {
                cfg.engine = Some(simnet::Engine::Event);
            }
            let res = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
            let (c, s, m) = res.mean_breakdown(warmup);
            print_breakdown_row(scheme, c, s, m);
            if let Some(line) = obs_summary(&res.metrics) {
                println!("             {line}");
            }
            out.push((p, scheme, c + s + m));
        }
    }
    out
}

/// The paper-scale cluster axis: P ∈ {256 … 4096}. Quick mode keeps the
/// endpoints plus one midpoint so the sweep stays inside the pre-PR gate's
/// budget; `OKBENCH_FULL=1` fills in the full power-of-two ladder.
pub fn paper_axis() -> Vec<usize> {
    if full_scale() {
        vec![256, 512, 1024, 2048, 4096]
    } else {
        vec![256, 1024, 4096]
    }
}

/// Paper-scale weak-scaling axis shared by Figs. 8, 10 and 12 (`--paper-axis`):
/// sweep the figure's model over [`paper_axis`] on `Engine::Event` with the
/// scheduler fast paths carrying the grants. The scheme set is the scalable
/// trio {Dense, gTopk, Ok-Topk} — the allgather-based baselines' host cost is
/// Θ(P²·k) and stops being simulable long before 4096, which is itself the
/// paper's point. At the top P the Ok-Topk cell is re-run under one chaos
/// configuration (straggler + degraded links + jitter) to show the sweep is
/// not clean-path-only. Returns `(P, scheme, chaos?, modeled time/iter)`.
pub fn paper_axis_panel<M, FM, FB>(
    title: &str,
    base: &TrainConfig,
    make_model: FM,
    make_batch: FB,
) -> Vec<(usize, Scheme, bool, f64)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    use train::run_data_parallel_chaos;

    let ps = paper_axis();
    let schemes = [Scheme::Dense, Scheme::GTopk, Scheme::OkTopk];
    // Two iterations, one warmup: the panel measures the per-iteration steady
    // state of a deterministic simulation, not a statistical average, and at
    // P = 4096 every extra iteration is 4096 rank-steps of real compute.
    let iters = 2;
    let warmup = 1;
    println!("{title}");
    println!("paper axis {ps:?} on the event engine ({iters} iters, {warmup} warmup):");
    let mut out = Vec::new();
    for &p in &ps {
        println!("\nP = {p} ranks:");
        for &scheme in &schemes {
            let mut cfg = *base;
            cfg.scheme = scheme;
            cfg.iters = iters;
            cfg.engine = Some(simnet::Engine::Event);
            cfg.stack_bytes = Some(1 << 20);
            let wall = std::time::Instant::now();
            let res = run_data_parallel_chaos(p, &cfg, None, &make_model, &make_batch, &[]);
            let (c, s, m) = res.mean_breakdown(warmup);
            print_breakdown_row(scheme, c, s, m);
            println!(
                "             host: {:.1}s wall{}",
                wall.elapsed().as_secs_f64(),
                sched_summary(&res.metrics).map(|l| format!(", {l}")).unwrap_or_default()
            );
            out.push((p, scheme, false, c + s + m));
        }
    }
    // One chaos configuration at the top P: the fast paths must hold their
    // schedule (and the run must complete) when timing is perturbed.
    let p_top = *ps.last().expect("non-empty axis");
    let plan = simnet::ChaosPlan::new(9)
        .straggler(1, 1.5)
        .degrade_all_links(1.2, 1.3, 0.0, 5e-4)
        .jitter(1e-6);
    let mut cfg = *base;
    cfg.scheme = Scheme::OkTopk;
    cfg.iters = iters;
    cfg.engine = Some(simnet::Engine::Event);
    cfg.stack_bytes = Some(1 << 20);
    let wall = std::time::Instant::now();
    let res = run_data_parallel_chaos(p_top, &cfg, Some(plan), &make_model, &make_batch, &[]);
    let (c, s, m) = res.mean_breakdown(warmup);
    println!(
        "\nP = {p_top} ranks, Ok-Topk under chaos (straggler 1.5x + links 1.2-1.3x + jitter):"
    );
    print_breakdown_row(Scheme::OkTopk, c, s, m);
    println!("             host: {:.1}s wall", wall.elapsed().as_secs_f64());
    let clean = out
        .iter()
        .find(|(p, sc, _, _)| *p == p_top && *sc == Scheme::OkTopk)
        .map(|(_, _, _, t)| *t)
        .expect("clean Ok-Topk cell ran");
    println!("             chaos/clean time ratio: {:.2}x (must be >= 1)", (c + s + m) / clean);
    out.push((p_top, Scheme::OkTopk, true, c + s + m));
    out
}

/// Compact one-line scheduler-counter summary (parks per rank, handoff rate),
/// or `None` when the scheduler counters are absent (thread engine / obs off).
pub fn sched_summary(metrics: &obs::MetricsSnapshot) -> Option<String> {
    use obs::MetricValue;
    let counter = |name: &str| match metrics.get(name) {
        Some(MetricValue::Counter(v)) => Some(*v),
        _ => None,
    };
    let parks = counter("engine.parks")?;
    let grants = counter("engine.token_grants").unwrap_or(0);
    let direct =
        counter("engine.handoff_hit").unwrap_or(0) + counter("engine.handoff_miss").unwrap_or(0);
    let rate = if grants > 0 { direct as f64 / grants as f64 } else { 0.0 };
    Some(format!("sched: {parks} parks, handoff rate {:.0}%", rate * 100.0))
}

/// Compact one-line observability summary of a run's metrics snapshot, or
/// `None` when the snapshot is empty (observability off).
pub fn obs_summary(metrics: &obs::MetricsSnapshot) -> Option<String> {
    use obs::MetricValue;
    if metrics.is_empty() {
        return None;
    }
    let tx_mib = match metrics.get("sim.tx_bytes") {
        Some(MetricValue::PerRankU64(v)) => v.iter().sum::<u64>() as f64 / (1 << 20) as f64,
        _ => 0.0,
    };
    let (wait_max, wait_sum) = match metrics.get("sim.recv_wait_vsec") {
        Some(MetricValue::PerRankF64(v)) => {
            (v.iter().cloned().fold(0.0f64, f64::max), v.iter().sum::<f64>())
        }
        _ => (0.0, 0.0),
    };
    let msgs = match metrics.get("sim.msg_elems") {
        Some(MetricValue::Histogram { count, .. }) => *count,
        _ => 0,
    };
    Some(format!(
        "obs: {msgs} msgs, {tx_mib:.2} MiB sent, recv-wait max {wait_max:.4}s / total {wait_sum:.4}s"
    ))
}

/// Convergence panel shared by Figs. 9, 11 and 13: run each scheme to completion
/// with periodic held-out evaluation and print metric-vs-modeled-time curves.
#[allow(clippy::too_many_arguments)] // experiment harness: explicit is clearer
pub fn convergence_panel<M, FM, FB>(
    title: &str,
    metric_name: &str,
    p: usize,
    schemes: &[Scheme],
    base: &TrainConfig,
    make_model: FM,
    make_batch: FB,
    eval_batches: &[M::Batch],
    // true → report accuracy; false → report error rate; None → report loss
    metric: Option<bool>,
) -> Vec<(Scheme, RunResult)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}  (P = {p})");
    let mut results = Vec::new();
    for &scheme in schemes {
        let mut cfg = *base;
        cfg.scheme = scheme;
        let res = run_data_parallel(p, &cfg, &make_model, &make_batch, eval_batches);
        println!("\n  {} — {metric_name} vs modeled time:", scheme.name());
        for e in &res.evals {
            let v = match metric {
                Some(true) => e.accuracy,
                Some(false) => 1.0 - e.accuracy,
                None => e.loss,
            };
            println!("    t={:>6}  time={:>9.2}s  {metric_name}={v:.4}", e.t, e.time);
        }
        if let Some(last) = res.evals.last() {
            let v = match metric {
                Some(true) => last.accuracy,
                Some(false) => 1.0 - last.accuracy,
                None => last.loss,
            };
            println!("    final: {metric_name} = {v:.4} at modeled time {:.2}s", last.time);
        }
        results.push((scheme, res));
    }
    results
}
