//! # okbench — reproduction harnesses for every table and figure
//!
//! One binary per experiment (`cargo run --release -p okbench --bin figNN`),
//! printing the same rows/series the paper reports, plus Criterion benches over
//! the real compute kernels (`cargo bench -p okbench`).
//!
//! All harnesses run a *quick* configuration by default (minutes on a laptop
//! core); set `OKBENCH_FULL=1` for configurations closer to the paper's scale.
//! EXPERIMENTS.md records paper-vs-measured for the quick settings.

use dnn::models::{BertLite, LstmNet, VggLite};
use train::{Scheme, TrainConfig};

/// Whether the full-scale configuration was requested.
pub fn full_scale() -> bool {
    std::env::var("OKBENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Scale an iteration count by the quick/full switch.
pub fn iters(quick: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Standard model constructors with fixed seeds so every harness trains the same
/// replicas.
pub fn vgg() -> VggLite {
    VggLite::new(16)
}

pub fn lstm() -> LstmNet {
    LstmNet::new(21)
}

pub fn bert() -> BertLite {
    BertLite::new(13)
}

/// Print a breakdown row in a fixed-width table (seconds per iteration).
pub fn print_breakdown_row(scheme: Scheme, compute: f64, sparsify: f64, comm: f64) {
    println!(
        "  {:<10} sparsification {:>9.4}s  communication {:>9.4}s  compute+IO {:>9.4}s  total {:>9.4}s",
        scheme.name(),
        sparsify,
        comm,
        compute,
        compute + sparsify + comm
    );
}

/// Standard quick-mode TrainConfig shared by the case studies.
pub fn base_config(scheme: Scheme, density: f64) -> TrainConfig {
    TrainConfig::new(scheme, density)
}

/// Simple fixed-width series printer: `label: v1 v2 v3 …`.
pub fn print_series(label: &str, values: &[f64]) {
    print!("  {label:<24}");
    for v in values {
        print!(" {v:>10.4}");
    }
    println!();
}

use dnn::Model;
use train::{run_data_parallel, RunResult};

/// Weak-scaling panel shared by Figs. 8, 10 and 12: for each rank count, run every
/// scheme for a few iterations and print the per-iteration time breakdown.
/// Returns `(P, scheme, mean time/iter)` tuples for further analysis.
pub fn weak_scaling_panel<M, FM, FB>(
    title: &str,
    ps: &[usize],
    schemes: &[Scheme],
    base: &TrainConfig,
    warmup: usize,
    make_model: FM,
    make_batch: FB,
) -> Vec<(usize, Scheme, f64)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}");
    let mut out = Vec::new();
    for &p in ps {
        println!("\nP = {p} ranks (global batch = {} × local batch):", p);
        for &scheme in schemes {
            let mut cfg = *base;
            cfg.scheme = scheme;
            let res = run_data_parallel(p, &cfg, &make_model, &make_batch, &[]);
            let (c, s, m) = res.mean_breakdown(warmup);
            print_breakdown_row(scheme, c, s, m);
            out.push((p, scheme, c + s + m));
        }
    }
    out
}

/// Convergence panel shared by Figs. 9, 11 and 13: run each scheme to completion
/// with periodic held-out evaluation and print metric-vs-modeled-time curves.
#[allow(clippy::too_many_arguments)] // experiment harness: explicit is clearer
pub fn convergence_panel<M, FM, FB>(
    title: &str,
    metric_name: &str,
    p: usize,
    schemes: &[Scheme],
    base: &TrainConfig,
    make_model: FM,
    make_batch: FB,
    eval_batches: &[M::Batch],
    // true → report accuracy; false → report error rate; None → report loss
    metric: Option<bool>,
) -> Vec<(Scheme, RunResult)>
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    println!("{title}  (P = {p})");
    let mut results = Vec::new();
    for &scheme in schemes {
        let mut cfg = *base;
        cfg.scheme = scheme;
        let res = run_data_parallel(p, &cfg, &make_model, &make_batch, eval_batches);
        println!("\n  {} — {metric_name} vs modeled time:", scheme.name());
        for e in &res.evals {
            let v = match metric {
                Some(true) => e.accuracy,
                Some(false) => 1.0 - e.accuracy,
                None => e.loss,
            };
            println!("    t={:>6}  time={:>9.2}s  {metric_name}={v:.4}", e.t, e.time);
        }
        if let Some(last) = res.evals.last() {
            let v = match metric {
                Some(true) => last.accuracy,
                Some(false) => 1.0 - last.accuracy,
                None => last.loss,
            };
            println!("    final: {metric_name} = {v:.4} at modeled time {:.2}s", last.time);
        }
        results.push((scheme, res));
    }
    results
}
