//! Profile a small Ok-Topk training job: run with tracing, spans and
//! scheduler logging on, then emit a Chrome/Perfetto `trace_events` JSON and
//! a text metrics summary. The logic lives in the library so the schema test
//! can run it without shelling out to the binary.

use simnet::{export_chrome, Engine};
use train::{run_data_parallel, OptimizerKind, RunResult, Scheme, TrainConfig};

/// Everything one profiling run produces.
pub struct Dump {
    /// The Chrome `trace_events` document (load at `ui.perfetto.dev`).
    pub trace_json: String,
    /// Human-readable metrics table.
    pub summary: String,
    /// The raw run, for further inspection.
    pub result: RunResult,
}

/// Run a small Ok-Topk training job (P ranks, a few iterations) with full
/// profiling and return the exported artifacts. Observability is forced on
/// for the run via [`obs::set_enabled`], honoring an explicit
/// `OKTOPK_OBS=off` would defeat the point of a profiling command.
pub fn run(p: usize, iters: usize, engine: Engine) -> Dump {
    use dnn::data::SyntheticImages;
    use dnn::models::VggLite;

    obs::set_enabled(true);
    let mut cfg = TrainConfig::new(Scheme::OkTopk, 0.05);
    cfg.iters = iters;
    cfg.local_batch = 2;
    cfg.tau = 4;
    cfg.tau_prime = 2;
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
    cfg.engine = Some(engine);
    cfg.profile = true;

    let data = SyntheticImages::with_shape(1, 4, 3, 8, 0.5);
    let local_batch = cfg.local_batch;
    let result = run_data_parallel(
        p,
        &cfg,
        || VggLite::with_width(7, 4, 8, 16, 4, 8),
        move |it, r, w| data.train_batch(it, r, w, local_batch),
        &[],
    );

    let windows: &[(f64, f64)] = &[];
    let trace_json = export_chrome(&result.traces, &result.spans, &result.sched, windows);
    let mut summary = String::new();
    summary.push_str(&format!(
        "obsdump: Ok-Topk P={p} iters={iters} engine={} makespan={:.4}s\n\n",
        match engine {
            Engine::Thread => "thread",
            Engine::Event => "event",
        },
        result.makespan
    ));
    summary.push_str(&result.metrics.render_table());
    Dump { trace_json, summary, result }
}
