//! Offline shim for `criterion` (API subset used by this workspace's benches).
//!
//! The build environment has no registry access, so the real `criterion` cannot
//! be fetched. This shim keeps the authoring surface — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — and reports a plain wall-clock mean
//! per iteration (no outlier analysis, no plots, no baselines).
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false` bench
//! targets), every routine runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque value sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` bench identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    result: Option<(Duration, u64)>, // (total elapsed, total iters)
}

impl Bencher {
    /// Time `routine`, recording mean wall-clock per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warmup, then grow the per-sample batch until a sample is measurable.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(50) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }

    /// A standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(name, f);
        self
    }
}

/// A group of benchmarks sharing sample count and throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a nullary routine.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark a routine over a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Mark the group complete (parity with real criterion; nothing to flush).
    pub fn finish(self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut bencher);
        let Some((total, iters)) = bencher.result else {
            println!("{}/{id}: no b.iter() call", self.name);
            return;
        };
        if self.criterion.test_mode {
            println!("{}/{id}: ok (smoke, 1 iter)", self.name);
            return;
        }
        let per_iter = total.as_secs_f64() / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / per_iter),
            None => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, fmt_duration(per_iter));
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle bench functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` invoking the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 42), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls >= 1);
    }
}
