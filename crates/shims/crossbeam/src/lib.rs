//! Offline shim for `crossbeam` (API subset used by this workspace).
//!
//! Provides `crossbeam::thread::scope` backed by `std::thread::scope` (which
//! post-dates crossbeam's scoped threads and supersedes them). Two deliberate
//! deviations from the real crate, both at our own call sites:
//!
//! - `Scope::spawn` takes a plain `FnOnce() -> T` (std style) instead of
//!   crossbeam's `FnOnce(&Scope) -> T`; no kernel here nests spawns.
//! - `scope` always returns `Ok(..)`: a panicking child that was not joined
//!   re-panics out of the enclosing `std::thread::scope` instead of being
//!   captured in the `Err` variant.

pub use crossbeam_channel as channel;

/// Scoped threads (see crate docs for the deviations from real crossbeam).
pub mod thread {
    /// Join/scope result; `Err` carries a child thread's panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning threads that may borrow from the enclosing scope.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; it may borrow anything outliving the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(f) }
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and take its result (Err on child panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a [`Scope`]; all spawned threads are joined before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let (lo, hi) = data.split_at(2);
            let a = s.spawn(|| lo.iter().sum::<u64>());
            let b = s.spawn(|| hi.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
