//! Offline shim for the `rand` crate (API subset used by this workspace).
//!
//! The build environment has no crates.io access, so the real `rand` cannot be
//! vendored. This shim implements the exact surface the workspace calls —
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! the prelude — on top of xoshiro256** seeded via SplitMix64 (the same
//! construction the reference xoshiro code recommends). Streams are deterministic
//! per seed, statistically solid for test/benchmark data generation, and make no
//! compatibility claim with the real `rand`'s value streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256** (Blackman & Vigna), seeded from a
/// 64-bit value via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// Alias kept for API familiarity; identical generator to [`StdRng`].
pub type SmallRng = StdRng;

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Sample one value from the generator.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Bias-free-enough bounded integer via Lemire's widening multiply.
#[inline]
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`[0,1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (half-open or inclusive, int or float).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Everything the workspace imports via `use rand::prelude::*`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SmallRng, Standard, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(3usize..10);
            assert!((3..10).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-0.25f32..=0.25);
            assert!((-0.25..=0.25).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / n as f64 - 0.25).abs() < 0.01);
    }
}
