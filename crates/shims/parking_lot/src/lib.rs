//! Offline shim for `parking_lot` (API subset used by this workspace).
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's non-poisoning
//! interface: `lock()` returns the guard directly and a panicked holder does not
//! poison the lock for everyone else (poison errors are unwrapped into the inner
//! guard, matching parking_lot's semantics of simply releasing the lock).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking; ignores poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`MutexGuard`] in place (parking_lot style).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses, releasing the guard's lock
    /// while waiting. Returns `true` if the wait timed out (parking_lot returns
    /// a `WaitTimeoutResult`; this shim reduces it to the flag callers check).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out_and_returns_flag() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let timed_out = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(timed_out);
        *g += 1; // guard still usable after the timed wait
        assert_eq!(*g, 1);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
