//! Offline shim for `crossbeam-channel` (API subset used by this workspace).
//!
//! Wraps `std::sync::mpsc` behind crossbeam-channel's names. Only the unbounded
//! MPSC shape is provided — which is exactly how `simnet` uses channels: every
//! rank owns its `Receiver`, all other ranks hold `Sender` clones.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half of an unbounded channel. Cloneable; sends never block.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

// mpsc::Sender is Clone but the derive would require T: Clone; implement manually.
impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        t.join().unwrap();
        drop(tx);
        let got: Vec<u32> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }
}
