//! Offline shim for `proptest` (the subset this workspace's property tests use).
//!
//! The build environment has no crates.io access, so the real `proptest` cannot
//! be fetched. This shim keeps the same test-authoring surface — `proptest!`,
//! strategies built from ranges/tuples/`Just`/`prop_oneof!`, `prop_map` /
//! `prop_flat_map`, `collection::vec`, `prop_assert*!`, `prop_assume!`,
//! `ProptestConfig::with_cases` — executing each case on a deterministic RNG
//! derived from the test name and attempt number. **No shrinking**: a failing
//! case reports its attempt number so it can be re-run, but is not minimized.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256**, seeded via SplitMix64 from the test name).
// ---------------------------------------------------------------------------

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for one (test, attempt) pair.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (Lemire widening multiply).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config, errors, runner.
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated; the test fails.
    Fail(String),
    /// Precondition not met (`prop_assume!`) — the case is skipped.
    Reject(String),
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: generate cases until `cfg.cases` pass, panicking on the
/// first failure. Called by the code `proptest!` expands to; not user-facing.
pub fn run_proptest(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let max_attempts = cfg.cases.saturating_mul(20).max(1000);
    let mut passed = 0u32;
    let mut attempt = 0u32;
    while passed < cfg.cases {
        assert!(
            attempt < max_attempts,
            "proptest '{name}': exhausted {attempt} attempts with only {passed}/{} passes \
             (too many prop_assume! rejections?)",
            cfg.cases
        );
        let mut rng = TestRng::new(base ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest '{name}' failed on attempt {attempt} (after {passed} passes): {msg}\n\
                 (deterministic: attempt number reproduces the case; no shrinking in this shim)"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

trait StrategyObj {
    type Value;
    fn gen_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn gen_obj(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// Type-erased strategy (what [`Strategy::boxed`] returns).
pub struct BoxedStrategy<T> {
    inner: Box<dyn StrategyObj<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.gen_obj(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    (A, B, C, D, E, F, G) (A, B, C, D, E, F, G, H)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The full-domain strategy of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `any::<bool>()` strategy.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------------

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from `element` with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn p(x in 0..10usize) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__cfg, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::gen_value(&($strat), __rng);)+
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Fail the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// `proptest::prelude::prop` — alias of the crate root, for `prop::collection::vec` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f32..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0i32..10, n..=n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || x == 2 || x == 20 || x == 22);
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed on attempt")]
    fn failing_property_panics() {
        run_proptest_example();
    }

    fn run_proptest_example() {
        crate::run_proptest(
            &ProptestConfig::with_cases(16),
            "always_fails",
            |_rng| Err(TestCaseError::Fail("nope".into())),
        );
    }
}
