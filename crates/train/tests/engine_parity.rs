//! Cross-engine observability parity at the scheme level: for every
//! gradient-exchange scheme (the paper's seven and the hierarchical
//! variants), the Virtual-class metrics recorded
//! during a run (recv-wait, tx/rx bytes, message histograms, chaos counters,
//! trainer phase times, …) must be bit-identical between `Engine::Thread` and
//! `Engine::Event` — clean and under a chaos plan. Host-class metrics (pool
//! behavior, scheduler token traffic, wall time) are exempt by design.

use simnet::{ChaosPlan, Cluster, Engine, SchedMode};
use train::{CostProfile, Reducer, Scheme, Update};

/// Deterministic pseudo-gradient: a fixed function of (rank, iter, index).
fn grad(rank: usize, t: usize, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (rank * 7919 + t * 104729 + i) as u64;
            let h = x.wrapping_mul(0x9e3779b97f4a7c15);
            ((h >> 40) as f32 / (1 << 24) as f32) - 0.5
        })
        .collect()
}

/// Run three reduce steps of `scheme` on 4 ranks under `engine`, with
/// observability forced on; return clocks and the Virtual-metric bit view.
fn run_once(
    scheme: Scheme,
    engine: Engine,
    chaos: bool,
) -> (Vec<f64>, Vec<(String, Vec<u64>)>, Vec<f64>) {
    run_once_sched(scheme, engine, chaos, None)
}

fn run_once_sched(
    scheme: Scheme,
    engine: Engine,
    chaos: bool,
    sched: Option<SchedMode>,
) -> (Vec<f64>, Vec<(String, Vec<u64>)>, Vec<f64>) {
    let p = 4;
    let n = 512;
    let cost = CostProfile::paper_calibrated();
    let mut cluster = Cluster::new(p, cost.network()).with_obs(true).with_engine(engine);
    if let Some(mode) = sched {
        cluster = cluster.with_sched(mode);
    }
    if chaos {
        let plan = ChaosPlan::new(11)
            .straggler(1, 1.6)
            .degrade_all_links(1.3, 1.4, 0.0, 1e-3)
            .jitter(2e-6)
            .pause(2, 1e-4, 5e-4);
        cluster = cluster.with_chaos(plan);
    }
    let report = cluster.run(move |comm| {
        let mut reducer = Reducer::new(scheme, n, 0.05, cost, 2, 2);
        let mut checksum = 0.0f64;
        for t in 0..3 {
            let g = grad(comm.rank(), t, n);
            let (update, _) = reducer.reduce_with_overlap(comm, &g, 0.1, 0.0);
            checksum += match &update {
                Update::Dense(v) => v.iter().map(|&x| x as f64).sum::<f64>(),
                Update::Sparse(u) => u.values().iter().map(|&x| x as f64).sum::<f64>(),
            };
        }
        checksum
    });
    (report.times.clone(), report.metrics.parity_view(), report.results)
}

fn assert_scheme_parity(scheme: Scheme, chaos: bool) {
    let (t_clocks, t_metrics, t_results) = run_once(scheme, Engine::Thread, chaos);
    let (e_clocks, e_metrics, e_results) = run_once(scheme, Engine::Event, chaos);
    let label = scheme.name();
    assert_eq!(t_results, e_results, "{label}: reduce results diverged across engines");
    assert_eq!(t_clocks, e_clocks, "{label}: virtual clocks diverged across engines");
    assert_eq!(t_metrics, e_metrics, "{label}: virtual-class metrics diverged across engines");
    assert!(
        t_metrics.iter().any(|(name, _)| name == "sim.recv_wait_vsec"),
        "{label}: recv-wait metric missing with obs forced on"
    );
}

#[test]
fn all_schemes_have_metric_parity_clean() {
    for scheme in Scheme::all() {
        assert_scheme_parity(scheme, false);
    }
}

#[test]
fn all_schemes_have_metric_parity_under_chaos() {
    for scheme in Scheme::all() {
        assert_scheme_parity(scheme, true);
    }
}

/// The event engine's two dispatch paths (`SIMNET_SCHED=classic|fast`) must be
/// as interchangeable as the engines themselves: bit-identical gradients,
/// clocks and Virtual-class metrics for every scheme, clean and under chaos.
fn assert_sched_parity(scheme: Scheme, chaos: bool) {
    let (c_clocks, c_metrics, c_results) =
        run_once_sched(scheme, Engine::Event, chaos, Some(SchedMode::Classic));
    let (f_clocks, f_metrics, f_results) =
        run_once_sched(scheme, Engine::Event, chaos, Some(SchedMode::Fast));
    let label = scheme.name();
    assert_eq!(c_results, f_results, "{label}: results diverged across sched paths");
    assert_eq!(c_clocks, f_clocks, "{label}: clocks diverged across sched paths");
    assert_eq!(c_metrics, f_metrics, "{label}: virtual metrics diverged across sched paths");
}

#[test]
fn all_schemes_have_sched_path_parity_clean() {
    for scheme in Scheme::all() {
        assert_sched_parity(scheme, false);
    }
}

#[test]
fn all_schemes_have_sched_path_parity_under_chaos() {
    for scheme in Scheme::all() {
        assert_sched_parity(scheme, true);
    }
}

/// The hierarchical schemes at P=4 with no topology degenerate to their flat
/// counterparts, so the suites above only exercise the degenerate paths. Run
/// them again on a genuine two-tier topology (8 ranks, 4 per node, 8×
/// oversubscription) so the intra-reduce → leader-exchange → broadcast
/// pipeline itself is held to the same cross-engine / cross-sched-path
/// bit-parity guarantees, clean and under chaos.
fn run_hier(
    scheme: Scheme,
    engine: Engine,
    chaos: bool,
    sched: Option<SchedMode>,
) -> (Vec<f64>, Vec<(String, Vec<u64>)>, Vec<f64>) {
    let p = 8;
    let n = 512;
    let rpn = 4;
    let cost = CostProfile::paper_calibrated();
    let topo =
        simnet::Topology::two_tier(rpn, (1e-6, 1e-9), (25e-6, 4e-9)).with_oversubscription(8.0);
    let mut cluster =
        Cluster::new(p, cost.network()).with_obs(true).with_engine(engine).with_topology(topo);
    if let Some(mode) = sched {
        cluster = cluster.with_sched(mode);
    }
    if chaos {
        let plan = ChaosPlan::new(23)
            .straggler(3, 1.5)
            .degrade_all_links(1.2, 1.5, 0.0, 1e-3)
            .jitter(2e-6)
            .pause(5, 1e-4, 5e-4);
        cluster = cluster.with_chaos(plan);
    }
    let report = cluster.run(move |comm| {
        let mut reducer = Reducer::new(scheme, n, 0.05, cost, 2, 2).with_ranks_per_node(rpn);
        let mut checksum = 0.0f64;
        for t in 0..3 {
            let g = grad(comm.rank(), t, n);
            let (update, _) = reducer.reduce_with_overlap(comm, &g, 0.1, 0.0);
            checksum += match &update {
                Update::Dense(v) => v.iter().map(|&x| x as f64).sum::<f64>(),
                Update::Sparse(u) => u.values().iter().map(|&x| x as f64).sum::<f64>(),
            };
        }
        checksum
    });
    (report.times.clone(), report.metrics.parity_view(), report.results)
}

const HIER_SCHEMES: [Scheme; 3] = [Scheme::HierDense, Scheme::HierGTopk, Scheme::HierOkTopk];

#[test]
fn hier_schemes_have_engine_parity_on_two_tier_topology() {
    for scheme in HIER_SCHEMES {
        for chaos in [false, true] {
            let (t_clocks, t_metrics, t_results) = run_hier(scheme, Engine::Thread, chaos, None);
            let (e_clocks, e_metrics, e_results) = run_hier(scheme, Engine::Event, chaos, None);
            let label = scheme.name();
            assert_eq!(t_results, e_results, "{label} chaos={chaos}: results diverged");
            assert_eq!(t_clocks, e_clocks, "{label} chaos={chaos}: clocks diverged");
            assert_eq!(t_metrics, e_metrics, "{label} chaos={chaos}: metrics diverged");
        }
    }
}

#[test]
fn hier_schemes_have_sched_path_parity_on_two_tier_topology() {
    for scheme in HIER_SCHEMES {
        for chaos in [false, true] {
            let (c_clocks, c_metrics, c_results) =
                run_hier(scheme, Engine::Event, chaos, Some(SchedMode::Classic));
            let (f_clocks, f_metrics, f_results) =
                run_hier(scheme, Engine::Event, chaos, Some(SchedMode::Fast));
            let label = scheme.name();
            assert_eq!(c_results, f_results, "{label} chaos={chaos}: results diverged");
            assert_eq!(c_clocks, f_clocks, "{label} chaos={chaos}: clocks diverged");
            assert_eq!(c_metrics, f_metrics, "{label} chaos={chaos}: metrics diverged");
        }
    }
}

/// End-to-end trainer parity: the `train.*` instruments (phase times, nnz
/// histogram, residual norms) recorded through `run_data_parallel` are also
/// Virtual-class and must match across engines.
#[test]
fn trainer_metrics_match_across_engines() {
    use dnn::data::SyntheticImages;
    use dnn::models::VggLite;
    use train::{run_data_parallel, OptimizerKind, TrainConfig};

    obs::set_enabled(true);
    let run = |engine: Engine| {
        let mut cfg = TrainConfig::new(Scheme::OkTopk, 0.05);
        cfg.iters = 4;
        cfg.local_batch = 2;
        cfg.tau = 2;
        cfg.tau_prime = 2;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        cfg.engine = Some(engine);
        let data = SyntheticImages::with_shape(1, 4, 3, 8, 0.5);
        run_data_parallel(
            3,
            &cfg,
            || VggLite::with_width(7, 4, 8, 16, 4, 8),
            move |it, r, w| data.train_batch(it, r, w, 2),
            &[],
        )
    };
    let thread = run(Engine::Thread);
    let event = run(Engine::Event);
    assert_eq!(thread.makespan, event.makespan, "makespan diverged");
    assert_eq!(
        thread.metrics.parity_view(),
        event.metrics.parity_view(),
        "trainer virtual metrics diverged across engines"
    );
    for name in ["train.compute_vsec", "train.sparsify_vsec", "train.residual_l2"] {
        assert!(
            thread.metrics.parity_view().iter().any(|(n, _)| n == name),
            "missing trainer metric {name}"
        );
    }
}
