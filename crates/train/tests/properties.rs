//! Property tests at the trainer level: scheme-independent invariants of the
//! data-parallel harness on random small models and data.

use dnn::data::SyntheticImages;
use dnn::models::VggLite;
use proptest::prelude::*;
use train::{run_data_parallel, OptimizerKind, Scheme, TrainConfig};

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Dense),
        Just(Scheme::DenseOvlp),
        Just(Scheme::TopkA),
        Just(Scheme::TopkDsa),
        Just(Scheme::GTopk),
        Just(Scheme::GaussianK),
        Just(Scheme::OkTopk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the scheme, P, density and periods: the run completes, records are
    /// well-formed (monotone iteration ids, non-negative times, finite losses) and
    /// the result is deterministic.
    #[test]
    fn runs_complete_and_are_wellformed(
        scheme in scheme_strategy(),
        p in 2usize..5,
        density in 0.02f64..0.5,
        tau in 1usize..5,
        seed in 0u64..50,
    ) {
        let mut cfg = TrainConfig::new(scheme, density);
        cfg.iters = 4;
        cfg.local_batch = 2;
        cfg.tau = tau;
        cfg.tau_prime = tau;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.02 };
        let data = SyntheticImages::with_shape(seed, 3, 3, 8, 0.4);
        let d2 = data.clone();
        let res = run_data_parallel(
            p,
            &cfg,
            move || VggLite::with_width(9, 4, 8, 16, 3, 8),
            move |it, r, w| d2.train_batch(it, r, w, 2),
            &[],
        );
        prop_assert_eq!(res.records.len(), 4);
        for (i, r) in res.records.iter().enumerate() {
            prop_assert_eq!(r.t, i + 1);
            prop_assert!(r.compute > 0.0 && r.sparsify >= 0.0 && r.comm >= 0.0);
            prop_assert!(r.train_loss.is_finite());
            if scheme.is_sparse() {
                prop_assert!(r.local_nnz.is_some());
                prop_assert!(r.global_nnz.is_some());
            } else {
                prop_assert!(r.local_nnz.is_none());
            }
        }
        prop_assert!(res.makespan > 0.0);
    }

    /// Sparse schemes respect the density dial: the steady-state result support is
    /// within a small factor of k for exact-selection schemes.
    #[test]
    fn exact_selection_schemes_respect_k(
        scheme in prop_oneof![Just(Scheme::TopkA), Just(Scheme::TopkDsa), Just(Scheme::GTopk)],
        p in 2usize..5,
        density in 0.05f64..0.3,
    ) {
        let mut cfg = TrainConfig::new(scheme, density);
        cfg.iters = 3;
        cfg.local_batch = 2;
        let data = SyntheticImages::with_shape(5, 3, 3, 8, 0.4);
        let res = run_data_parallel(
            p,
            &cfg,
            move || VggLite::with_width(9, 4, 8, 16, 3, 8),
            move |it, r, w| data.train_batch(it, r, w, 2),
            &[],
        );
        use dnn::Model;
        let n = VggLite::with_width(9, 4, 8, 16, 3, 8).num_params();
        let k = ((n as f64 * density).round() as usize).max(1);
        for r in &res.records {
            let local = r.local_nnz.expect("sparse scheme records local_nnz");
            prop_assert_eq!(local, k, "exact local selection must be exactly k");
            let global = r.global_nnz.expect("sparse scheme records global_nnz");
            match scheme {
                // gTopk re-selects: ≤ k.
                Scheme::GTopk => prop_assert!(global <= k),
                // Union-based: between k and P·k.
                _ => prop_assert!(global >= k && global <= p * k),
            }
        }
    }
}
