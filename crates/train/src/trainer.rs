//! The data-parallel training loop with full instrumentation.

use crate::cost::CostProfile;
use crate::reducer::{Reducer, Scheme, Update};
use collectives::{allreduce_inplace, allreduce_sum_f64};
use dnn::optim::{Adam, Sgd};
use dnn::Model;
use simnet::{Cluster, Comm, Engine};
use sparse::select::topk_exact;
use sparse::stats::l2_norm;

/// Which optimizer applies the reduced update (mirrors §5's recipes).
#[derive(Clone, Copy, Debug)]
pub enum OptimizerKind {
    /// Plain SGD; sparse schemes fold the learning rate into their accumulators
    /// and the returned sparse delta is subtracted directly.
    Sgd {
        /// Base learning rate.
        lr: f32,
    },
    /// Adam on the (sparse or dense) averaged gradient, as in the BERT recipe.
    Adam {
        /// Base learning rate.
        lr: f32,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
}

/// One experiment's knobs.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Gradient-exchange scheme under test.
    pub scheme: Scheme,
    /// Density k/n.
    pub density: f64,
    /// Training iterations.
    pub iters: usize,
    /// Per-rank batch size (global batch = P × this).
    pub local_batch: usize,
    /// Modeled cost calibration.
    pub cost: CostProfile,
    /// τ (space repartition) and τ′ (threshold re-evaluation) for Ok-Topk.
    pub tau: usize,
    /// τ′ for Ok-Topk (see [`tau`](Self::tau) doc).
    pub tau_prime: usize,
    /// Which optimizer applies the reduced update.
    pub optimizer: OptimizerKind,
    /// `lr_t = lr / (1 + t/decay)`; 0 disables decay.
    pub lr_decay_iters: usize,
    /// Evaluate on held-out data every this many iterations (0 = never).
    pub eval_every: usize,
    /// Measure ξ (Assumption 1) every this many iterations (0 = never; Ok-Topk only).
    pub measure_xi_every: usize,
    /// Simulation engine; `None` defers to the cluster default (`SIMNET_ENGINE`).
    /// Weak-scaling harnesses force [`Engine::Event`] above thread-engine
    /// comfort (see `okbench::weak_scaling_panel`).
    pub engine: Option<Engine>,
    /// Per-rank stack size; `None` keeps the cluster default. The paper-scale
    /// sweeps (P up to 4096 ranks in one process) shrink this so rank stacks
    /// stay a bounded share of the address space.
    pub stack_bytes: Option<usize>,
    /// Record per-rank activity traces, structured spans and (event engine)
    /// scheduler decisions for Chrome-trace export; see `RunResult::traces`.
    pub profile: bool,
    /// Cluster topology installed on the simulated network. `None` keeps the
    /// cluster default (the `SIMNET_TOPO` env, else flat). Shape-only
    /// topologies change the hierarchical schemes' grouping without touching
    /// link charging; two-tier topologies also re-price every link.
    pub topology: Option<simnet::Topology>,
}

impl TrainConfig {
    /// Paper-flavored defaults (τ = 64, τ′ = 32, SGD lr 0.1, 100 iterations).
    pub fn new(scheme: Scheme, density: f64) -> Self {
        Self {
            scheme,
            density,
            iters: 100,
            local_batch: 8,
            cost: CostProfile::paper_calibrated(),
            tau: 64,
            tau_prime: 32,
            optimizer: OptimizerKind::Sgd { lr: 0.1 },
            lr_decay_iters: 0,
            eval_every: 0,
            measure_xi_every: 0,
            engine: None,
            stack_bytes: None,
            profile: false,
            topology: None,
        }
    }
}

/// Per-iteration instrumentation (identical on every rank; collected from rank 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct IterRecord {
    /// 1-based iteration number.
    pub t: usize,
    /// Modeled seconds: forward+backward compute (incl. I/O).
    pub compute: f64,
    /// Modeled seconds: top-k selection / thresholding.
    pub sparsify: f64,
    /// Modeled seconds: visible communication (after any overlap).
    pub comm: f64,
    /// Global mean training loss of this iteration.
    pub train_loss: f64,
    /// Local top-k selection size (sparse schemes).
    pub local_nnz: Option<usize>,
    /// Global/result support size (sparse schemes).
    pub global_nnz: Option<usize>,
    /// Gaussiank's raw predicted selection count.
    pub gaussian_pred: Option<usize>,
    /// TopkDSA output density (fill-in).
    pub dsa_density: Option<f64>,
    /// Whether Ok-Topk's data balancing fired.
    pub balanced: Option<bool>,
    /// Assumption-1 ξ, when measured.
    pub xi: Option<f64>,
}

/// A held-out evaluation snapshot.
#[derive(Clone, Copy, Debug)]
pub struct EvalPoint {
    /// Iteration at which the snapshot was taken.
    pub t: usize,
    /// Modeled wall-clock at which this evaluation state was reached.
    pub time: f64,
    /// Mean held-out loss.
    pub loss: f64,
    /// Held-out argmax accuracy.
    pub accuracy: f64,
}

/// Everything one training run produces.
pub struct RunResult {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// Per-iteration instrumentation.
    pub records: Vec<IterRecord>,
    /// Held-out evaluation snapshots.
    pub evals: Vec<EvalPoint>,
    /// Modeled makespan of the whole run (slowest rank).
    pub makespan: f64,
    /// The run's metrics snapshot (simnet + trainer instruments; empty values
    /// when observability is disabled).
    pub metrics: obs::MetricsSnapshot,
    /// Per-rank activity traces (empty unless [`TrainConfig::profile`]).
    pub traces: Vec<Vec<simnet::TraceEvent>>,
    /// Per-rank structured spans (empty unless [`TrainConfig::profile`]).
    pub spans: Vec<Vec<obs::SpanEvent>>,
    /// Event-engine scheduler decisions (empty unless profiling on the event
    /// engine).
    pub sched: Vec<simnet::SchedEvent>,
}

/// What each rank closure returns; only rank 0's records/evals are kept, but
/// traces and spans are collected from every rank.
struct RankRun {
    records: Vec<IterRecord>,
    evals: Vec<EvalPoint>,
    trace: Vec<simnet::TraceEvent>,
    spans: Vec<obs::SpanEvent>,
}

impl RunResult {
    /// Mean (compute, sparsify, comm) per iteration, skipping `warmup` iterations.
    pub fn mean_breakdown(&self, warmup: usize) -> (f64, f64, f64) {
        let tail = &self.records[warmup.min(self.records.len())..];
        if tail.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = tail.len() as f64;
        (
            tail.iter().map(|r| r.compute).sum::<f64>() / n,
            tail.iter().map(|r| r.sparsify).sum::<f64>() / n,
            tail.iter().map(|r| r.comm).sum::<f64>() / n,
        )
    }

    /// Mean modeled time per iteration (sum of the breakdown).
    pub fn time_per_iter(&self, warmup: usize) -> f64 {
        let (c, s, m) = self.mean_breakdown(warmup);
        c + s + m
    }
}

/// Run `cfg.iters` iterations of data-parallel training of the model produced by
/// `make_model` on `p` ranks, exchanging gradients with `cfg.scheme`.
///
/// - `make_model()` must be deterministic (all replicas start identical).
/// - `make_batch(iter, rank, world)` supplies disjoint shards.
/// - `eval_batches` are evaluated by rank 0 every `cfg.eval_every` iterations.
pub fn run_data_parallel<M, FM, FB>(
    p: usize,
    cfg: &TrainConfig,
    make_model: FM,
    make_batch: FB,
    eval_batches: &[M::Batch],
) -> RunResult
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    run_data_parallel_chaos(p, cfg, None, make_model, make_batch, eval_batches)
}

/// [`run_data_parallel`] with an optional chaos plan applied to the cluster —
/// the paper-scale robustness legs train under perturbed link/compute timing
/// while everything else (determinism per plan, instrumentation) is unchanged.
pub fn run_data_parallel_chaos<M, FM, FB>(
    p: usize,
    cfg: &TrainConfig,
    chaos: Option<simnet::ChaosPlan>,
    make_model: FM,
    make_batch: FB,
    eval_batches: &[M::Batch],
) -> RunResult
where
    M: Model,
    M::Batch: Sync,
    FM: Fn() -> M + Send + Sync,
    FB: Fn(u64, usize, usize) -> M::Batch + Send + Sync,
{
    // Rescale fixed costs (latency, kernel launches) to this model's size so the
    // experiment sits in the paper's bandwidth-dominated regime (see cost.rs).
    let n = make_model().num_params();
    let mut cfg = *cfg;
    cfg.cost = cfg.cost.scaled_for_model(n);
    let cfg = &cfg;
    let mut cluster = Cluster::new(p, cfg.cost.network());
    if let Some(engine) = cfg.engine {
        cluster = cluster.with_engine(engine);
    }
    if let Some(bytes) = cfg.stack_bytes {
        cluster = cluster.with_stack_bytes(bytes);
    }
    if let Some(plan) = chaos {
        cluster = cluster.with_chaos(plan);
    }
    if let Some(topo) = cfg.topology {
        cluster = cluster.with_topology(topo);
    }
    if cfg.profile {
        cluster = cluster.with_sched_trace(true);
    }
    let report = cluster.run(|comm| train_rank(comm, cfg, &make_model, &make_batch, eval_batches));
    let makespan = report.makespan();
    let metrics = report.metrics;
    let sched = report.sched;
    let mut traces = Vec::with_capacity(p);
    let mut spans = Vec::with_capacity(p);
    let mut rank0 = None;
    for (rank, run) in report.results.into_iter().enumerate() {
        traces.push(run.trace);
        spans.push(run.spans);
        if rank == 0 {
            rank0 = Some((run.records, run.evals));
        }
    }
    let (records, evals) = rank0.expect("rank 0 result");
    RunResult { scheme: cfg.scheme, records, evals, makespan, metrics, traces, spans, sched }
}

fn train_rank<M, FM, FB>(
    comm: &mut Comm,
    cfg: &TrainConfig,
    make_model: &FM,
    make_batch: &FB,
    eval_batches: &[M::Batch],
) -> RankRun
where
    M: Model,
    FM: Fn() -> M,
    FB: Fn(u64, usize, usize) -> M::Batch,
{
    let rank = comm.rank();
    let world = comm.size();
    if cfg.profile {
        comm.enable_trace();
        comm.enable_spans();
    }
    // Trainer instruments live in the same per-run registry as simnet's, so
    // they land in `RunResult::metrics` and inherit the Virtual-class
    // cross-engine parity guarantee (all are per-rank single-writer values or
    // functions of the data, never of host scheduling).
    let m_obs = comm.obs().enabled();
    let m_compute = comm.obs().rank_f64("train.compute_vsec", obs::Class::Virtual);
    let m_sparsify = comm.obs().rank_f64("train.sparsify_vsec", obs::Class::Virtual);
    let m_comm = comm.obs().rank_f64("train.comm_vsec", obs::Class::Virtual);
    let m_residual = comm.obs().rank_f64("train.residual_l2", obs::Class::Virtual);
    let m_nnz = comm.obs().histogram("train.local_nnz", obs::Class::Virtual);
    let m_steps = comm.obs().counter("train.steps", obs::Class::Virtual);
    let mut model = make_model();
    let n = model.num_params();
    let mut reducer = Reducer::new(cfg.scheme, n, cfg.density, cfg.cost, cfg.tau, cfg.tau_prime)
        .with_ranks_per_node(collectives::ranks_per_node(comm));
    let k = reducer.k();

    let (mut sgd, mut adam, base_scale): (Option<Sgd>, Option<Adam>, f32) = match cfg.optimizer {
        OptimizerKind::Sgd { lr } => (Some(Sgd::new(lr, 0.0, n)), None, lr),
        OptimizerKind::Adam { lr, weight_decay } => {
            (None, Some(Adam::new(lr, 0.9, 0.999, 1e-8, weight_decay, n)), 1.0)
        }
    };

    let fwd_time = cfg.cost.fwd_bwd(n);
    let overlap = if cfg.scheme == Scheme::DenseOvlp { cfg.cost.overlap_window } else { 0.0 };

    let mut records = Vec::with_capacity(cfg.iters);
    let mut evals = Vec::new();

    for t in 1..=cfg.iters {
        // Learning-rate schedule (applied to the SGD scale; Adam keeps its own lr).
        let lr_t = if cfg.lr_decay_iters > 0 {
            base_scale / (1.0 + t as f32 / cfg.lr_decay_iters as f32)
        } else {
            base_scale
        };
        let scale = match cfg.optimizer {
            OptimizerKind::Sgd { .. } => lr_t,
            OptimizerKind::Adam { .. } => 1.0,
        };
        if let (OptimizerKind::Sgd { .. }, Some(s)) = (cfg.optimizer, sgd.as_mut()) {
            s.lr = lr_t;
        }

        // Real gradient computation on this rank's shard.
        comm.span_enter("iter");
        comm.span_enter("compute");
        let batch = make_batch((t - 1) as u64, rank, world);
        model.zero_grads();
        let stats = model.forward_backward(&batch);

        // Modeled compute: the non-overlappable share now, the rest (DenseOvlp's
        // overlap window) runs concurrently with communication below.
        comm.compute(fwd_time * (1.0 - overlap));
        comm.span_exit();
        let t_comm_start = comm.now();

        // ξ instrumentation part A: gather the dense accumulator/gradient averages
        // out-of-band (free mode: zero modeled cost, no ledger pollution).
        let xi_prep = if cfg.measure_xi_every > 0
            && cfg.scheme == Scheme::OkTopk
            && t % cfg.measure_xi_every == 0
        {
            let acc = reducer
                .peek_oktopk_accumulator(model.grads(), scale)
                .expect("OkTopk scheme has an accumulator");
            comm.set_free_mode(true);
            let mut acc_sum = acc;
            allreduce_inplace(comm, &mut acc_sum);
            let mut grad_sum = model.grads().to_vec();
            allreduce_inplace(comm, &mut grad_sum);
            comm.set_free_mode(false);
            Some((acc_sum, grad_sum))
        } else {
            None
        };

        // The overlapped backward tail (DenseOvlp) is spent *inside* the
        // allreduce, spread across its steps between posted receives and waits.
        comm.span_enter("exchange");
        let (update, metrics) =
            reducer.reduce_with_overlap(comm, model.grads(), scale, fwd_time * overlap);
        comm.span_exit();
        let t_comm_end = comm.now();

        let comm_visible =
            ((t_comm_end - t_comm_start) - metrics.sparsify_time - fwd_time * overlap).max(0.0);

        // ξ part B: compare the paper's Eq. 5 terms.
        let xi = xi_prep.map(|(acc_sum, grad_sum)| {
            let pf = world as f32;
            let true_avg: Vec<f32> = acc_sum.iter().map(|v| v / pf).collect();
            let topk_true = topk_exact(&true_avg, k);
            let applied = match &update {
                Update::Sparse(u) => u.clone(),
                Update::Dense(_) => unreachable!("xi is only measured for Ok-Topk"),
            };
            let mut neg = applied;
            neg.scale(-1.0);
            let diff = topk_true.merge_sum(&neg);
            let denom = (scale as f64) * l2_norm(&grad_sum) / world as f64;
            if denom > 0.0 {
                diff.l2_norm() / denom
            } else {
                0.0
            }
        });

        // Apply the update identically on every rank.
        match (&update, sgd.as_mut(), adam.as_mut()) {
            (Update::Dense(avg), Some(s), _) => s.step(model.params_mut(), avg),
            (Update::Dense(avg), _, Some(a)) => a.step(model.params_mut(), avg),
            (Update::Sparse(u), Some(_), _) => {
                // SGD mode: the sparse delta already carries the learning rate.
                let params = model.params_mut();
                for (i, v) in u.iter() {
                    params[i as usize] -= v;
                }
            }
            (Update::Sparse(u), _, Some(a)) => {
                a.set_lr(match cfg.optimizer {
                    OptimizerKind::Adam { lr, .. } => {
                        if cfg.lr_decay_iters > 0 {
                            lr / (1.0 + t as f32 / cfg.lr_decay_iters as f32)
                        } else {
                            lr
                        }
                    }
                    _ => unreachable!(),
                });
                a.step_sparse(model.params_mut(), u.indexes(), u.values());
            }
            _ => unreachable!("exactly one optimizer is configured"),
        }

        // Global mean training loss (free mode; 2 words).
        comm.set_free_mode(true);
        let sums = allreduce_sum_f64(comm, vec![stats.loss, stats.count as f64]);
        comm.set_free_mode(false);
        let train_loss = if sums[1] > 0.0 { sums[0] / sums[1] } else { 0.0 };

        if m_obs {
            m_steps.inc();
            m_compute.add(rank, fwd_time);
            m_sparsify.add(rank, metrics.sparsify_time);
            m_comm.add(rank, comm_visible);
            if let Some(nnz) = metrics.local_nnz {
                m_nnz.record(nnz as u64);
            }
            // Error-feedback health: residual mass left behind after this
            // step's selection (bounded ⇔ Assumption 1's premise holds).
            if cfg.scheme.is_sparse() {
                m_residual.add(rank, reducer.residual_l2());
            }
        }

        records.push(IterRecord {
            t,
            compute: fwd_time,
            sparsify: metrics.sparsify_time,
            comm: comm_visible,
            train_loss,
            local_nnz: metrics.local_nnz,
            global_nnz: metrics.global_nnz,
            gaussian_pred: metrics.gaussian_pred,
            dsa_density: metrics.dsa_density,
            balanced: metrics.balanced,
            xi,
        });

        // Held-out evaluation: offline (does not advance the modeled clock), on
        // rank 0 only (all replicas are identical).
        if cfg.eval_every > 0 && (t % cfg.eval_every == 0 || t == cfg.iters) && rank == 0 {
            let mut agg = dnn::EvalStats::default();
            for b in eval_batches {
                agg.merge(&model.evaluate(b));
            }
            evals.push(EvalPoint {
                t,
                time: comm.now(),
                loss: agg.mean_loss(),
                accuracy: agg.accuracy(),
            });
        }
        comm.span_exit(); // iter
    }

    RankRun { records, evals, trace: comm.take_trace(), spans: comm.take_spans() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::data::SyntheticImages;
    use dnn::models::VggLite;

    fn small_cfg(scheme: Scheme) -> TrainConfig {
        let mut cfg = TrainConfig::new(scheme, 0.05);
        cfg.iters = 6;
        cfg.local_batch = 2;
        cfg.tau = 2;
        cfg.tau_prime = 2;
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        cfg.eval_every = 3;
        cfg
    }

    fn run_scheme(scheme: Scheme, p: usize) -> RunResult {
        let cfg = small_cfg(scheme);
        let data = SyntheticImages::with_shape(1, 4, 3, 8, 0.5);
        let eval: Vec<_> = (0..2).map(|b| data.test_batch(b, 8)).collect();
        let local_batch = cfg.local_batch;
        run_data_parallel(
            p,
            &cfg,
            || VggLite::with_width(7, 4, 8, 16, 4, 8),
            move |iter, rank, world| data.train_batch(iter, rank, world, local_batch),
            &eval,
        )
    }

    #[test]
    fn every_scheme_trains_and_records() {
        for scheme in Scheme::all() {
            let res = run_scheme(scheme, 4);
            assert_eq!(res.records.len(), 6, "{}", scheme.name());
            assert!(res.makespan > 0.0);
            assert_eq!(res.evals.len(), 2);
            for r in &res.records {
                assert!(r.compute > 0.0);
                assert!(r.comm >= 0.0 && r.sparsify >= 0.0);
                assert!(r.train_loss.is_finite());
                if scheme.is_sparse() {
                    assert!(r.local_nnz.is_some(), "{}", scheme.name());
                }
            }
        }
    }

    #[test]
    fn losses_decrease_for_dense_and_oktopk() {
        for scheme in [Scheme::Dense, Scheme::OkTopk] {
            let cfg = {
                let mut c = small_cfg(scheme);
                c.iters = 25;
                c.density = 0.1;
                c
            };
            let data = SyntheticImages::with_shape(1, 4, 3, 8, 0.5);
            let eval: Vec<_> = (0..2).map(|b| data.test_batch(b, 8)).collect();
            let res = run_data_parallel(
                2,
                &cfg,
                || VggLite::with_width(7, 4, 8, 16, 4, 8),
                move |iter, rank, world| data.train_batch(iter, rank, world, 2),
                &eval,
            );
            let first = res.records[0].train_loss;
            let last = res.records.last().expect("records").train_loss;
            assert!(last < first, "{}: {first} -> {last}", scheme.name());
        }
    }

    #[test]
    fn dense_ovlp_hides_communication() {
        let dense = run_scheme(Scheme::Dense, 4);
        let ovlp = run_scheme(Scheme::DenseOvlp, 4);
        let (_, _, comm_d) = dense.mean_breakdown(1);
        let (_, _, comm_o) = ovlp.mean_breakdown(1);
        assert!(comm_o < comm_d, "overlap did not reduce visible comm: {comm_o} vs {comm_d}");
    }

    #[test]
    fn xi_is_measured_for_oktopk() {
        let mut cfg = small_cfg(Scheme::OkTopk);
        cfg.measure_xi_every = 2;
        cfg.iters = 6;
        let data = SyntheticImages::with_shape(1, 4, 3, 8, 0.5);
        let res = run_data_parallel(
            4,
            &cfg,
            || VggLite::with_width(7, 4, 8, 16, 4, 8),
            move |iter, rank, world| data.train_batch(iter, rank, world, 2),
            &[],
        );
        let measured: Vec<f64> = res.records.iter().filter_map(|r| r.xi).collect();
        assert_eq!(measured.len(), 3);
        assert!(measured.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_scheme(Scheme::OkTopk, 3);
        let b = run_scheme(Scheme::OkTopk, 3);
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.train_loss, y.train_loss);
            assert_eq!(x.comm, y.comm);
        }
    }
}
