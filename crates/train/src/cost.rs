//! Modeled compute/sparsification cost calibration.
//!
//! The paper's absolute times come from P100 GPUs + mpi4py on Piz Daint; ours come
//! from this cost profile. Everything is charged *per gradient element*, so the
//! proportions between compute, communication and sparsification — which determine
//! every qualitative result in Figs. 8–12 — are preserved at our smaller model
//! sizes.
//!
//! Derivation of the defaults from the paper's measurements on VGG-16
//! (n = 27.5M, local batch 16, Fig. 8):
//!
//! - forward+backward ≈ 0.25 s → `9e-9 s/param` compute;
//! - dense allreduce communication ≈ 0.5 s ≈ 2n·β_eff → `β_eff ≈ 9e-9 s/element`
//!   (≈440 MB/s effective per-flow bandwidth through PyTorch + mpi4py — far below
//!   the Aries link rate, as real stacks are);
//! - `torch.topk` style exact selection ≈ 0.3 ms launch+sync overhead +
//!   `7e-9 s/elem`;
//! - an O(n) threshold scan ≈ 0.03 ms + `0.7e-9 s/elem` (the GPU-friendly path);
//! - a sparse merge ≈ `2e-9 s/elem` merged.

use simnet::CostModel;

/// All modeled cost constants of one experiment.
#[derive(Clone, Copy, Debug)]
pub struct CostProfile {
    /// Network per-message latency (s).
    pub alpha: f64,
    /// Network per-element transfer time (s).
    pub beta: f64,
    /// Forward+backward compute per parameter per iteration (s).
    pub compute_per_param: f64,
    /// Exact top-k selection fixed launch cost (s).
    pub topk_launch: f64,
    /// Exact top-k selection per-element cost (s).
    pub topk_per_elem: f64,
    /// Threshold-scan fixed launch cost (s).
    pub scan_launch: f64,
    /// Threshold-scan per-element cost (s).
    pub scan_per_elem: f64,
    /// Sparse merge-sum cost per merged element (charged inside Ok-Topk's
    /// split-and-reduce and gTopk's tree, mirroring where the paper accounts it).
    pub merge_per_elem: f64,
    /// Fraction of forward+backward time a bucketed dense allreduce can hide
    /// (DenseOvlp): roughly the backward share, times pipeline efficiency.
    pub overlap_window: f64,
}

impl CostProfile {
    /// Calibration derived from the paper's Piz Daint measurements (see module docs).
    pub fn paper_calibrated() -> Self {
        Self {
            alpha: 1.5e-6,
            beta: 9e-9,
            compute_per_param: 9e-9,
            topk_launch: 3e-4,
            topk_per_elem: 7e-9,
            scan_launch: 3e-5,
            scan_per_elem: 0.7e-9,
            merge_per_elem: 2e-9,
            overlap_window: 0.55,
        }
    }

    /// Commodity-cloud network (≈25 µs, ≈40 MB/s effective), same compute — used to
    /// check the paper's claim that Ok-Topk's advantage grows on slower networks.
    pub fn commodity_cloud() -> Self {
        Self { alpha: 25e-6, beta: 9e-8, ..Self::paper_calibrated() }
    }

    /// The model size the calibration refers to (VGG-16's 27.5M parameters).
    pub const REFERENCE_N: f64 = 27.5e6;

    /// Rescale the *fixed* costs (message latency α, kernel-launch overheads) to a
    /// model of `n` parameters.
    ///
    /// Per-element costs transfer directly to smaller models, but fixed costs do
    /// not: at the paper's scale (n ≈ 27.5M–110M) the bandwidth terms dwarf the
    /// latency terms — the regime the paper explicitly targets ("the bandwidth
    /// term dominates", §2). Running the same physical constants against our
    /// ~100k-parameter stand-ins would instead put every algorithm in the
    /// latency-dominated regime and distort every comparison. Scaling fixed costs
    /// by `n / REFERENCE_N` keeps each experiment in the paper's proportion regime,
    /// which is what the reproduction targets (see DESIGN.md §1).
    pub fn scaled_for_model(mut self, n: usize) -> Self {
        let s = (n as f64 / Self::REFERENCE_N).min(1.0);
        self.alpha *= s;
        self.topk_launch *= s;
        self.scan_launch *= s;
        self
    }

    /// The simnet network model (α, β) of this profile.
    pub fn network(&self) -> CostModel {
        CostModel { alpha: self.alpha, beta: self.beta, hierarchy: None }
    }

    /// Modeled forward+backward seconds for a model with `n` parameters.
    pub fn fwd_bwd(&self, n: usize) -> f64 {
        self.compute_per_param * n as f64
    }

    /// Modeled exact top-k selection over `n` elements.
    pub fn topk_exact(&self, n: usize) -> f64 {
        self.topk_launch + self.topk_per_elem * n as f64
    }

    /// Modeled threshold scan over `n` elements (`passes` full passes).
    pub fn scan(&self, n: usize, passes: usize) -> f64 {
        self.scan_launch + self.scan_per_elem * (n * passes.max(1)) as f64
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_match_paper_regime() {
        let c = CostProfile::paper_calibrated();
        let n = 27_500_000usize; // VGG-16
                                 // Dense allreduce volume 2n: communication should be ~2× compute.
        let comm = 2.0 * n as f64 * c.beta;
        let compute = c.fwd_bwd(n);
        assert!(comm / compute > 1.5 && comm / compute < 2.5, "ratio {}", comm / compute);
        // Exact selection is the same order as compute; scan is ~10× cheaper.
        assert!(c.topk_exact(n) > 0.5 * compute);
        assert!(c.scan(n, 1) < 0.15 * c.topk_exact(n));
    }

    #[test]
    fn launch_costs_dominate_small_ops() {
        let c = CostProfile::paper_calibrated();
        assert!(c.topk_exact(1000) > 0.9 * c.topk_launch);
        assert!(c.scan(1000, 1) > 0.9 * c.scan_launch);
    }

    #[test]
    fn commodity_network_is_slower() {
        let a = CostProfile::paper_calibrated();
        let b = CostProfile::commodity_cloud();
        assert!(b.beta > a.beta * 5.0);
        assert!(b.alpha > a.alpha * 5.0);
        assert_eq!(a.compute_per_param, b.compute_per_param);
    }
}
