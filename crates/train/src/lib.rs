#![warn(missing_docs)]

//! # train — distributed data-parallel training harness
//!
//! Glues everything together the way the paper's evaluation does (§5): P model
//! replicas (one per simnet rank) compute real gradients on disjoint data shards,
//! exchange them through one of the seven allreduce schemes, and apply identical
//! updates. The harness also carries the instrumentation the paper's figures need:
//!
//! - per-iteration **time breakdown** into sparsification / communication /
//!   computation, in modeled seconds (Figs. 8, 10, 12),
//! - **ξ measurement** validating Assumption 1 (Fig. 5),
//! - **top-k selection counts** — local/global for Ok-Topk, the raw Gaussian
//!   prediction for comparison (Fig. 6), and TopkDSA's fill-in density (§5.2),
//! - **convergence curves**: held-out metric vs modeled wall-clock
//!   (Figs. 9, 11, 13).
//!
//! Schemes: `Dense`, `DenseOvlp`, `TopkA`, `TopkDsa`, `GTopk`, `GaussianK`,
//! `OkTopk` — see [`Scheme`]. Cost calibration is documented in [`cost`].

pub mod checkpoint;
pub mod cost;
pub mod hybrid;
pub mod reducer;
pub mod trainer;

pub use checkpoint::Checkpoint;
pub use cost::CostProfile;
pub use hybrid::{HybridConfig, HybridEstimate};
pub use reducer::{Reducer, Scheme, Update};
pub use trainer::{
    run_data_parallel, run_data_parallel_chaos, EvalPoint, IterRecord, OptimizerKind, RunResult,
    TrainConfig,
};
