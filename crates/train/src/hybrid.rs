//! Hybrid data + pipeline parallelism study — the paper's stated future work
//! (§6: "we aim to further utilize Ok-Topk to reduce the communication overhead in
//! distributed training with a hybrid data and pipeline parallelism").
//!
//! A `P = S × D` grid: `S` pipeline stages, each replicated `D`-way data-parallel.
//! The pipeline follows the GPipe schedule with `M` micro-batches: per-stage
//! compute fills `(M + S − 1)` slots (the `(S−1)/(M+S−1)` fraction being the
//! bubble), micro-batch activations hop between adjacent stages, and at the end of
//! the iteration each stage's `D` replicas allreduce their `n/S`-parameter
//! gradient shard. That last term is where the sparse allreduce plugs in — and the
//! *gradient allreduce time is measured*, not estimated: the chosen scheme
//! actually runs on a simulated `D`-rank cluster with an `n/S`-length gradient.

use crate::cost::CostProfile;
use crate::reducer::Scheme;
use rand::prelude::*;
use simnet::Cluster;

/// Configuration of one hybrid-parallel design point.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Pipeline depth S (must divide `total_ranks`).
    pub stages: usize,
    /// Total ranks P; data-parallel width is `P / S`.
    pub total_ranks: usize,
    /// Micro-batches per iteration (GPipe schedule).
    pub microbatches: usize,
    /// Whole-model parameter count; each stage holds `n / S`.
    pub n: usize,
    /// Sparsity target for the sparse schemes (k over the whole model).
    pub density: f64,
    /// Activation elements exchanged per micro-batch per stage boundary.
    pub activation_elems: usize,
    /// Cost calibration.
    pub cost: CostProfile,
}

/// Modeled per-iteration time of one design point, split by source.
#[derive(Clone, Copy, Debug)]
pub struct HybridEstimate {
    /// Useful compute across the pipeline (all micro-batches, one stage depth).
    pub compute: f64,
    /// Pipeline bubble: idle slots of the GPipe schedule.
    pub bubble: f64,
    /// Activation/gradient-of-activation point-to-point traffic between stages.
    pub activation_comm: f64,
    /// Measured gradient allreduce time within one stage's data-parallel group.
    pub gradient_comm: f64,
}

impl HybridEstimate {
    /// Sum of all four components.
    pub fn total(&self) -> f64 {
        self.compute + self.bubble + self.activation_comm + self.gradient_comm
    }

    /// Idle fraction of the pipeline, `(S−1)/(M+S−1)` of the compute span.
    pub fn bubble_fraction(&self) -> f64 {
        self.bubble / (self.compute + self.bubble)
    }
}

impl HybridConfig {
    /// Data-parallel width `D = P / S`.
    pub fn dp_width(&self) -> usize {
        assert_eq!(self.total_ranks % self.stages, 0, "S must divide P");
        self.total_ranks / self.stages
    }

    /// Evaluate one allreduce scheme at this design point.
    ///
    /// Compute and activation terms come from the cost calibration; the gradient
    /// allreduce term is *measured* by running `scheme` on a simulated `D`-rank
    /// cluster over a synthetic `n/S`-length gradient (averaged over a steady-state
    /// iteration, with the re-evaluation traffic of threshold-based schemes
    /// amortized at τ′ = 32).
    pub fn evaluate(&self, scheme: Scheme) -> HybridEstimate {
        let s = self.stages;
        let d = self.dp_width();
        let m = self.microbatches;
        let stage_n = self.n / s;
        let cost = self.cost.scaled_for_model(self.n);

        // GPipe schedule: each of the (M + S − 1) slots takes one micro-batch's
        // forward+backward on one stage.
        let slot = cost.fwd_bwd(stage_n) / m as f64;
        let compute = slot * m as f64;
        let bubble = slot * (s - 1) as f64;

        // Activations: each micro-batch crosses S−1 boundaries forward and back.
        let hop = cost.alpha + cost.beta * self.activation_elems as f64;
        let activation_comm = 2.0 * hop * ((s - 1) * m) as f64;

        // Gradient allreduce within the stage group, measured.
        let gradient_comm = measure_allreduce(scheme, d, stage_n, self.density, cost);

        HybridEstimate { compute, bubble, activation_comm, gradient_comm }
    }
}

/// Steady-state allreduce time of `scheme` on `d` ranks over an `n`-length
/// gradient with exactly `k = density·n` selected entries per rank.
///
/// Measured on the collective itself (synthetic exact-k sparse inputs, like the
/// Table 1 harness), not through a training loop — the hybrid sweep is a schedule
/// cost study, and running it through residual dynamics would fold the warm-up
/// over-selection transient into every design point. Ok-Topk's amortized
/// (τ′-periodic) re-evaluation traffic is excluded by differencing two
/// deterministic runs.
fn measure_allreduce(scheme: Scheme, d: usize, n: usize, density: f64, cost: CostProfile) -> f64 {
    if d == 1 {
        return 0.0;
    }
    let k = ((n as f64 * density).round() as usize).clamp(1, n);
    let accs: Vec<Vec<f32>> = (0..d)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(900 + r as u64);
            let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            sparse::select::topk_exact(&dense, k).to_dense(n)
        })
        .collect();

    match scheme {
        Scheme::Dense | Scheme::DenseOvlp => {
            let accs = accs.clone();
            Cluster::new(d, cost.network())
                .run(move |comm| {
                    let mut v = accs[comm.rank()].clone();
                    collectives::allreduce_inplace(comm, &mut v);
                    comm.now()
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        }
        Scheme::OkTopk => {
            let run = |iters: usize| -> f64 {
                let accs = accs.clone();
                Cluster::new(d, cost.network())
                    .run(move |comm| {
                        let mut okt = oktopk::OkTopk::new(
                            oktopk::OkTopkConfig::new(n, k)
                                .with_periods(1_000, 1_000)
                                .with_merge_cost(cost.merge_per_elem),
                        );
                        for t in 1..=iters {
                            okt.allreduce(comm, &accs[comm.rank()], t);
                        }
                        comm.now()
                    })
                    .results
                    .iter()
                    .copied()
                    .fold(0.0, f64::max)
            };
            (run(2) - run(1)).max(0.0)
        }
        other => {
            let accs = accs.clone();
            Cluster::new(d, cost.network())
                .run(move |comm| {
                    let local = sparse::select::topk_exact(&accs[comm.rank()], k);
                    match other {
                        Scheme::TopkA | Scheme::GaussianK => {
                            collectives::topk_allgather_allreduce(comm, local);
                        }
                        Scheme::TopkDsa => {
                            collectives::dsa_allreduce(comm, local, n);
                        }
                        Scheme::GTopk => {
                            collectives::gtopk_allreduce(comm, local, k);
                        }
                        _ => unreachable!(),
                    }
                    comm.now()
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> HybridConfig {
        HybridConfig {
            stages: 4,
            total_ranks: 16,
            microbatches: 8,
            n: 64_000,
            density: 0.02,
            activation_elems: 4_096,
            cost: CostProfile::paper_calibrated(),
        }
    }

    #[test]
    fn bubble_fraction_matches_gpipe_formula() {
        let cfg = base();
        let est = cfg.evaluate(Scheme::Dense);
        let expect =
            (cfg.stages as f64 - 1.0) / (cfg.microbatches as f64 + cfg.stages as f64 - 1.0);
        assert!((est.bubble_fraction() - expect).abs() < 1e-9);
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let mut cfg = base();
        let few = cfg.evaluate(Scheme::Dense).bubble_fraction();
        cfg.microbatches = 32;
        let many = cfg.evaluate(Scheme::Dense).bubble_fraction();
        assert!(many < few);
    }

    #[test]
    fn oktopk_cuts_gradient_comm_vs_dense() {
        let cfg = base();
        let dense = cfg.evaluate(Scheme::Dense);
        let okt = cfg.evaluate(Scheme::OkTopk);
        assert!(
            okt.gradient_comm < dense.gradient_comm,
            "okt {} vs dense {}",
            okt.gradient_comm,
            dense.gradient_comm
        );
        // Everything except the gradient term is scheme-independent.
        assert_eq!(dense.compute, okt.compute);
        assert_eq!(dense.bubble, okt.bubble);
        assert_eq!(dense.activation_comm, okt.activation_comm);
    }

    #[test]
    fn deeper_pipelines_trade_gradient_comm_for_bubble() {
        // With S up, each stage's gradient shard shrinks (cheaper allreduce) but
        // the bubble grows — the tradeoff the harness exists to explore.
        let mut cfg = base();
        cfg.stages = 1;
        cfg.microbatches = 8;
        let flat = cfg.evaluate(Scheme::Dense);
        cfg.stages = 8;
        let deep = cfg.evaluate(Scheme::Dense);
        assert!(deep.gradient_comm < flat.gradient_comm);
        assert!(deep.bubble > flat.bubble);
        assert_eq!(flat.bubble, 0.0);
    }

    #[test]
    fn dp_width_requires_divisibility() {
        let mut cfg = base();
        cfg.stages = 3; // 16 % 3 != 0
        let result = std::panic::catch_unwind(|| cfg.dp_width());
        assert!(result.is_err());
    }
}
