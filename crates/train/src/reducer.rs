//! One interface over the gradient-exchange schemes of the evaluation: the
//! paper's seven plus their two-tier hierarchical variants.

use crate::cost::CostProfile;
use collectives::hier::LEADER_GROUP;
use collectives::{
    allreduce_overlapped, broadcast, dsa_allreduce, gtopk_allreduce, hier_dense_allreduce,
    hier_gtopk_allreduce, quantized_allgather_allreduce, reduce_to_root_dense,
    topk_allgather_allreduce,
};
use oktopk::oktopk::intersect_sorted;
use oktopk::{OkTopkConfig, OkTopkSgd};
use simnet::{GroupComm, Net};
use sparse::quant::QuantMode;
use sparse::select::{exact_threshold, select_ge, topk_exact};
use sparse::threshold::GaussianEstimator;
use sparse::CooGradient;

/// The allreduce schemes compared in §5 (Table 1 + DenseOvlp).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Single dense allreduce on the whole gradient.
    Dense,
    /// Dense allreduce overlapped with backward compute (bucketed).
    DenseOvlp,
    /// Allgather-based sparse allreduce with exact top-k selection.
    TopkA,
    /// SparCML's dynamic sparse allreduce (reduce-scatter with fill-in).
    TopkDsa,
    /// Tree allreduce with hierarchical top-k re-selection.
    GTopk,
    /// Allgather-based allreduce with Gaussian-PPF threshold selection.
    GaussianK,
    /// The paper's O(k) sparse allreduce.
    OkTopk,
    /// Two-tier dense allreduce: intra-node reduce → leader allreduce → broadcast.
    HierDense,
    /// Two-tier gTopk: intra-node re-selection tree → leader gTopk → broadcast.
    HierGTopk,
    /// Two-tier Ok-Topk: intra-node dense reduce to the leader (one re-selection
    /// point per node) → leader-group Ok-Topk → intra-node broadcast.
    HierOkTopk,
}

impl Scheme {
    /// All schemes: the paper's seven in presentation order, then the
    /// hierarchical variants.
    pub fn all() -> [Scheme; 10] {
        [
            Scheme::Dense,
            Scheme::DenseOvlp,
            Scheme::TopkA,
            Scheme::TopkDsa,
            Scheme::GTopk,
            Scheme::GaussianK,
            Scheme::OkTopk,
            Scheme::HierDense,
            Scheme::HierGTopk,
            Scheme::HierOkTopk,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Dense => "Dense",
            Scheme::DenseOvlp => "DenseOvlp",
            Scheme::TopkA => "TopkA",
            Scheme::TopkDsa => "TopkDSA",
            Scheme::GTopk => "gTopk",
            Scheme::GaussianK => "Gaussiank",
            Scheme::OkTopk => "Ok-Topk",
            Scheme::HierDense => "Hier-Dense",
            Scheme::HierGTopk => "Hier-gTopk",
            Scheme::HierOkTopk => "Hier-Ok-Topk",
        }
    }

    /// Whether the scheme sparsifies gradients.
    pub fn is_sparse(&self) -> bool {
        !matches!(self, Scheme::Dense | Scheme::DenseOvlp | Scheme::HierDense)
    }

    /// Whether the scheme is a two-tier hierarchical variant (degenerates to
    /// its flat counterpart when `ranks_per_node` is 1).
    pub fn is_hierarchical(&self) -> bool {
        matches!(self, Scheme::HierDense | Scheme::HierGTopk | Scheme::HierOkTopk)
    }
}

/// What a reduce produced, ready to apply to the model.
pub enum Update {
    /// Averaged dense gradient (Dense/DenseOvlp): the optimizer applies it.
    Dense(Vec<f32>),
    /// Averaged sparse result: in SGD mode this is the model delta (lr folded into
    /// the accumulator); in Adam mode (scale = 1) the averaged sparse gradient.
    Sparse(CooGradient),
}

/// Instrumentation of one reduce call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReduceMetrics {
    /// Modeled sparsification seconds charged inside this call.
    pub sparsify_time: f64,
    /// Local top-k selection size (sparse schemes).
    pub local_nnz: Option<usize>,
    /// Global/result support size.
    pub global_nnz: Option<usize>,
    /// TopkDSA output density (§5.2 fill-in metric).
    pub dsa_density: Option<f64>,
    /// Gaussiank's *raw* predicted selection count (before the 3k/4 scaling).
    pub gaussian_pred: Option<usize>,
    /// Whether Ok-Topk's data-balancing trigger fired.
    pub balanced: Option<bool>,
}

/// Per-rank, scheme-specific persistent state (residuals, thresholds, …).
pub struct Reducer {
    scheme: Scheme,
    n: usize,
    k: usize,
    cost: CostProfile,
    /// Residual ε for the sparse baselines (Ok-Topk keeps its own inside
    /// [`OkTopkSgd`]).
    residual: Vec<f32>,
    oktopk: Option<OkTopkSgd>,
    /// Optional SparCML-style value quantization on the wire (TopkA transport
    /// only); the quantization error flows into the residual like any noise.
    quantization: Option<QuantMode>,
    /// Ranks per node for the hierarchical schemes; 1 (the default) makes them
    /// degenerate to their flat counterparts. The trainer sets this from the
    /// cluster's installed topology.
    rpn: usize,
    t: usize,
}

impl Reducer {
    /// Fresh per-rank reducer state for one scheme.
    pub fn new(
        scheme: Scheme,
        n: usize,
        density: f64,
        cost: CostProfile,
        tau: usize,
        tau_prime: usize,
    ) -> Self {
        let k = ((n as f64 * density).round() as usize).clamp(1, n);
        let oktopk = if matches!(scheme, Scheme::OkTopk | Scheme::HierOkTopk) {
            Some(OkTopkSgd::new(
                OkTopkConfig::new(n, k)
                    .with_periods(tau, tau_prime)
                    .with_merge_cost(cost.merge_per_elem),
            ))
        } else {
            None
        };
        let residual =
            if scheme.is_sparse() && !matches!(scheme, Scheme::OkTopk | Scheme::HierOkTopk) {
                vec![0.0; n]
            } else {
                Vec::new()
            };
        Self { scheme, n, k, cost, residual, oktopk, quantization: None, rpn: 1, t: 0 }
    }

    /// Set the node grouping the hierarchical schemes use (ranks per node).
    /// `1` — the default — degenerates them to their flat counterparts; the
    /// trainer passes [`collectives::ranks_per_node`] of the live communicator.
    pub fn with_ranks_per_node(mut self, rpn: usize) -> Self {
        self.rpn = rpn.max(1);
        self
    }

    /// Enable SparCML-style wire quantization (effective for the allgather-based
    /// schemes, i.e. `TopkA` and `GaussianK`).
    pub fn with_quantization(mut self, mode: QuantMode) -> Self {
        self.quantization = Some(mode);
        self
    }

    /// The scheme this reducer runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The resolved top-k target (density × n, clamped to [1, n]).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exchange this iteration's gradient. `scale` folds the learning rate into
    /// the sparse accumulators (SGD mode); pass 1.0 in Adam mode. Dense schemes
    /// ignore `scale` and return the plain averaged gradient.
    ///
    /// Sparsification cost is charged to the rank's clock inside this call and
    /// reported in the metrics so the caller can split the clock delta into
    /// sparsification vs communication.
    pub fn reduce<C: Net>(
        &mut self,
        comm: &mut C,
        grad: &[f32],
        scale: f32,
    ) -> (Update, ReduceMetrics) {
        self.reduce_with_overlap(comm, grad, scale, 0.0)
    }

    /// Like [`Reducer::reduce`], but additionally spends `overlap_budget` seconds
    /// of modeled compute (the DenseOvlp backward tail) *inside* the dense
    /// allreduce, spread across its steps between each posted receive and its
    /// wait — so the compute genuinely hides in the transfer time instead of
    /// being patched over the clock afterwards. Sparse schemes assert a zero
    /// budget: their overlap structure lives inside the collective itself.
    pub fn reduce_with_overlap<C: Net>(
        &mut self,
        comm: &mut C,
        grad: &[f32],
        scale: f32,
        overlap_budget: f64,
    ) -> (Update, ReduceMetrics) {
        debug_assert_eq!(grad.len(), self.n);
        debug_assert!(
            overlap_budget == 0.0 || !self.scheme.is_sparse(),
            "overlap budgets only apply to the dense schemes"
        );
        self.t += 1;
        let p = comm.size() as f32;
        let mut metrics = ReduceMetrics::default();

        match self.scheme {
            Scheme::Dense | Scheme::DenseOvlp | Scheme::HierDense => {
                let mut sum = grad.to_vec();
                if self.scheme == Scheme::HierDense {
                    comm.set_phase("hier-dense");
                    // The hierarchical variant has no interleaved-overlap path;
                    // any budget is spent as plain compute up front.
                    if overlap_budget > 0.0 {
                        comm.compute(overlap_budget);
                    }
                    hier_dense_allreduce(comm, &mut sum, self.rpn);
                } else {
                    comm.set_phase("dense");
                    allreduce_overlapped(comm, &mut sum, overlap_budget);
                }
                for v in &mut sum {
                    *v /= p;
                }
                (Update::Dense(sum), metrics)
            }
            Scheme::TopkA | Scheme::TopkDsa | Scheme::GTopk | Scheme::HierGTopk => {
                let acc = self.accumulate(grad, scale);
                // Exact top-k selection (torch.topk-style cost).
                let sp = self.cost.topk_exact(self.n);
                comm.compute(sp);
                metrics.sparsify_time = sp;
                let local = topk_exact(&acc, self.k);
                metrics.local_nnz = Some(local.nnz());

                let (result, contributed) = match self.scheme {
                    Scheme::TopkA => {
                        let sum = match self.quantization {
                            Some(mode) => quantized_allgather_allreduce(comm, local.clone(), mode),
                            None => topk_allgather_allreduce(comm, local.clone()),
                        };
                        (sum, local.indexes().to_vec())
                    }
                    Scheme::TopkDsa => {
                        let out = dsa_allreduce(comm, local.clone(), self.n);
                        metrics.dsa_density = Some(out.stats.output_density);
                        (out.sum, local.indexes().to_vec())
                    }
                    Scheme::GTopk | Scheme::HierGTopk => {
                        let result = if self.scheme == Scheme::HierGTopk {
                            hier_gtopk_allreduce(comm, local.clone(), self.k, self.rpn)
                        } else {
                            gtopk_allreduce(comm, local.clone(), self.k)
                        };
                        // The paper attributes gTopk's per-level hierarchical
                        // selections to communication time; each level re-selects
                        // the top-k of a 2k-entry merge. The two-tier variant
                        // regroups the tree across tiers but keeps its depth.
                        let levels =
                            (usize::BITS - (comm.size().max(2) - 1).leading_zeros()) as f64;
                        comm.compute(self.cost.topk_exact(2 * self.k) * levels);
                        let contributed = intersect_sorted(local.indexes(), result.indexes());
                        (result, contributed)
                    }
                    _ => unreachable!(),
                };
                metrics.global_nnz = Some(result.nnz());
                self.update_residual(&acc, &contributed);
                let mut avg = result;
                avg.scale(1.0 / p);
                (Update::Sparse(avg), metrics)
            }
            Scheme::GaussianK => {
                let acc = self.accumulate(grad, scale);
                // Gaussian-PPF threshold + the §5.4 scale-until-3k/4 adjustment;
                // every probe is one O(n) scan.
                let mut th = GaussianEstimator::raw_threshold(&acc, self.k);
                let raw_count = acc.iter().filter(|v| v.abs() >= th).count();
                metrics.gaussian_pred = Some(raw_count);
                let target = (3 * self.k) / 4;
                let mut count = raw_count;
                let mut probes = 2; // moment pass + first selection pass
                while count < target && probes < 100 {
                    th *= 0.9;
                    count = acc.iter().filter(|v| v.abs() >= th).count();
                    probes += 1;
                }
                let sp = self.cost.scan(self.n, probes);
                comm.compute(sp);
                metrics.sparsify_time = sp;
                let local = select_ge(&acc, th);
                metrics.local_nnz = Some(local.nnz());

                let sum = topk_allgather_allreduce(comm, local.clone());
                metrics.global_nnz = Some(sum.nnz());
                let contributed = local.indexes().to_vec();
                self.update_residual(&acc, &contributed);
                let mut avg = sum;
                avg.scale(1.0 / p);
                (Update::Sparse(avg), metrics)
            }
            Scheme::OkTopk | Scheme::HierOkTopk => {
                let size = comm.size();
                let rank = comm.rank();
                let rpn =
                    if self.scheme == Scheme::HierOkTopk { self.rpn.clamp(1, size) } else { 1 };
                let sgd = self.oktopk.as_mut().expect("Ok-Topk state present");
                if rpn == 1 || size == 1 {
                    // Flat Ok-Topk — also the hierarchical variant's degeneration
                    // when every rank is its own node leader.
                    // Threshold re-evaluation iterations pay the exact selection;
                    // all others pay one threshold scan (§3.1.3).
                    let t_next = sgd.iteration() + 1;
                    let reeval = sgd.allreduce_state().is_reeval_iteration(t_next);
                    let sp = if reeval {
                        // Local exact threshold over n + global exact threshold
                        // over the gathered ≈2k reduced values.
                        self.cost.topk_exact(self.n) + self.cost.topk_launch
                    } else {
                        self.cost.scan(self.n, 1)
                    };
                    comm.compute(sp);
                    metrics.sparsify_time = sp;

                    let step = sgd.step(comm, grad, scale);
                    metrics.local_nnz = Some(step.meta.local_nnz);
                    metrics.global_nnz = Some(step.meta.global_nnz);
                    metrics.balanced = Some(step.meta.balanced);
                    (Update::Sparse(step.update), metrics)
                } else {
                    comm.set_phase("hier-oktopk");
                    let node = rank / rpn;
                    let lo = node * rpn;
                    let members: Vec<usize> = (lo..(lo + rpn).min(size)).collect();
                    let nodes = size.div_ceil(rpn);

                    // Phase 1 (intra): dense-reduce the raw gradients to the node
                    // leader. Error feedback lives at the leader — one residual
                    // and one re-selection point per node, so selection cost is
                    // paid per node, not per rank.
                    let mut node_sum = grad.to_vec();
                    {
                        let mut g = GroupComm::new(comm, members.clone(), node as u16);
                        reduce_to_root_dense(&mut g, &mut node_sum);
                    }

                    // Phase 2 (inter): the leader steps Ok-Topk over the leader
                    // group. Scaling by nodes/size turns the group's division by
                    // `nodes` into the exact global mean, partial last node
                    // included.
                    let leader_out = if rank == lo {
                        let t_next = sgd.iteration() + 1;
                        let reeval = sgd.allreduce_state().is_reeval_iteration(t_next);
                        let sp = if reeval {
                            self.cost.topk_exact(self.n) + self.cost.topk_launch
                        } else {
                            self.cost.scan(self.n, 1)
                        };
                        comm.compute(sp);
                        metrics.sparsify_time = sp;
                        let eff = scale * nodes as f32 / size as f32;
                        let mut g =
                            GroupComm::new(comm, (0..size).step_by(rpn).collect(), LEADER_GROUP);
                        Some(sgd.step(&mut g, &node_sum, eff))
                    } else {
                        None
                    };

                    // Phase 3 (intra): broadcast the update so every rank applies
                    // the same delta. The tiny meta triple rides free mode —
                    // pure instrumentation, not part of the algorithm.
                    comm.set_phase("hier-oktopk");
                    let meta3 = leader_out.as_ref().map(|s| {
                        vec![
                            s.meta.local_nnz as u32,
                            s.meta.global_nnz as u32,
                            s.meta.balanced as u32,
                        ]
                    });
                    let parts = leader_out.map(|s| s.update.into_parts());
                    let mut g = GroupComm::new(comm, members, node as u16);
                    let (idx, val) = broadcast(&mut g, 0, parts);
                    g.set_free_mode(true);
                    let meta3 = broadcast(&mut g, 0, meta3);
                    g.set_free_mode(false);
                    metrics.local_nnz = Some(meta3[0] as usize);
                    metrics.global_nnz = Some(meta3[1] as usize);
                    metrics.balanced = Some(meta3[2] != 0);
                    (Update::Sparse(CooGradient::from_sorted(idx, val)), metrics)
                }
            }
        }
    }

    /// Peek the accumulator Ok-Topk SGD would use this step (ξ instrumentation).
    pub fn peek_oktopk_accumulator(&self, grad: &[f32], scale: f32) -> Option<Vec<f32>> {
        self.oktopk.as_ref().map(|s| s.peek_accumulator(grad, scale))
    }

    fn accumulate(&mut self, grad: &[f32], scale: f32) -> Vec<f32> {
        self.residual.iter().zip(grad).map(|(&e, &g)| e + scale * g).collect()
    }

    fn update_residual(&mut self, acc: &[f32], contributed: &[u32]) {
        self.residual.copy_from_slice(acc);
        for &i in contributed {
            self.residual[i as usize] = 0.0;
        }
    }

    /// The exact top-k count a fresh selection on `values` would produce — used by
    /// instrumentation harnesses as the "accurate" reference of Fig. 6.
    pub fn accurate_count(values: &[f32], k: usize) -> usize {
        let th = exact_threshold(values, k);
        values.iter().filter(|&&v| v.abs() >= th && v != 0.0).count()
    }

    /// The residual ε of the sparse-baseline schemes (empty for dense and Ok-Topk,
    /// which keeps its own). Exposed for tests and checkpointing.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// L2 norm of the current error-feedback residual, whichever scheme holds
    /// it (Ok-Topk keeps its own; dense schemes have none, so 0). An
    /// observability convenience: the trainer charts this per step to confirm
    /// the residual mass stays bounded (Assumption 1's premise).
    pub fn residual_l2(&self) -> f64 {
        let r = match &self.oktopk {
            Some(s) => s.residual(),
            None => self.residual.as_slice(),
        };
        sparse::stats::l2_norm(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, CostModel};

    fn grads(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    #[test]
    fn dense_returns_exact_average() {
        let (p, n) = (4, 64);
        let gs = grads(p, n, 1);
        let report = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut r = Reducer::new(Scheme::Dense, n, 1.0, CostProfile::paper_calibrated(), 4, 4);
            match r.reduce(comm, &gs[comm.rank()], 0.1).0 {
                Update::Dense(avg) => avg,
                _ => panic!("dense scheme returns a dense update"),
            }
        });
        for i in 0..n {
            let want: f32 = (0..p).map(|r| gs[r][i]).sum::<f32>() / p as f32;
            assert!((report.results[0][i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn baseline_residuals_partition_the_accumulator() {
        // For TopkA: residual + selected = acc exactly, every iteration.
        let (p, n) = (3, 80);
        let gs = grads(p, n, 2);
        let report = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut r = Reducer::new(Scheme::TopkA, n, 0.1, CostProfile::paper_calibrated(), 4, 4);
            let me = comm.rank();
            let mut ok = true;
            let mut prev_residual = vec![0.0f32; n];
            for _ in 0..4 {
                let acc: Vec<f32> =
                    prev_residual.iter().zip(&gs[me]).map(|(&e, &g)| e + 0.1 * g).collect();
                let (_, m) = r.reduce(comm, &gs[me], 0.1);
                // Selected entries are zeroed; everything else survives verbatim.
                let k = m.local_nnz.expect("sparse scheme");
                let zeroed = r.residual().iter().filter(|&&v| v == 0.0).count();
                ok &= zeroed >= k;
                for i in 0..n {
                    ok &= r.residual()[i] == 0.0 || r.residual()[i] == acc[i];
                }
                prev_residual = r.residual().to_vec();
            }
            ok
        });
        assert!(report.results.iter().all(|&b| b));
    }

    #[test]
    fn gtopk_clears_only_globally_selected_residuals() {
        // gTopk discards information in the tree; entries sent but dropped must
        // REMAIN in the residual (intersection semantics).
        let (p, n) = (4, 60);
        let gs = grads(p, n, 3);
        let report = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut r = Reducer::new(Scheme::GTopk, n, 0.2, CostProfile::paper_calibrated(), 4, 4);
            let me = comm.rank();
            let (update, m) = r.reduce(comm, &gs[me], 1.0);
            let global = match update {
                Update::Sparse(u) => u,
                _ => panic!("sparse"),
            };
            // Residual zeros ⊆ global support.
            let support: std::collections::HashSet<u32> =
                global.indexes().iter().copied().collect();
            let mut ok = true;
            for (i, &v) in r.residual().iter().enumerate() {
                if v == 0.0 && gs[me][i] != 0.0 {
                    ok &= support.contains(&(i as u32));
                }
            }
            ok && m.global_nnz.expect("recorded") <= r.k()
        });
        assert!(report.results.iter().all(|&b| b));
    }

    #[test]
    fn gaussian_records_raw_prediction_and_meets_quota() {
        let (p, n) = (2, 500);
        let gs = grads(p, n, 4);
        let report = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut r =
                Reducer::new(Scheme::GaussianK, n, 0.05, CostProfile::paper_calibrated(), 4, 4);
            let (_, m) = r.reduce(comm, &gs[comm.rank()], 0.1);
            (m.gaussian_pred, m.local_nnz, r.k())
        });
        for (pred, local, k) in &report.results {
            assert!(pred.is_some());
            // The §5.4 scaling guarantees at least 3k/4 selected.
            assert!(local.expect("recorded") >= 3 * k / 4);
        }
    }

    #[test]
    fn quantized_topka_still_averages_correctly() {
        let (p, n) = (4, 128);
        let gs = grads(p, n, 5);
        let run = |quant: Option<sparse::quant::QuantMode>| {
            let gs = gs.clone();
            Cluster::new(p, CostModel::free()).run(move |comm| {
                let mut r =
                    Reducer::new(Scheme::TopkA, n, 0.2, CostProfile::paper_calibrated(), 4, 4);
                if let Some(m) = quant {
                    r = r.with_quantization(m);
                }
                match r.reduce(comm, &gs[comm.rank()], 1.0).0 {
                    Update::Sparse(u) => u.to_dense(n),
                    _ => panic!("sparse"),
                }
            })
        };
        let plain = run(None);
        let q16 = run(Some(sparse::quant::QuantMode::Q16));
        for (a, b) in plain.results[0].iter().zip(&q16.results[0]) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Run 3 reduce steps of `scheme` with an explicit ranks-per-node and
    /// return every rank's dense-materialized updates.
    fn run_hier_steps(scheme: Scheme, p: usize, rpn: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let gs = grads(p, n, seed);
        let report = Cluster::new(p, CostModel::aries()).run(move |comm| {
            let mut r = Reducer::new(scheme, n, 0.1, CostProfile::paper_calibrated(), 2, 2)
                .with_ranks_per_node(rpn);
            let mut out = Vec::new();
            for t in 0..3 {
                let g: Vec<f32> =
                    gs[comm.rank()].iter().map(|v| v * (1.0 + t as f32 * 0.3)).collect();
                match r.reduce(comm, &g, 0.1).0 {
                    Update::Dense(d) => out.extend(d),
                    Update::Sparse(u) => out.extend(u.to_dense(n)),
                }
            }
            out
        });
        report.results
    }

    #[test]
    fn hier_dense_matches_flat_dense_average() {
        // Same semantics, different summation order: agree to fp tolerance.
        for (p, rpn) in [(8usize, 4usize), (6, 4), (8, 2)] {
            let flat = run_hier_steps(Scheme::Dense, p, 1, 96, 7);
            let hier = run_hier_steps(Scheme::HierDense, p, rpn, 96, 7);
            for (a, b) in flat[0].iter().zip(&hier[0]) {
                assert!((a - b).abs() < 1e-4, "p={p} rpn={rpn}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn hier_schemes_degenerate_bitwise_at_rpn_1() {
        // With one rank per node every rank is a leader and the hierarchical
        // code paths ARE the flat ones — updates must be bit-identical.
        for (hier, flat) in [
            (Scheme::HierDense, Scheme::Dense),
            (Scheme::HierGTopk, Scheme::GTopk),
            (Scheme::HierOkTopk, Scheme::OkTopk),
        ] {
            let a = run_hier_steps(hier, 4, 1, 128, 9);
            let b = run_hier_steps(flat, 4, 1, 128, 9);
            assert_eq!(a, b, "{} vs {}", hier.name(), flat.name());
        }
    }

    #[test]
    fn hier_updates_identical_on_every_rank() {
        // All ranks must apply the same delta, including with a partial last node.
        for (p, rpn) in [(8usize, 4usize), (6, 4), (8, 8)] {
            for scheme in [Scheme::HierDense, Scheme::HierGTopk, Scheme::HierOkTopk] {
                let results = run_hier_steps(scheme, p, rpn, 128, 13);
                for r in &results[1..] {
                    assert_eq!(r, &results[0], "{} p={p} rpn={rpn}", scheme.name());
                }
            }
        }
    }

    #[test]
    fn hier_oktopk_matches_flat_on_identical_gradients() {
        // With every rank holding the same gradient, the node sums scaled by
        // nodes/size reproduce the flat accumulator exactly, so the leader
        // re-selection sees the same values the flat scheme does.
        let (p, rpn, n) = (8, 4, 200);
        let g = grads(1, n, 21).remove(0);
        let run = |scheme: Scheme, rpn: usize| {
            let g = g.clone();
            let report = Cluster::new(p, CostModel::free()).run(move |comm| {
                let mut r = Reducer::new(scheme, n, 0.1, CostProfile::paper_calibrated(), 2, 2)
                    .with_ranks_per_node(rpn);
                match r.reduce(comm, &g, 0.1).0 {
                    Update::Sparse(u) => u.to_dense(n),
                    _ => panic!("sparse"),
                }
            });
            report.results[0].clone()
        };
        let flat = run(Scheme::OkTopk, 1);
        let hier = run(Scheme::HierOkTopk, rpn);
        for (a, b) in flat.iter().zip(&hier) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sparsify_time_ordering_matches_paper() {
        // Exact-selection schemes pay more than Gaussiank, which pays more than a
        // steady-state Ok-Topk scan.
        let (p, n) = (2, 4096);
        let gs = grads(p, n, 6);
        let time_of = |scheme: Scheme, iters: usize| -> f64 {
            let gs = gs.clone();
            let report = Cluster::new(p, CostModel::free()).run(move |comm| {
                let mut r = Reducer::new(scheme, n, 0.02, CostProfile::paper_calibrated(), 64, 64);
                let mut last = 0.0;
                for _ in 0..iters {
                    let (_, m) = r.reduce(comm, &gs[comm.rank()], 0.1);
                    last = m.sparsify_time;
                }
                last
            });
            report.results[0]
        };
        let topka = time_of(Scheme::TopkA, 1);
        let gauss = time_of(Scheme::GaussianK, 1);
        let okt_steady = time_of(Scheme::OkTopk, 2); // iteration 2: reused threshold
        assert!(topka > gauss, "topka {topka} vs gauss {gauss}");
        assert!(gauss > okt_steady, "gauss {gauss} vs okt {okt_steady}");
    }
}
