//! Training checkpoints: a small self-describing binary format for model
//! parameters, optimizer state and sparse-SGD residuals.
//!
//! BERT pre-training in the paper runs for 400k iterations / 47–150 hours; any
//! production deployment of a scheme like Ok-Topk needs restartable state. The
//! residual ε is part of that state — dropping it on restart silently discards the
//! accumulated small-gradient mass — so the checkpoint carries it alongside the
//! parameters and the optimizer moments.
//!
//! Format (little-endian): magic `OKTK`, version `u32`, iteration `u64`,
//! section count `u32`, then per section a length `u64` and that many `f32`s;
//! trailed by an FNV-1a checksum `u64` over everything before it.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"OKTK";
const VERSION: u32 = 1;

/// A snapshot of everything needed to resume training bit-exactly.
///
/// Sections are free-form by convention: section 0 = model parameters, further
/// sections = optimizer buffers (SGD velocity, or Adam m and v) and the sparse
/// residual ε, in whatever order the caller packs them.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Training iteration at which the snapshot was taken.
    pub iteration: u64,
    /// The f32 state sections (parameters, optimizer buffers, residuals …).
    pub sections: Vec<Vec<f32>>,
}

/// FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// A writer that checksums everything passing through it.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Checkpoint {
    /// Snapshot with the given iteration and state sections.
    pub fn new(iteration: u64, sections: Vec<Vec<f32>>) -> Self {
        Self { iteration, sections }
    }

    /// Serialize to any writer.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut hw = HashingWriter { inner: w, hash: Fnv::new() };
        hw.write_all(MAGIC)?;
        hw.write_all(&VERSION.to_le_bytes())?;
        hw.write_all(&self.iteration.to_le_bytes())?;
        hw.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for s in &self.sections {
            hw.write_all(&(s.len() as u64).to_le_bytes())?;
            for v in s {
                hw.write_all(&v.to_le_bytes())?;
            }
        }
        let digest = hw.hash.0;
        hw.inner.write_all(&digest.to_le_bytes())?;
        hw.inner.flush()
    }

    /// Deserialize from any reader, verifying magic, version and checksum.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut hash = Fnv::new();
        let mut take = |buf: &mut [u8]| -> io::Result<()> {
            r.read_exact(buf)?;
            hash.update(buf);
            Ok(())
        };

        let mut magic = [0u8; 4];
        take(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an OKTK checkpoint"));
        }
        let mut u32b = [0u8; 4];
        take(&mut u32b)?;
        let version = u32::from_le_bytes(u32b);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let mut u64b = [0u8; 8];
        take(&mut u64b)?;
        let iteration = u64::from_le_bytes(u64b);
        take(&mut u32b)?;
        let n_sections = u32::from_le_bytes(u32b) as usize;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            take(&mut u64b)?;
            let len = u64::from_le_bytes(u64b) as usize;
            let mut bytes = vec![0u8; len * 4];
            take(&mut bytes)?;
            let section = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            sections.push(section);
        }
        let expected = hash.0;
        let mut digest = [0u8; 8];
        r.read_exact(&mut digest)?;
        if u64::from_le_bytes(digest) != expected {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "checkpoint checksum mismatch"));
        }
        Ok(Self { iteration, sections })
    }

    /// Save to a file (buffered).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(BufWriter::new(File::create(path)?))
    }

    /// Load from a file (buffered, verified).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint::new(
            12345,
            vec![vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], vec![], vec![9.0; 100]],
        )
    }

    #[test]
    fn roundtrip_in_memory() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).expect("write");
        let back = Checkpoint::read_from(buf.as_slice()).expect("read");
        assert_eq!(back, ck);
    }

    #[test]
    fn roundtrip_through_file() {
        let path = std::env::temp_dir().join(format!("okt_ckpt_{}.bin", std::process::id()));
        let ck = sample();
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ck);
    }

    #[test]
    fn corruption_is_detected() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).expect("write");
        // Flip one payload byte.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = Checkpoint::read_from(buf.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_magic_rejected() {
        let err = Checkpoint::read_from(&b"NOPE............"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_detected() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).expect("write");
        buf.truncate(buf.len() - 3);
        assert!(Checkpoint::read_from(buf.as_slice()).is_err());
    }

    /// Checkpoint/restore resumes Ok-Topk training bit-exactly: a run interrupted
    /// at iteration 5 and restored continues identically to an uninterrupted run.
    #[test]
    fn resume_is_bit_exact_for_oktopk_sgd() {
        use oktopk::{OkTopkConfig, OkTopkSgd};
        use simnet::{Cluster, CostModel};

        let (p, n, k) = (4usize, 128usize, 16usize);
        let grad_for = |t: usize, rank: usize| -> Vec<f32> {
            (0..n).map(|i| (((t * 31 + rank * 7 + i) % 17) as f32 - 8.0) * 0.1).collect()
        };

        // Uninterrupted reference: 10 steps.
        let reference = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            let mut w = vec![0.0f32; n];
            for t in 1..=10 {
                let step = sgd.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            w
        });

        // Interrupted run: 5 steps, checkpoint (params + residual), restore, 5 more.
        let resumed = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            let mut w = vec![0.0f32; n];
            for t in 1..=5 {
                let step = sgd.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            // Pack params, residual, and the reused threshold/boundary state.
            let (local_th, global_th, boundaries) = sgd.allreduce_state().export_state();
            let state_section = {
                let mut s = vec![local_th.unwrap_or(f32::NAN), global_th];
                s.extend(boundaries.iter().map(|&b| b as f32));
                s
            };
            let ck = Checkpoint::new(
                sgd.iteration() as u64,
                vec![w.clone(), sgd.residual().to_vec(), state_section],
            );
            let mut buf = Vec::new();
            ck.write_to(&mut buf).expect("write");
            let back = Checkpoint::read_from(buf.as_slice()).expect("read");

            let mut sgd2 = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            sgd2.restore(back.sections[1].clone(), back.iteration as usize);
            let st = &back.sections[2];
            let local = if st[0].is_nan() { None } else { Some(st[0]) };
            let bounds: Vec<u32> = st[2..].iter().map(|&b| b as u32).collect();
            sgd2.allreduce_state_mut().import_state(local, st[1], bounds);
            let mut w2 = back.sections[0].clone();
            for t in 6..=10 {
                let step = sgd2.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w2[i as usize] -= v;
                }
            }
            w2
        });

        // With the full state restored, the resumed run is bit-identical.
        for (wr, ws) in reference.results.iter().zip(&resumed.results) {
            assert_eq!(wr, ws, "resumed run must match the uninterrupted run exactly");
        }
    }

    /// The same resume property end-to-end through the filesystem and across a
    /// full cluster teardown: run A trains 5 steps and saves one checkpoint
    /// file per rank; a *separate* cluster run B loads the files and trains 5
    /// more, matching the uninterrupted reference bit-for-bit.
    #[test]
    fn resume_through_files_is_bit_exact_across_cluster_restarts() {
        use oktopk::{OkTopkConfig, OkTopkSgd};
        use simnet::{Cluster, CostModel};

        let (p, n, k) = (4usize, 128usize, 16usize);
        let grad_for = |t: usize, rank: usize| -> Vec<f32> {
            (0..n).map(|i| (((t * 31 + rank * 7 + i) % 17) as f32 - 8.0) * 0.1).collect()
        };
        let path_for = |rank: usize| {
            std::env::temp_dir().join(format!("okt_resume_{}_{rank}.bin", std::process::id()))
        };

        // Uninterrupted reference: 10 steps.
        let reference = Cluster::new(p, CostModel::free()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            let mut w = vec![0.0f32; n];
            for t in 1..=10 {
                let step = sgd.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            w
        });

        // Run A: 5 steps, then save params + residual + threshold state to disk.
        Cluster::new(p, CostModel::free()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            let mut w = vec![0.0f32; n];
            for t in 1..=5 {
                let step = sgd.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            let (local_th, global_th, boundaries) = sgd.allreduce_state().export_state();
            let mut state = vec![local_th.unwrap_or(f32::NAN), global_th];
            state.extend(boundaries.iter().map(|&b| b as f32));
            Checkpoint::new(sgd.iteration() as u64, vec![w, sgd.residual().to_vec(), state])
                .save(path_for(comm.rank()))
                .expect("save checkpoint");
        });

        // Run B: a fresh cluster restores every rank from its file and finishes.
        let resumed = Cluster::new(p, CostModel::free()).run(|comm| {
            let path = path_for(comm.rank());
            let back = Checkpoint::load(&path).expect("load checkpoint");
            std::fs::remove_file(&path).ok();
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(3, 3));
            sgd.restore(back.sections[1].clone(), back.iteration as usize);
            let st = &back.sections[2];
            let local = if st[0].is_nan() { None } else { Some(st[0]) };
            let bounds: Vec<u32> = st[2..].iter().map(|&b| b as u32).collect();
            sgd.allreduce_state_mut().import_state(local, st[1], bounds);
            let mut w = back.sections[0].clone();
            for t in 6..=10 {
                let step = sgd.step(comm, &grad_for(t, comm.rank()), 0.1);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            w
        });

        for (wr, ws) in reference.results.iter().zip(&resumed.results) {
            assert_eq!(wr, ws, "file-restored run must match the uninterrupted run exactly");
        }
    }
}
