//! The metrics registry: named counters, gauges, histograms and per-rank slots
//! with an atomic fast path and a cheap kill switch.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`], [`RankF64`], [`RankU64`])
//! are `Clone` and cheap to record through: one branch on the enabled flag,
//! then one atomic (or single-writer plain) update. The registry's lock is
//! taken only at handle creation and snapshot time, never on the record path.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 histogram buckets: bucket `b` holds values in
/// `[2^(b-1), 2^b)`, bucket 0 holds zero, bucket 64 holds the top of the u64
/// range.
const HIST_BUCKETS: usize = 65;

/// Determinism class of a metric — see the crate docs for the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// A function of modeled quantities only; bit-identical across engines.
    Virtual,
    /// Describes the simulating host; exempt from cross-engine parity.
    Host,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Virtual => "virtual",
            Class::Host => "host",
        }
    }
}

/// How a handle decides whether recording is on: fixed at registry creation
/// (per-run registries) or consulted dynamically (the process-global registry,
/// which must honor `set_enabled` flips made after its creation).
#[derive(Clone, Copy, Debug)]
enum OnState {
    Fixed(bool),
    Dynamic,
}

impl OnState {
    #[inline]
    fn on(self) -> bool {
        match self {
            OnState::Fixed(b) => b,
            OnState::Dynamic => crate::enabled(),
        }
    }
}

/// A monotonically increasing integer counter (atomic adds — commutative, so
/// totals are deterministic regardless of thread interleaving).
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: OnState,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.on() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A floating-point accumulator (CAS-add). Sums of f64 are only deterministic
/// when the addends arrive in a deterministic order, so `FCounter` is almost
/// always [`Class::Host`]; per-rank virtual-time sums belong in [`RankF64`].
#[derive(Clone)]
pub struct FCounter {
    bits: Arc<AtomicU64>,
    on: OnState,
}

impl FCounter {
    /// Add `v`.
    pub fn add(&self, v: f64) {
        if !self.on.on() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A high-watermark gauge (atomic max — commutative, deterministic).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    on: OnState,
}

impl Gauge {
    /// Raise the gauge to at least `v`.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.on.on() {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistInner {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of u64 samples: bucket 0 holds zeros, bucket `b`
/// holds `[2^(b-1), 2^b)`. Bucket counts and the sample sum are atomic adds,
/// so the aggregate is deterministic.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
    on: OnState,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.on.on() {
            return;
        }
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.inner.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }
}

/// Per-rank f64 slots with a **single-writer contract**: only rank `r` (its
/// thread) may write slot `r`, so plain load-add-store is race-free and the
/// per-rank sums are exactly the sums a serial execution would produce —
/// which is what makes virtual-time accumulators bit-identical across engines.
#[derive(Clone)]
pub struct RankF64 {
    slots: Arc<Vec<AtomicU64>>,
    on: OnState,
}

impl RankF64 {
    /// Add `v` to rank `rank`'s slot (single writer per slot).
    #[inline]
    pub fn add(&self, rank: usize, v: f64) {
        if self.on.on() {
            let slot = &self.slots[rank];
            let cur = f64::from_bits(slot.load(Ordering::Relaxed));
            slot.store((cur + v).to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise rank `rank`'s slot to at least `v` (single writer per slot).
    #[inline]
    pub fn set_max(&self, rank: usize, v: f64) {
        if self.on.on() {
            let slot = &self.slots[rank];
            let cur = f64::from_bits(slot.load(Ordering::Relaxed));
            if v > cur {
                slot.store(v.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Current value of rank `rank`'s slot.
    pub fn get(&self, rank: usize) -> f64 {
        f64::from_bits(self.slots[rank].load(Ordering::Relaxed))
    }
}

/// Per-rank u64 slots (atomic adds; safe even if the single-writer contract is
/// relaxed, e.g. a per-link byte matrix written by every sender row-wise).
#[derive(Clone)]
pub struct RankU64 {
    slots: Arc<Vec<AtomicU64>>,
    on: OnState,
}

impl RankU64 {
    /// Add `n` to slot `idx`.
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        if self.on.on() {
            self.slots[idx].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of slot `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.slots[idx].load(Ordering::Relaxed)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    FCounter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<HistInner>),
    RankF64(Arc<Vec<AtomicU64>>),
    RankU64(Arc<Vec<AtomicU64>>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::FCounter(_) => "fcounter",
            Slot::Gauge(_) => "gauge",
            Slot::Hist(_) => "histogram",
            Slot::RankF64(_) => "rank_f64",
            Slot::RankU64(_) => "rank_u64",
        }
    }
}

/// One named metrics namespace. Per-run registries are created with a fixed
/// enabled flag and a rank count; the process-global registry
/// ([`crate::global`]) consults [`crate::enabled`] dynamically.
pub struct Registry {
    enabled: OnState,
    ranks: usize,
    inner: Mutex<HashMap<String, (Class, Slot)>>,
}

impl Registry {
    /// A registry for a run of `ranks` ranks with recording fixed on or off.
    pub fn with_ranks(ranks: usize, enabled: bool) -> Self {
        Self { enabled: OnState::Fixed(enabled), ranks, inner: Mutex::new(HashMap::new()) }
    }

    /// The dynamic-enabled, rankless registry behind [`crate::global`].
    pub(crate) fn new_dynamic() -> Self {
        Self { enabled: OnState::Dynamic, ranks: 0, inner: Mutex::new(HashMap::new()) }
    }

    /// Whether handles from this registry record right now.
    pub fn enabled(&self) -> bool {
        self.enabled.on()
    }

    /// Number of ranks this registry's per-rank metrics cover.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn slot(
        &self,
        name: &str,
        class: Class,
        mk: impl FnOnce() -> Slot,
        want: &'static str,
    ) -> Slot {
        let mut inner = self.inner.lock();
        let (stored_class, slot) = inner.entry(name.to_string()).or_insert_with(|| (class, mk()));
        assert_eq!(
            slot.kind(),
            want,
            "metric {name:?} already registered as a {}, requested as a {want}",
            slot.kind()
        );
        assert_eq!(*stored_class, class, "metric {name:?} re-registered under a different class");
        match slot {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::FCounter(c) => Slot::FCounter(Arc::clone(c)),
            Slot::Gauge(c) => Slot::Gauge(Arc::clone(c)),
            Slot::Hist(h) => Slot::Hist(Arc::clone(h)),
            Slot::RankF64(s) => Slot::RankF64(Arc::clone(s)),
            Slot::RankU64(s) => Slot::RankU64(Arc::clone(s)),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        match self.slot(name, class, || Slot::Counter(Arc::new(AtomicU64::new(0))), "counter") {
            Slot::Counter(cell) => Counter { cell, on: self.enabled },
            _ => unreachable!(),
        }
    }

    /// Get or create the floating-point accumulator `name`.
    pub fn fcounter(&self, name: &str, class: Class) -> FCounter {
        match self.slot(name, class, || Slot::FCounter(Arc::new(AtomicU64::new(0))), "fcounter") {
            Slot::FCounter(bits) => FCounter { bits, on: self.enabled },
            _ => unreachable!(),
        }
    }

    /// Get or create the high-watermark gauge `name`.
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        match self.slot(name, class, || Slot::Gauge(Arc::new(AtomicU64::new(0))), "gauge") {
            Slot::Gauge(cell) => Gauge { cell, on: self.enabled },
            _ => unreachable!(),
        }
    }

    /// Get or create the log2-bucketed histogram `name`.
    pub fn histogram(&self, name: &str, class: Class) -> Histogram {
        let mk = || {
            Slot::Hist(Arc::new(HistInner {
                counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        };
        match self.slot(name, class, mk, "histogram") {
            Slot::Hist(inner) => Histogram { inner, on: self.enabled },
            _ => unreachable!(),
        }
    }

    /// Get or create per-rank f64 slots named `name` (one per rank).
    pub fn rank_f64(&self, name: &str, class: Class) -> RankF64 {
        assert!(self.ranks > 0, "per-rank metric {name:?} on a rankless registry");
        let ranks = self.ranks;
        let mk = || Slot::RankF64(Arc::new((0..ranks).map(|_| AtomicU64::new(0)).collect()));
        match self.slot(name, class, mk, "rank_f64") {
            Slot::RankF64(slots) => RankF64 { slots, on: self.enabled },
            _ => unreachable!(),
        }
    }

    /// Get or create u64 slots named `name` with an explicit slot count (pass
    /// the rank count for per-rank metrics, `P·P` for a per-link matrix).
    pub fn slots_u64(&self, name: &str, class: Class, len: usize) -> RankU64 {
        let mk = || Slot::RankU64(Arc::new((0..len).map(|_| AtomicU64::new(0)).collect()));
        match self.slot(name, class, mk, "rank_u64") {
            Slot::RankU64(slots) => {
                assert_eq!(slots.len(), len, "metric {name:?} re-registered with a new length");
                RankU64 { slots, on: self.enabled }
            }
            _ => unreachable!(),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut entries: Vec<SnapEntry> = inner
            .iter()
            .map(|(name, (class, slot))| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::FCounter(c) => {
                        MetricValue::FCounter(f64::from_bits(c.load(Ordering::Relaxed)))
                    }
                    Slot::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                    Slot::Hist(h) => MetricValue::Histogram {
                        count: h.total.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: h
                            .counts
                            .iter()
                            .enumerate()
                            .filter_map(|(b, c)| {
                                let c = c.load(Ordering::Relaxed);
                                (c > 0).then_some((b as u32, c))
                            })
                            .collect(),
                    },
                    Slot::RankF64(s) => MetricValue::PerRankF64(
                        s.iter().map(|b| f64::from_bits(b.load(Ordering::Relaxed))).collect(),
                    ),
                    Slot::RankU64(s) => MetricValue::PerRankU64(
                        s.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    ),
                };
                SnapEntry { name: name.clone(), class: *class, value }
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }

    /// Fold a finished run's snapshot into this registry (the process-global
    /// one): counters and histograms add, gauges take the max, per-rank arrays
    /// collapse into `<name>.sum` totals. Everything lands as [`Class::Host`]
    /// — process-lifetime totals depend on how many runs happened, not on
    /// modeled time.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for e in &snap.entries {
            match &e.value {
                MetricValue::Counter(v) => self.counter(&e.name, Class::Host).add(*v),
                MetricValue::FCounter(v) => self.fcounter(&e.name, Class::Host).add(*v),
                MetricValue::Gauge(v) => self.gauge(&e.name, Class::Host).set_max(*v),
                MetricValue::Histogram { count, sum, .. } => {
                    self.counter(&format!("{}.count", e.name), Class::Host).add(*count);
                    self.counter(&format!("{}.sum", e.name), Class::Host).add(*sum);
                }
                MetricValue::PerRankF64(v) => {
                    self.fcounter(&format!("{}.sum", e.name), Class::Host)
                        .add(v.iter().copied().sum());
                }
                MetricValue::PerRankU64(v) => {
                    self.counter(&format!("{}.sum", e.name), Class::Host)
                        .add(v.iter().copied().sum());
                }
            }
        }
    }
}

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Integer counter total.
    Counter(u64),
    /// Floating-point accumulator total.
    FCounter(f64),
    /// High-watermark gauge value.
    Gauge(u64),
    /// Histogram aggregate: sample count, sample sum, and the non-empty
    /// `(bucket, count)` pairs.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Non-empty `(log2 bucket, count)` pairs, bucket-ascending.
        buckets: Vec<(u32, u64)>,
    },
    /// Per-rank f64 slots, indexed by rank.
    PerRankF64(Vec<f64>),
    /// Per-slot u64 values (per-rank, or row-major per-link).
    PerRankU64(Vec<u64>),
}

#[derive(Clone, Debug, PartialEq)]
struct SnapEntry {
    name: String,
    class: Class,
    value: MetricValue,
}

/// An immutable, sorted snapshot of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<SnapEntry>,
}

/// Render an f64 as a JSON value (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Rust's shortest-roundtrip Display is already valid JSON for finite
        // values (no trailing dot, no leading plus).
        s
    } else {
        "null".to_string()
    }
}

impl MetricsSnapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.value)
    }

    /// Metric names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The [`Class::Virtual`] subset, canonicalized to bit patterns: f64 slots
    /// as raw bits, everything else as its integer value. Two runs whose
    /// virtual metrics are bit-identical produce equal parity views; this is
    /// what the engine-parity suite compares.
    pub fn parity_view(&self) -> Vec<(String, Vec<u64>)> {
        self.entries
            .iter()
            .filter(|e| e.class == Class::Virtual)
            .map(|e| {
                let bits = match &e.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => vec![*v],
                    MetricValue::FCounter(v) => vec![v.to_bits()],
                    MetricValue::Histogram { count, sum, buckets } => {
                        let mut v = vec![*count, *sum];
                        for (b, c) in buckets {
                            v.push(*b as u64);
                            v.push(*c);
                        }
                        v
                    }
                    MetricValue::PerRankF64(vals) => vals.iter().map(|v| v.to_bits()).collect(),
                    MetricValue::PerRankU64(vals) => vals.clone(),
                };
                (e.name.clone(), bits)
            })
            .collect()
    }

    /// Compact single-line JSON object: `{"name": {"class": …, …}, …}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"class\":\"{}\",",
                crate::json::quote(&e.name),
                e.class.name()
            ));
            match &e.value {
                MetricValue::Counter(v) => out.push_str(&format!("\"counter\":{v}")),
                MetricValue::FCounter(v) => out.push_str(&format!("\"fcounter\":{}", json_f64(*v))),
                MetricValue::Gauge(v) => out.push_str(&format!("\"gauge\":{v}")),
                MetricValue::Histogram { count, sum, buckets } => {
                    out.push_str(&format!("\"count\":{count},\"sum\":{sum},\"buckets\":["));
                    for (j, (b, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{b},{c}]"));
                    }
                    out.push(']');
                }
                MetricValue::PerRankF64(vals) => {
                    out.push_str("\"per_rank\":[");
                    for (j, v) in vals.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_f64(*v));
                    }
                    out.push(']');
                }
                MetricValue::PerRankU64(vals) => {
                    out.push_str("\"per_slot\":[");
                    for (j, v) in vals.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&v.to_string());
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// A human-readable summary table, one metric per line. Per-rank arrays
    /// summarize as `sum / max(rank)`; histograms as `count / sum`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0).max(6);
        out.push_str(&format!("{:width$}  {:7}  value\n", "metric", "class"));
        for e in &self.entries {
            let rendered = match &e.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::FCounter(v) => format!("{v:.6e}"),
                MetricValue::Gauge(v) => format!("max {v}"),
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                    format!("n={count} sum={sum} mean={mean:.1}")
                }
                MetricValue::PerRankF64(vals) => {
                    let sum: f64 = vals.iter().sum();
                    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let argmax = vals.iter().position(|&v| v == max).unwrap_or(0);
                    format!("sum={sum:.6e} max={max:.6e} @rank{argmax}")
                }
                MetricValue::PerRankU64(vals) => {
                    let sum: u64 = vals.iter().sum();
                    let max = vals.iter().copied().max().unwrap_or(0);
                    let argmax = vals.iter().position(|&v| v == max).unwrap_or(0);
                    format!("sum={sum} max={max} @slot{argmax}")
                }
            };
            out.push_str(&format!("{:width$}  {:7}  {rendered}\n", e.name, e.class.name()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        let reg = Registry::with_ranks(2, true);
        let c = reg.counter("sends", Class::Virtual);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("depth", Class::Host);
        g.set_max(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        let f = reg.fcounter("wall", Class::Host);
        f.add(0.5);
        f.add(0.25);
        assert_eq!(f.get(), 0.75);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::with_ranks(2, false);
        let c = reg.counter("sends", Class::Virtual);
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("elems", Class::Virtual);
        h.record(7);
        assert_eq!(h.count(), 0);
        let r = reg.rank_f64("wait", Class::Virtual);
        r.add(1, 2.0);
        assert_eq!(r.get(1), 0.0);
        assert!(reg.snapshot().parity_view().iter().all(|(_, bits)| bits.iter().all(|&b| b == 0)));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = Registry::with_ranks(1, true);
        let h = reg.histogram("elems", Class::Virtual);
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let snap = reg.snapshot();
        match snap.get("elems") {
            Some(MetricValue::Histogram { count, sum, buckets }) => {
                assert_eq!(*count, 5);
                assert_eq!(*sum, 1030);
                assert_eq!(buckets, &vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
            }
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn rank_slots_hold_per_rank_values() {
        let reg = Registry::with_ranks(3, true);
        let r = reg.rank_f64("wait", Class::Virtual);
        r.add(0, 1.5);
        r.add(2, 0.5);
        r.add(2, 0.25);
        assert_eq!(r.get(0), 1.5);
        assert_eq!(r.get(1), 0.0);
        assert_eq!(r.get(2), 0.75);
        let u = reg.slots_u64("bytes", Class::Virtual, 3);
        u.add(1, 40);
        assert_eq!(u.get(1), 40);
    }

    #[test]
    fn parity_view_is_virtual_only_and_bit_exact() {
        let reg = Registry::with_ranks(2, true);
        reg.counter("v.sends", Class::Virtual).add(3);
        reg.rank_f64("v.wait", Class::Virtual).add(1, 0.1);
        reg.counter("h.wall", Class::Host).add(99);
        let view = reg.snapshot().parity_view();
        let names: Vec<&str> = view.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["v.sends", "v.wait"]);
        assert_eq!(view[0].1, vec![3]);
        assert_eq!(view[1].1, vec![0.0f64.to_bits(), 0.1f64.to_bits()]);
    }

    #[test]
    fn snapshot_json_is_valid() {
        let reg = Registry::with_ranks(2, true);
        reg.counter("sends", Class::Virtual).add(3);
        reg.histogram("elems", Class::Virtual).record(100);
        reg.rank_f64("wait", Class::Virtual).add(0, 1.25);
        reg.gauge("depth", Class::Host).set_max(4);
        reg.fcounter("wall", Class::Host).add(2.5);
        let json = reg.snapshot().to_json();
        crate::json::validate(&json).expect("snapshot JSON must parse");
    }

    #[test]
    fn absorb_folds_totals_into_host_class() {
        let run = Registry::with_ranks(2, true);
        run.counter("sim.sends", Class::Virtual).add(5);
        run.rank_f64("sim.wait", Class::Virtual).add(0, 1.0);
        run.rank_f64("sim.wait", Class::Virtual).add(1, 2.0);
        let global = Registry::with_ranks(0, true);
        global.absorb(&run.snapshot());
        global.absorb(&run.snapshot());
        let snap = global.snapshot();
        assert_eq!(snap.get("sim.sends"), Some(&MetricValue::Counter(10)));
        assert_eq!(snap.get("sim.wait.sum"), Some(&MetricValue::FCounter(6.0)));
        assert!(snap.parity_view().is_empty(), "absorbed metrics are all Host");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = Registry::with_ranks(1, true);
        reg.counter("x", Class::Virtual);
        reg.gauge("x", Class::Virtual);
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let reg = Registry::with_ranks(2, true);
        reg.counter("a.sends", Class::Virtual).add(3);
        reg.rank_f64("b.wait", Class::Virtual).add(1, 2.0);
        let table = reg.snapshot().render_table();
        assert!(table.contains("a.sends"));
        assert!(table.contains("b.wait"));
        assert!(table.contains("@rank1"));
    }
}
