//! Structured spans: nested, labeled intervals carrying virtual start/end
//! times plus the wall-clock cost of the simulating host.
//!
//! Spans subsume the flat `TraceEvent` stream: where a trace event records
//! *what the modeled rank was doing*, a span records *which algorithm phase it
//! was inside* — and, because it also measures host wall time, it separates
//! modeled cost from simulator overhead (the profiling hook the P = 2048
//! run-token hand-off investigation needs).

use std::borrow::Cow;
use std::time::Instant;

/// One closed span on one rank's timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Phase label (static or dynamically built).
    pub name: Cow<'static, str>,
    /// Modeled start time, seconds. Deterministic ([`crate::Class::Virtual`]).
    pub vstart: f64,
    /// Modeled end time, seconds. Deterministic.
    pub vend: f64,
    /// Nesting depth at entry (0 = outermost).
    pub depth: usize,
    /// Wall-clock nanoseconds the simulating host spent inside the span.
    /// Host-class: never compared across engines.
    pub wall_ns: u64,
}

/// A per-rank stack of open spans. Not thread-safe by design — each rank owns
/// its stack, mirroring the single-writer rule that keeps virtual metrics
/// deterministic.
#[derive(Default)]
pub struct SpanStack {
    open: Vec<(Cow<'static, str>, f64, usize, Instant)>,
    done: Vec<SpanEvent>,
}

impl SpanStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span named `name` at virtual time `vnow`.
    pub fn enter(&mut self, name: impl Into<Cow<'static, str>>, vnow: f64) {
        let depth = self.open.len();
        self.open.push((name.into(), vnow, depth, Instant::now()));
    }

    /// Close the innermost open span at virtual time `vnow`.
    ///
    /// # Panics
    /// Panics if no span is open — enter/exit must nest.
    pub fn exit(&mut self, vnow: f64) {
        let (name, vstart, depth, wall_start) =
            self.open.pop().expect("span exit without a matching enter");
        self.done.push(SpanEvent {
            name,
            vstart,
            vend: vnow.max(vstart),
            depth,
            wall_ns: wall_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        });
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Take all closed spans, in close order. Open spans stay open.
    pub fn drain(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        let mut s = SpanStack::new();
        s.enter("outer", 0.0);
        s.enter("inner", 1.0);
        assert_eq!(s.depth(), 2);
        s.exit(2.0);
        s.exit(3.0);
        let spans = s.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!((spans[0].vstart, spans[0].vend, spans[0].depth), (1.0, 2.0, 1));
        assert_eq!(spans[1].name, "outer");
        assert_eq!((spans[1].vstart, spans[1].vend, spans[1].depth), (0.0, 3.0, 0));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn dynamic_names_are_accepted() {
        let mut s = SpanStack::new();
        let bucket = 3;
        s.enter(format!("bucket-{bucket}"), 0.0);
        s.exit(1.0);
        assert_eq!(s.drain()[0].name, "bucket-3");
    }

    #[test]
    fn vend_clamps_to_vstart() {
        let mut s = SpanStack::new();
        s.enter("x", 5.0);
        s.exit(4.0); // caller moved time backwards; clamp, don't invert
        assert_eq!(s.drain()[0].vend, 5.0);
    }

    #[test]
    #[should_panic(expected = "without a matching enter")]
    fn unbalanced_exit_panics() {
        SpanStack::new().exit(0.0);
    }
}
