//! Chrome/Perfetto `trace_events` JSON writer.
//!
//! Emits the subset of the [Trace Event Format] the simulation exporters use:
//! complete events (`ph: "X"`), instant events (`ph: "i"`) and the metadata
//! events that name processes and threads. Load the output at `ui.perfetto.dev`
//! or `chrome://tracing`.
//!
//! Conventions used by the simnet exporter: one *pid per rank*, thread 0 for
//! the flat activity trace, thread 1 for structured spans; the engine
//! scheduler gets its own pid, and chaos windows land as instant events.
//! Timestamps are microseconds — virtual seconds are scaled by 10⁶.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::quote;

/// A typed argument value attached to an event's `args` object.
#[derive(Clone, Debug)]
pub enum Arg {
    /// A string argument.
    Str(String),
    /// An integer argument.
    U64(u64),
    /// A floating-point argument (non-finite renders as `null`).
    F64(f64),
}

impl Arg {
    fn render(&self) -> String {
        match self {
            Arg::Str(s) => quote(s),
            Arg::U64(v) => v.to_string(),
            Arg::F64(v) if v.is_finite() => format!("{v}"),
            Arg::F64(_) => "null".to_string(),
        }
    }
}

fn render_args(args: &[(&str, Arg)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", quote(k), v.render()));
    }
    out.push('}');
    out
}

/// Incremental builder for one `trace_events` document.
#[derive(Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events queued so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name process `pid` (metadata event `process_name`).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":{}}}}}",
            quote(name)
        ));
    }

    /// Order process `pid` in the viewer (metadata event `process_sort_index`).
    pub fn process_sort_index(&mut self, pid: u64, index: i64) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_sort_index\",\
             \"args\":{{\"sort_index\":{index}}}}}"
        ));
    }

    /// Name thread `tid` of process `pid` (metadata event `thread_name`).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            quote(name)
        ));
    }

    /// A complete event (`ph: "X"`): `name` on `pid`/`tid` from `ts_us` for
    /// `dur_us` microseconds, with optional `args`.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, Arg)],
    ) {
        // Sanitize: trace viewers reject NaN; clamp negative durations to 0.
        let ts = if ts_us.is_finite() { ts_us.max(0.0) } else { 0.0 };
        let dur = if dur_us.is_finite() { dur_us.max(0.0) } else { 0.0 };
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\"dur\":{dur},\
             \"args\":{}}}",
            quote(name),
            render_args(args)
        ));
    }

    /// An instant event (`ph: "i"`, thread scope) at `ts_us`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, args: &[(&str, Arg)]) {
        let ts = if ts_us.is_finite() { ts_us.max(0.0) } else { 0.0 };
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\
             \"args\":{}}}",
            quote(name),
            render_args(args)
        ));
    }

    /// Finish the document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            out.push_str(if i + 1 < self.events.len() { ",\n" } else { "\n" });
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{validate, Json};

    #[test]
    fn emitted_trace_parses_and_has_the_schema() {
        let mut tb = TraceBuilder::new();
        tb.process_name(0, "rank 0");
        tb.thread_name(0, 0, "timeline");
        tb.complete(0, 0, "send → 1", 0.0, 12.5, &[("elems", Arg::U64(128))]);
        tb.instant(0, 0, "chaos: pause", 5.0, &[("window", Arg::Str("0.5..1".into()))]);
        let doc = tb.finish();
        let v = validate(&doc).expect("trace must be valid JSON");
        let events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        assert_eq!(events.len(), 4);
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
            assert!(e.get("pid").and_then(Json::as_f64).is_some());
            assert!(e.get("name").and_then(Json::as_str).is_some());
            if ph == "X" {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).is_some());
            }
        }
    }

    #[test]
    fn non_finite_and_negative_times_are_sanitized() {
        let mut tb = TraceBuilder::new();
        tb.complete(0, 0, "x", f64::NAN, -4.0, &[]);
        let doc = tb.finish();
        let v = validate(&doc).expect("sanitized trace parses");
        let e = &v.get("traceEvents").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(e.get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(e.get("dur").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = TraceBuilder::new().finish();
        let v = validate(&doc).expect("empty trace parses");
        assert_eq!(v.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }
}
