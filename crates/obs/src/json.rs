//! Minimal JSON utilities: string quoting for emitters and a strict
//! recursive-descent parser used to schema-check emitted documents in tests.
//!
//! The workspace builds offline with no serde; every emitter hand-rolls its
//! JSON, so this module is the one place that knows the escaping rules and can
//! verify a document actually parses.

use std::collections::BTreeMap;

/// Quote `s` as a JSON string literal (with surrounding quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects: `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse `input` as one JSON document; trailing non-whitespace is an error.
pub fn validate(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("number with no digits at byte {start}"));
    }
    // JSON forbids leading zeros like "01".
    let int_part = &b[start..*pos];
    let int_digits = if int_part[0] == b'-' { &int_part[1..] } else { int_part };
    if int_digits.len() > 1 && int_digits[0] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("missing fraction digits at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("missing exponent digits at byte {}", *pos));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs are accepted leniently: a lone
                        // surrogate renders as the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control byte 0x{c:02x} in string at {}", *pos))
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' but found {other:?} at {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}' but found {other:?} at {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": null, "d": true}, "e": "x\ny"}"#;
        let v = validate(doc).expect("valid");
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01", "\"\\q\"", "{} {}", "nulL", "1.e5"] {
            assert!(validate(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn quote_roundtrips_through_the_parser() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\t", "unicode Δ→∞", "\u{1}ctl"] {
            let quoted = quote(s);
            assert_eq!(validate(&quoted), Ok(Json::Str(s.to_string())), "roundtrip {s:?}");
        }
    }
}
