#![warn(missing_docs)]

//! # obs — deterministic, virtual-time-aware observability
//!
//! A shared instrumentation layer for every crate in the workspace: a metrics
//! registry (counters, gauges, log-bucketed histograms, per-rank slots), nested
//! structured spans, and exporters (Chrome/Perfetto `trace_events` JSON, a
//! compact metrics JSON snapshot, a text summary table).
//!
//! ## Determinism policy
//!
//! Every metric carries a [`Class`]:
//!
//! - [`Class::Virtual`] — the value is a function of modeled quantities only
//!   (virtual clocks, message sizes, chaos draws). Virtual metrics must be
//!   **bit-identical** across `SIMNET_ENGINE=thread|event` and across repeated
//!   runs; the engine-parity suite asserts this via
//!   [`MetricsSnapshot::parity_view`]. Recording paths achieve it with
//!   commutative integer updates (atomic adds, atomic maxima) and
//!   single-writer per-rank slots — never with anything that observes
//!   scheduling order.
//! - [`Class::Host`] — the value describes the *simulating host* (wall-clock
//!   durations, pool reservation races, scheduler token traffic, worker-pool
//!   activity). Host metrics are explicitly exempt from parity.
//!
//! ## Kill switch
//!
//! `OKTOPK_OBS=off` (or `0`/`false`) disables all recording; [`set_enabled`]
//! overrides the environment programmatically, and per-run consumers (e.g.
//! `simnet::Cluster::with_obs`) can force the choice for one run regardless of
//! the global state. A disabled handle costs one predictable branch per
//! record; the hotpath bench gates the enabled-vs-disabled overhead at ≤ 2%.

pub mod chrome;
pub mod json;
mod metrics;
mod span;

pub use metrics::{
    Class, Counter, FCounter, Gauge, Histogram, MetricValue, MetricsSnapshot, RankF64, RankU64,
    Registry,
};
pub use span::{SpanEvent, SpanStack};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Programmatic override of the `OKTOPK_OBS` kill switch:
/// 0 = none (defer to the environment), 1 = forced on, 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("OKTOPK_OBS") {
        Ok(raw) => !matches!(raw.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    })
}

/// Whether observability is globally enabled: the [`set_enabled`] override if
/// one is set, else the `OKTOPK_OBS` environment variable (default: on).
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Force observability on or off for the whole process, overriding
/// `OKTOPK_OBS`. Prefer per-run overrides (e.g. `Cluster::with_obs`) in tests
/// that run concurrently — this override is process-global.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drop the [`set_enabled`] override and defer to the environment again.
pub fn clear_enabled_override() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// The process-global registry: long-lived subsystems that outlive any single
/// simulation run (e.g. okpar's persistent worker pool) record here, and
/// per-run registries fold their totals in at run end so one snapshot can
/// summarize the whole process (see [`Registry::absorb`]). Every global metric
/// is [`Class::Host`] by convention — process-lifetime totals depend on how
/// many runs happened, not on modeled time.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new_dynamic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_on_and_override_wins() {
        // The test environment may or may not set OKTOPK_OBS; only assert the
        // override mechanics, then restore.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        clear_enabled_override();
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
