//! Compiled plans and per-rank views: the query interface simnet charges
//! virtual time through.

use crate::plan::{ChaosPlan, Perturbation, Window};
use crate::rng::hash_u01;
use std::sync::Arc;
use std::time::Duration;

struct LinkRule {
    src: Option<usize>,
    dst: Option<usize>,
    alpha_mult: f64,
    beta_mult: f64,
    window: Window,
}

struct JitterRule {
    src: Option<usize>,
    dst: Option<usize>,
    max_extra: f64,
    window: Window,
    /// Position in the plan, salted into each draw so overlapping jitter rules
    /// draw independently.
    salt: u64,
}

fn matches(endpoint: Option<usize>, rank: usize) -> bool {
    endpoint.is_none_or(|e| e == rank)
}

/// A [`ChaosPlan`] compiled for a fixed cluster size: per-rank straggler and
/// pause timelines plus link rules, immutable and shared by every rank.
pub struct CompiledChaos {
    size: usize,
    seed: u64,
    wall_hold: f64,
    /// Per-rank `(window, factor)` slowdowns.
    stragglers: Vec<Vec<(Window, f64)>>,
    /// Per-rank frozen intervals, sorted by start.
    pauses: Vec<Vec<Window>>,
    links: Vec<LinkRule>,
    jitters: Vec<JitterRule>,
}

impl CompiledChaos {
    pub(crate) fn build(plan: &ChaosPlan, size: usize) -> Self {
        assert!(size >= 1, "cluster size must be >= 1");
        let mut stragglers = vec![Vec::new(); size];
        let mut pauses: Vec<Vec<Window>> = vec![Vec::new(); size];
        let mut links = Vec::new();
        let mut jitters = Vec::new();
        let check = |rank: usize| {
            assert!(rank < size, "perturbation names rank {rank}, but the cluster has {size}");
        };
        for (i, p) in plan.perturbations().iter().enumerate() {
            match *p {
                Perturbation::Straggler { rank, factor, window } => {
                    check(rank);
                    stragglers[rank].push((window, factor));
                }
                Perturbation::Pause { rank, window } => {
                    check(rank);
                    pauses[rank].push(window);
                }
                Perturbation::LinkDegrade { src, dst, alpha_mult, beta_mult, window } => {
                    if let Some(r) = src {
                        check(r);
                    }
                    if let Some(r) = dst {
                        check(r);
                    }
                    links.push(LinkRule { src, dst, alpha_mult, beta_mult, window });
                }
                Perturbation::Jitter { src, dst, max_extra, window } => {
                    if let Some(r) = src {
                        check(r);
                    }
                    if let Some(r) = dst {
                        check(r);
                    }
                    jitters.push(JitterRule { src, dst, max_extra, window, salt: i as u64 });
                }
            }
        }
        for p in &mut pauses {
            p.sort_by(|a, b| a.start.total_cmp(&b.start));
        }
        Self {
            size,
            seed: plan.seed(),
            wall_hold: plan.wall_hold(),
            stragglers,
            pauses,
            links,
            jitters,
        }
    }

    /// Cluster size this plan was compiled for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_active(&self) -> bool {
        !self.links.is_empty()
            || !self.jitters.is_empty()
            || self.stragglers.iter().any(|s| !s.is_empty())
            || self.pauses.iter().any(|p| !p.is_empty())
    }

    /// If `t` falls inside a pause of `rank`, the resume time (looping until
    /// out of every overlapping pause); otherwise `t` unchanged.
    pub fn unpause(&self, rank: usize, t: f64) -> f64 {
        let mut t = t;
        loop {
            let mut moved = false;
            for w in &self.pauses[rank] {
                if w.contains(t) {
                    t = w.end;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The compute slowdown factor of `rank` at time `t` (product of active
    /// straggler windows; 1.0 when clean).
    pub fn factor_at(&self, rank: usize, t: f64) -> f64 {
        self.stragglers[rank].iter().filter(|(w, _)| w.contains(t)).map(|&(_, f)| f).product()
    }

    /// Next straggler-window edge or pause start strictly after `t` (∞ if none):
    /// the factor is constant on `[t, next_edge)`.
    fn next_edge(&self, rank: usize, t: f64) -> f64 {
        let mut edge = f64::INFINITY;
        for (w, _) in &self.stragglers[rank] {
            for b in [w.start, w.end] {
                if b > t && b < edge {
                    edge = b;
                }
            }
        }
        for w in &self.pauses[rank] {
            if w.start > t && w.start < edge {
                edge = w.start;
            }
        }
        edge
    }

    /// The virtual time at which a compute block of `nominal` modeled seconds,
    /// started by `rank` at `t0`, finishes under this plan — integrating the
    /// piecewise-constant slowdown and skipping pauses. With no active
    /// perturbation this is exactly `t0 + nominal`.
    pub fn advance_compute(&self, rank: usize, t0: f64, nominal: f64) -> f64 {
        let mut t = self.unpause(rank, t0);
        let mut work = nominal;
        loop {
            let f = self.factor_at(rank, t);
            let edge = self.next_edge(rank, t);
            if edge.is_infinite() {
                return t + work * f;
            }
            let cap = (edge - t) / f;
            if work <= cap {
                return t + work * f;
            }
            work -= cap;
            t = self.unpause(rank, edge);
        }
    }

    /// `(alpha_mult, beta_mult)` for a message injected on `src → dst` at `t`
    /// (product of matching active link rules; `(1, 1)` when clean).
    pub fn link_mults(&self, src: usize, dst: usize, t: f64) -> (f64, f64) {
        let mut a = 1.0;
        let mut b = 1.0;
        for rule in &self.links {
            if matches(rule.src, src) && matches(rule.dst, dst) && rule.window.contains(t) {
                a *= rule.alpha_mult;
                b *= rule.beta_mult;
            }
        }
        (a, b)
    }

    /// Extra head latency of the `seq`-th message on `src → dst` injected at
    /// `t`: sum over matching active jitter rules of a uniform `[0, max_extra)`
    /// draw keyed by `(seed, rule, src, dst, seq)`.
    pub fn jitter_extra(&self, src: usize, dst: usize, seq: u64, t: f64) -> f64 {
        let mut extra = 0.0;
        for rule in &self.jitters {
            if matches(rule.src, src) && matches(rule.dst, dst) && rule.window.contains(t) {
                extra +=
                    rule.max_extra * hash_u01(&[self.seed, rule.salt, src as u64, dst as u64, seq]);
            }
        }
        extra
    }

    /// All perturbation windows of the plan, for timeline rendering. Open
    /// windows report `end = ∞`; the renderer clamps them to its span.
    pub fn windows(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for per_rank in &self.stragglers {
            for (w, _) in per_rank {
                out.push((w.start, w.end));
            }
        }
        for per_rank in &self.pauses {
            for w in per_rank {
                out.push((w.start, w.end));
            }
        }
        for rule in &self.links {
            out.push((rule.window.start, rule.window.end));
        }
        for rule in &self.jitters {
            out.push((rule.window.start, rule.window.end));
        }
        out
    }

    /// Wall-clock sleep owed for crossing `span` virtual seconds of pause.
    pub fn wall_hold(&self, span: f64) -> Duration {
        Duration::from_secs_f64((span * self.wall_hold).max(0.0))
    }

    /// Upper bound on the total wall-clock time the plan's pauses can hold any
    /// rank: the sum of every pause span times the wall-hold scale. The simnet
    /// recv-deadlock watchdog adds this to its deadline so injected pauses are
    /// not misreported as deadlocks.
    pub fn extra_wall_budget(&self) -> Duration {
        let total: f64 =
            self.pauses.iter().flatten().map(|w| w.span()).sum::<f64>() * self.wall_hold;
        Duration::from_secs_f64(total.max(0.0))
    }
}

/// Everything one send needs to know about its perturbation.
#[derive(Clone, Copy, Debug)]
pub struct SendPerturb {
    /// Multiplier on the link α.
    pub alpha_mult: f64,
    /// Multiplier on the link β.
    pub beta_mult: f64,
    /// Extra head latency (seconds) drawn for this message.
    pub extra_latency: f64,
}

impl SendPerturb {
    /// Whether the send deviates from the clean α–β model at all.
    pub fn is_perturbed(&self) -> bool {
        self.alpha_mult != 1.0 || self.beta_mult != 1.0 || self.extra_latency > 0.0
    }
}

/// One rank's handle on a compiled plan: the shared immutable tables plus this
/// rank's per-destination send counters (which make jitter draws a function of
/// per-link program order, hence deterministic).
pub struct ChaosView {
    rank: usize,
    plan: Arc<CompiledChaos>,
    send_seq: Vec<u64>,
}

impl ChaosView {
    /// The view of `rank` on `plan`.
    pub fn new(plan: Arc<CompiledChaos>, rank: usize) -> Self {
        assert!(rank < plan.size(), "rank {rank} out of range for plan of size {}", plan.size());
        let size = plan.size();
        Self { rank, plan, send_seq: vec![0; size] }
    }

    /// The underlying compiled plan (e.g. for window rendering).
    pub fn plan(&self) -> &CompiledChaos {
        &self.plan
    }

    /// See [`CompiledChaos::unpause`] for this rank.
    pub fn unpause(&self, t: f64) -> f64 {
        self.plan.unpause(self.rank, t)
    }

    /// See [`CompiledChaos::advance_compute`] for this rank.
    pub fn advance_compute(&self, t0: f64, nominal: f64) -> f64 {
        self.plan.advance_compute(self.rank, t0, nominal)
    }

    /// Perturbation of the next message this rank injects toward `dst` at
    /// virtual time `t`. Consumes the per-destination sequence number.
    pub fn send_perturb(&mut self, dst: usize, t: f64) -> SendPerturb {
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        let (alpha_mult, beta_mult) = self.plan.link_mults(self.rank, dst, t);
        let extra_latency = self.plan.jitter_extra(self.rank, dst, seq, t);
        SendPerturb { alpha_mult, beta_mult, extra_latency }
    }

    /// Wall-clock sleep owed for crossing `span` virtual seconds of pause.
    pub fn wall_hold(&self, span: f64) -> Duration {
        self.plan.wall_hold(span)
    }

    /// See [`CompiledChaos::extra_wall_budget`].
    pub fn extra_wall_budget(&self) -> Duration {
        self.plan.extra_wall_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosPlan;

    #[test]
    fn clean_plan_is_identity() {
        let c = ChaosPlan::new(0).compile(4);
        assert!(!c.is_active());
        assert_eq!(c.advance_compute(2, 1.5, 3.0), 4.5);
        assert_eq!(c.unpause(0, 7.0), 7.0);
        assert_eq!(c.link_mults(0, 1, 0.0), (1.0, 1.0));
        assert_eq!(c.jitter_extra(0, 1, 0, 0.0), 0.0);
        assert_eq!(c.extra_wall_budget(), Duration::ZERO);
    }

    #[test]
    fn constant_straggler_scales_compute() {
        let c = ChaosPlan::new(0).straggler(1, 2.5).compile(2);
        assert_eq!(c.advance_compute(1, 0.0, 2.0), 5.0);
        // Other ranks unaffected.
        assert_eq!(c.advance_compute(0, 0.0, 2.0), 2.0);
    }

    #[test]
    fn windowed_straggler_integrates_piecewise() {
        // 3x slowdown inside [0.5, 1.0): a 1.0 s block from t=0 spends
        // 0.5 s clean, then 0.5/3 of work per... : remaining 0.5 of work needs
        // 0.5*3 = 1.5 s of window, but the window is only 0.5 s long, covering
        // 1/6 of work; the final 1/3 of work finishes clean after t=1.0.
        let c = ChaosPlan::new(0).straggler_window(0, 3.0, 0.5, 1.0).compile(1);
        let end = c.advance_compute(0, 0.0, 1.0);
        assert!((end - (4.0 / 3.0)).abs() < 1e-12, "end {end}");
        // A block entirely before the window is untouched.
        assert_eq!(c.advance_compute(0, 0.0, 0.25), 0.25);
        // A block entirely inside the window is fully scaled.
        let end = c.advance_compute(0, 0.5, 0.1);
        assert!((end - 0.8).abs() < 1e-12, "end {end}");
    }

    #[test]
    fn overlapping_stragglers_compose_multiplicatively() {
        let c = ChaosPlan::new(0)
            .straggler_window(0, 2.0, 0.0, 10.0)
            .straggler_window(0, 3.0, 0.0, 10.0)
            .compile(1);
        assert_eq!(c.factor_at(0, 1.0), 6.0);
        assert_eq!(c.advance_compute(0, 0.0, 1.0), 6.0);
    }

    #[test]
    fn pauses_freeze_and_resume() {
        let c = ChaosPlan::new(0).pause(0, 1.0, 2.0).compile(2);
        assert_eq!(c.unpause(0, 1.5), 3.0);
        assert_eq!(c.unpause(0, 0.99), 0.99);
        assert_eq!(c.unpause(0, 3.0), 3.0);
        // Compute crossing the pause: 0.5 s of work before, the rest after.
        assert_eq!(c.advance_compute(0, 0.5, 1.0), 3.5);
        // Back-to-back pauses chain.
        let c = ChaosPlan::new(0).pause(0, 1.0, 1.0).pause(0, 2.0, 1.0).compile(1);
        assert_eq!(c.unpause(0, 1.2), 3.0);
    }

    #[test]
    fn link_rules_match_wildcards_and_windows() {
        let c = ChaosPlan::new(0)
            .degrade_link(0, 1, 2.0, 4.0, 0.0, 1.0)
            .degrade_all_links(3.0, 1.0, 0.5, 2.0)
            .compile(3);
        assert_eq!(c.link_mults(0, 1, 0.0), (2.0, 4.0));
        assert_eq!(c.link_mults(0, 1, 0.75), (6.0, 4.0)); // both active
        assert_eq!(c.link_mults(0, 1, 1.5), (3.0, 1.0)); // only the wildcard
        assert_eq!(c.link_mults(2, 1, 0.0), (1.0, 1.0));
        assert_eq!(c.link_mults(2, 1, 0.6), (3.0, 1.0));
        assert_eq!(c.link_mults(0, 1, 2.5), (1.0, 1.0));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_sensitive() {
        let a = ChaosPlan::new(7).jitter(1e-3).compile(2);
        let b = ChaosPlan::new(7).jitter(1e-3).compile(2);
        let c = ChaosPlan::new(8).jitter(1e-3).compile(2);
        let mut differs = false;
        for seq in 0..64 {
            let xa = a.jitter_extra(0, 1, seq, 0.0);
            assert!((0.0..1e-3).contains(&xa));
            assert_eq!(xa, b.jitter_extra(0, 1, seq, 0.0));
            differs |= xa != c.jitter_extra(0, 1, seq, 0.0);
            // Direction matters: 0→1 and 1→0 draw independently.
            assert_ne!(xa, a.jitter_extra(1, 0, seq, 0.0));
        }
        assert!(differs, "different seeds must draw different jitter");
    }

    #[test]
    fn view_counts_sequence_per_destination() {
        let plan = Arc::new(ChaosPlan::new(3).jitter(1e-3).compile(3));
        let mut v = ChaosView::new(Arc::clone(&plan), 0);
        let first = v.send_perturb(1, 0.0).extra_latency;
        let second = v.send_perturb(1, 0.0).extra_latency;
        assert_ne!(first, second, "successive messages draw fresh jitter");
        // A fresh view replays the same sequence.
        let mut w = ChaosView::new(plan, 0);
        assert_eq!(w.send_perturb(1, 0.0).extra_latency, first);
        assert_eq!(w.send_perturb(1, 0.0).extra_latency, second);
    }

    #[test]
    fn wall_budget_sums_pause_spans() {
        let c =
            ChaosPlan::new(0).pause(0, 0.0, 2.0).pause(1, 1.0, 3.0).with_wall_hold(0.01).compile(2);
        assert_eq!(c.extra_wall_budget(), Duration::from_secs_f64(0.05));
        assert_eq!(c.wall_hold(2.0), Duration::from_secs_f64(0.02));
    }

    #[test]
    #[should_panic(expected = "names rank")]
    fn compile_validates_ranks() {
        let _ = ChaosPlan::new(0).straggler(4, 2.0).compile(4);
    }

    #[test]
    fn windows_are_reported_for_rendering() {
        let c = ChaosPlan::new(0).straggler_window(0, 2.0, 0.1, 0.2).pause(0, 0.3, 0.1).compile(1);
        let ws = c.windows();
        assert!(ws.contains(&(0.1, 0.2)));
        assert!(ws.contains(&(0.3, 0.4)));
    }
}
