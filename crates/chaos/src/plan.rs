//! Plan schema: typed perturbations on a virtual-time schedule.

use crate::compiled::CompiledChaos;

/// A half-open virtual-time interval `[start, end)` in modeled seconds.
/// `end = f64::INFINITY` means "until the end of the run".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Window {
    /// Window start (inclusive), modeled seconds.
    pub start: f64,
    /// Window end (exclusive), modeled seconds; may be `f64::INFINITY`.
    pub end: f64,
}

impl Window {
    /// The whole run: `[0, ∞)`.
    pub fn always() -> Self {
        Self { start: 0.0, end: f64::INFINITY }
    }

    /// A bounded window `[start, end)`.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(start >= 0.0 && start.is_finite(), "window start must be finite and >= 0");
        assert!(end > start, "window must be non-empty: [{start}, {end})");
        Self { start, end }
    }

    /// Whether virtual time `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// The window's length (`∞` for open windows).
    pub fn span(&self) -> f64 {
        self.end - self.start
    }
}

/// One typed perturbation of the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Perturbation {
    /// `rank`'s modeled compute runs `factor`× slower while `window` is active.
    Straggler {
        /// Affected rank.
        rank: usize,
        /// Compute-time multiplier (> 0; 2.0 = half speed).
        factor: f64,
        /// When the slowdown applies.
        window: Window,
    },
    /// The α/β of matching links are multiplied while `window` is active.
    /// `None` endpoints are wildcards, so `src: None, dst: None` degrades the
    /// whole fabric.
    LinkDegrade {
        /// Sending endpoint (`None` = any).
        src: Option<usize>,
        /// Receiving endpoint (`None` = any).
        dst: Option<usize>,
        /// Multiplier on the link's per-message latency α (> 0).
        alpha_mult: f64,
        /// Multiplier on the link's per-element time β (> 0).
        beta_mult: f64,
        /// When the degradation applies.
        window: Window,
    },
    /// Each message on a matching link picks up extra head latency drawn
    /// uniformly from `[0, max_extra)` seconds, deterministically from the plan
    /// seed and the message's per-link sequence number.
    Jitter {
        /// Sending endpoint (`None` = any).
        src: Option<usize>,
        /// Receiving endpoint (`None` = any).
        dst: Option<usize>,
        /// Upper bound of the uniform extra latency (seconds, >= 0).
        max_extra: f64,
        /// When the jitter applies (judged at injection start).
        window: Window,
    },
    /// `rank` freezes at `window.start` and resumes at `window.end`: no compute
    /// progresses and its NIC ports stay occupied for the duration.
    Pause {
        /// Affected rank.
        rank: usize,
        /// The frozen interval (must be bounded).
        window: Window,
    },
}

/// A seeded schedule of perturbations, built with a fluent API and compiled
/// once per cluster size into a [`CompiledChaos`].
///
/// ```
/// use chaos::ChaosPlan;
/// let plan = ChaosPlan::new(42)
///     .straggler(0, 3.0)                       // rank 0 computes 3x slower
///     .jitter(2e-6)                            // every message: up to 2 µs extra
///     .degrade_link(1, 2, 4.0, 4.0, 0.0, 0.5)  // link 1→2 is 4x worse until t=0.5s
///     .pause(3, 1.0, 0.25);                    // rank 3 freezes for 250 ms at t=1s
/// let compiled = plan.compile(4);
/// assert!(compiled.is_active());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    seed: u64,
    wall_hold: f64,
    perturbations: Vec<Perturbation>,
}

impl ChaosPlan {
    /// An empty plan with the given jitter seed. An empty plan is valid and
    /// perturbs nothing.
    pub fn new(seed: u64) -> Self {
        Self { seed, wall_hold: 0.0, perturbations: Vec::new() }
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled perturbations, in insertion order.
    pub fn perturbations(&self) -> &[Perturbation] {
        &self.perturbations
    }

    /// Whether the plan schedules no perturbations at all.
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// Append an arbitrary perturbation (the fluent helpers below cover the
    /// common shapes).
    pub fn push(mut self, p: Perturbation) -> Self {
        match &p {
            Perturbation::Straggler { factor, .. } => {
                assert!(*factor > 0.0 && factor.is_finite(), "straggler factor must be > 0");
            }
            Perturbation::LinkDegrade { alpha_mult, beta_mult, .. } => {
                assert!(*alpha_mult > 0.0 && *beta_mult > 0.0, "link multipliers must be > 0");
            }
            Perturbation::Jitter { max_extra, .. } => {
                assert!(*max_extra >= 0.0 && max_extra.is_finite(), "jitter bound must be >= 0");
            }
            Perturbation::Pause { window, .. } => {
                assert!(window.end.is_finite(), "pauses must be bounded (rank must resume)");
            }
        }
        self.perturbations.push(p);
        self
    }

    /// `rank` computes `factor`× slower for the whole run.
    pub fn straggler(self, rank: usize, factor: f64) -> Self {
        self.push(Perturbation::Straggler { rank, factor, window: Window::always() })
    }

    /// `rank` computes `factor`× slower inside `[start, end)`.
    pub fn straggler_window(self, rank: usize, factor: f64, start: f64, end: f64) -> Self {
        self.push(Perturbation::Straggler { rank, factor, window: Window::new(start, end) })
    }

    /// Degrade the `src → dst` link by `alpha_mult`/`beta_mult` inside
    /// `[start, end)`.
    pub fn degrade_link(
        self,
        src: usize,
        dst: usize,
        alpha_mult: f64,
        beta_mult: f64,
        start: f64,
        end: f64,
    ) -> Self {
        self.push(Perturbation::LinkDegrade {
            src: Some(src),
            dst: Some(dst),
            alpha_mult,
            beta_mult,
            window: Window::new(start, end),
        })
    }

    /// Degrade every link by `alpha_mult`/`beta_mult` inside `[start, end)`.
    pub fn degrade_all_links(self, alpha_mult: f64, beta_mult: f64, start: f64, end: f64) -> Self {
        self.push(Perturbation::LinkDegrade {
            src: None,
            dst: None,
            alpha_mult,
            beta_mult,
            window: Window::new(start, end),
        })
    }

    /// Add up-to-`max_extra` seconds of per-message latency jitter on every
    /// link, for the whole run.
    pub fn jitter(self, max_extra: f64) -> Self {
        self.push(Perturbation::Jitter {
            src: None,
            dst: None,
            max_extra,
            window: Window::always(),
        })
    }

    /// Per-message jitter on one link inside `[start, end)`.
    pub fn jitter_link(self, src: usize, dst: usize, max_extra: f64, start: f64, end: f64) -> Self {
        self.push(Perturbation::Jitter {
            src: Some(src),
            dst: Some(dst),
            max_extra,
            window: Window::new(start, end),
        })
    }

    /// Freeze `rank` for `duration` seconds starting at virtual time `start`.
    pub fn pause(self, rank: usize, start: f64, duration: f64) -> Self {
        assert!(duration > 0.0 && duration.is_finite(), "pause duration must be finite and > 0");
        self.push(Perturbation::Pause { rank, window: Window::new(start, start + duration) })
    }

    /// Give every injected pause a *wall-clock* component: a rank crossing a
    /// pause also sleeps `seconds_per_virtual_second × span` of real time,
    /// emulating a peer that genuinely goes quiet on the real channel. The
    /// simnet recv-deadlock watchdog budgets for the plan's total wall hold so
    /// a long chaos pause is not misreported as a deadlock.
    pub fn with_wall_hold(mut self, seconds_per_virtual_second: f64) -> Self {
        assert!(
            seconds_per_virtual_second >= 0.0 && seconds_per_virtual_second.is_finite(),
            "wall hold must be finite and >= 0"
        );
        self.wall_hold = seconds_per_virtual_second;
        self
    }

    /// The wall-clock seconds slept per virtual second of pause (default 0).
    pub fn wall_hold(&self) -> f64 {
        self.wall_hold
    }

    /// Compile for a cluster of `size` ranks, validating every referenced rank.
    ///
    /// # Panics
    /// If any perturbation names a rank `>= size`.
    pub fn compile(&self, size: usize) -> CompiledChaos {
        CompiledChaos::build(self, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_perturbations_in_order() {
        let plan = ChaosPlan::new(1).straggler(0, 2.0).jitter(1e-6).pause(1, 0.5, 0.5);
        assert_eq!(plan.perturbations().len(), 3);
        assert!(matches!(plan.perturbations()[0], Perturbation::Straggler { rank: 0, .. }));
        assert!(!plan.is_empty());
        assert!(ChaosPlan::new(9).is_empty());
    }

    #[test]
    fn windows_are_half_open() {
        let w = Window::new(1.0, 2.0);
        assert!(w.contains(1.0));
        assert!(w.contains(1.999));
        assert!(!w.contains(2.0));
        assert!(!w.contains(0.999));
        assert!(Window::always().contains(1e12));
    }

    #[test]
    #[should_panic(expected = "straggler factor")]
    fn zero_factor_is_rejected() {
        let _ = ChaosPlan::new(0).straggler(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bounded")]
    fn unbounded_pause_is_rejected() {
        let _ = ChaosPlan::new(0).push(Perturbation::Pause { rank: 0, window: Window::always() });
    }
}
