#![warn(missing_docs)]

//! # chaos — deterministic fault & perturbation injection for simnet
//!
//! The simulated network of this workspace is *perfect* by default: every rank
//! computes at the same speed and every link honors the calibrated α–β exactly.
//! Real clusters are not — stragglers, latency jitter and transient link
//! degradation dominate tail behavior. This crate describes such imperfections
//! as data: a [`ChaosPlan`] is a schedule of typed perturbations
//!
//! - **stragglers** — a rank's modeled compute runs `factor`× slower, constantly
//!   or inside a virtual-time window,
//! - **link degradation** — a link's (or every link's) α/β are multiplied inside
//!   a window,
//! - **latency jitter** — each message picks up extra head latency drawn from a
//!   seeded, hash-based RNG,
//! - **pauses** — a rank freezes entirely for an interval and resumes.
//!
//! A plan is *compiled* ([`ChaosPlan::compile`]) into an immutable
//! [`CompiledChaos`] shared by all ranks, from which each rank takes a
//! [`ChaosView`] holding its per-destination message counters. The simnet
//! communicator consults the view when charging virtual time.
//!
//! ## Determinism
//!
//! Everything is a pure function of `(plan, seed, rank, virtual time, per-link
//! message sequence number)`. Jitter uses a stateless splitmix64 hash, never a
//! stateful RNG shared across threads, so two runs of the same plan produce
//! bit-identical virtual-time trajectories regardless of thread scheduling —
//! the same guarantee simnet itself makes, extended to the perturbed network.

mod compiled;
mod plan;
mod rng;

pub use compiled::{ChaosView, CompiledChaos, SendPerturb};
pub use plan::{ChaosPlan, Perturbation, Window};
