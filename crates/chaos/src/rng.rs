//! Stateless, platform-independent randomness for jitter draws.
//!
//! A stateful RNG shared across rank threads would make draw order depend on
//! thread scheduling; hashing `(seed, rule, src, dst, sequence)` instead makes
//! every draw a pure function of program-order quantities.

/// One round of the splitmix64 output permutation.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a key tuple into a uniform draw in `[0, 1)` (53-bit mantissa).
pub(crate) fn hash_u01(parts: &[u64]) -> f64 {
    let mut h = 0x243F_6A88_85A3_08D3u64; // π digits: fixed, arbitrary offset
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_uniform_enough_and_in_range() {
        let mut sum = 0.0;
        for i in 0..1000u64 {
            let u = hash_u01(&[7, i]);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn draws_are_deterministic_and_key_sensitive() {
        assert_eq!(hash_u01(&[1, 2, 3]), hash_u01(&[1, 2, 3]));
        assert_ne!(hash_u01(&[1, 2, 3]), hash_u01(&[1, 2, 4]));
        assert_ne!(hash_u01(&[0, 2, 3]), hash_u01(&[1, 2, 3]));
    }
}
