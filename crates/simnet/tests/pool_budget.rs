//! Tracking-allocator audit for the cluster-wide idle-pool byte budget.
//!
//! A counting `#[global_allocator]` wraps the system allocator; a thread-local
//! flag arms the counter so only allocations made by the arming thread are
//! charged. Each rank body arms the counter on its *own* thread, so the audit
//! measures exactly the `take_f32`/`recycle_f32` hot path regardless of which
//! execution engine is scheduling the rank.
//!
//! Three claims, one per phase:
//! 1. with budget headroom, the steady-state take/recycle cycle is
//!    allocation-free (buffers revolve through the free-list);
//! 2. with a zero budget, *every* recycle is rejected and every take
//!    allocates fresh — the cap really does govern retention;
//! 3. a tight budget retains idle bytes only up to the cap, and taking a
//!    buffer back out returns its bytes to the budget.
//!
//! This file must stay a single-test binary: a sibling test on another thread
//! would not be charged, but keeping the binary minimal keeps the audit
//! airtight.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use simnet::{Cluster, CostModel};

struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const CAP: usize = 4096;
const ITERS: usize = 50;

/// Arm the counter, run `f`, disarm, and return how many allocations `f` made
/// on this thread.
fn counted<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (ALLOCS.with(|c| c.get()), r)
}

#[test]
fn pool_budget_governs_retention_and_steady_state_is_allocation_free() {
    // Phase 1: ample budget (the 64 MiB default dwarfs one 16 KiB buffer).
    // After one warm-up revolution the take/recycle cycle must never touch
    // the allocator: the budget bookkeeping is two atomics, not a heap op.
    let report = Cluster::new(1, CostModel::free()).run(|comm| {
        let warm = comm.take_f32(CAP);
        comm.recycle_f32(warm); // grows the free-list vec while unarmed
        let (allocs, _) = counted(|| {
            for i in 0..ITERS {
                let mut buf = comm.take_f32(CAP);
                buf.push(i as f32); // within capacity — must not realloc
                comm.recycle_f32(buf);
            }
        });
        (allocs, comm.pooled_bytes())
    });
    let (allocs, pooled) = report.results[0];
    assert_eq!(allocs, 0, "steady-state take/recycle made {allocs} heap allocations");
    assert_eq!(pooled, CAP * 4, "exactly one warm buffer should sit idle");

    // Phase 2: zero budget — recycling must reject every buffer, so every
    // take allocates fresh and nothing is ever retained.
    let report = Cluster::new(1, CostModel::free()).with_pool_budget(0).run(|comm| {
        let (allocs, _) = counted(|| {
            for _ in 0..ITERS {
                let buf = comm.take_f32(CAP);
                comm.recycle_f32(buf); // dropped: no budget to hold it
            }
        });
        (allocs, comm.pooled_bytes())
    });
    let (allocs, pooled) = report.results[0];
    assert!(allocs >= ITERS, "zero budget must force an allocation per take (saw {allocs})");
    assert_eq!(pooled, 0, "zero budget must retain nothing");

    // Phase 3: a budget of exactly two buffers. Recycling three retains two;
    // taking one back releases its bytes so one more recycle fits again.
    let budget = 2 * CAP * 4;
    let report = Cluster::new(1, CostModel::free()).with_pool_budget(budget).run(|comm| {
        let a = comm.take_f32(CAP);
        let b = comm.take_f32(CAP);
        let c = comm.take_f32(CAP);
        let caps = [a.capacity(), b.capacity(), c.capacity()];
        comm.recycle_f32(a);
        comm.recycle_f32(b);
        let after_two = comm.pooled_bytes();
        comm.recycle_f32(c); // over budget: dropped
        let after_three = comm.pooled_bytes();
        let back = comm.take_f32(CAP); // frees one slot in the budget
        let after_take = comm.pooled_bytes();
        comm.recycle_f32(back); // fits again
        let after_refill = comm.pooled_bytes();
        (caps, after_two, after_three, after_take, after_refill)
    });
    let (caps, after_two, after_three, after_take, after_refill) = report.results[0];
    let unit = caps[0] * 4;
    assert!(caps.iter().all(|&c| c == caps[0]), "equal-cap buffers expected: {caps:?}");
    assert_eq!(after_two, 2 * unit, "two buffers fit the budget");
    assert_eq!(after_three, 2 * unit, "the third must be dropped, not retained");
    assert!(after_three <= budget, "idle bytes exceeded the budget");
    assert_eq!(after_take, unit, "taking a buffer returns its bytes to the budget");
    assert_eq!(after_refill, 2 * unit, "freed budget must be reusable");
}
