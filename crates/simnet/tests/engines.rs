//! Cross-engine tests: the discrete-event engine must be a bit-identical
//! drop-in for the thread engine, plus event-engine-only regressions (exact
//! deadlock reports, recv-after-finish, bounded workers).

use simnet::{ChaosPlan, Cluster, CostModel, Engine, LedgerSnapshot, PhaseVolume, SchedMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Canonical, comparable form of a ledger snapshot.
fn ledger_canon(snap: &LedgerSnapshot, size: usize) -> Vec<((usize, String), PhaseVolume)> {
    let mut cells = Vec::new();
    for phase in snap.phases() {
        for rank in 0..size {
            let cell = snap.cell(rank, phase);
            if cell != PhaseVolume::default() {
                cells.push(((rank, phase.to_string()), cell));
            }
        }
    }
    cells
}

/// Run `f` under both engines and assert results, clocks and ledgers agree
/// bit-for-bit.
fn assert_parity<T, F>(mut mk: impl FnMut() -> Cluster, f: F) -> (Vec<T>, Vec<f64>)
where
    T: Clone + PartialEq + std::fmt::Debug + Send,
    F: Fn(&mut simnet::Comm) -> T + Send + Sync + Copy,
{
    let size = mk().size();
    // Force observability on: parity must also cover every Virtual-class
    // metric (recv-wait, tx/rx bytes, chaos counters, …), bit for bit.
    let thread = mk().with_obs(true).with_engine(Engine::Thread).run(f);
    let event = mk().with_obs(true).with_engine(Engine::Event).run(f);
    assert_eq!(thread.results, event.results, "per-rank results diverged across engines");
    assert_eq!(thread.times, event.times, "virtual clocks diverged across engines");
    assert_eq!(
        ledger_canon(&thread.ledger, size),
        ledger_canon(&event.ledger, size),
        "traffic ledgers diverged across engines"
    );
    assert_eq!(
        thread.metrics.parity_view(),
        event.metrics.parity_view(),
        "virtual-class metrics diverged across engines"
    );
    assert!(!thread.metrics.parity_view().is_empty(), "obs was forced on; metrics must exist");
    (event.results, event.times)
}

/// A messaging-heavy workload: rotated all-to-all with compute and barriers.
fn busy_workload(comm: &mut simnet::Comm) -> (u64, f64) {
    let me = comm.rank();
    let p = comm.size();
    let mut acc = 0u64;
    for round in 0..3usize {
        comm.compute(1e-4 * (me + 1) as f64);
        for step in 1..p {
            let dst = (me + step) % p;
            let payload: Vec<f32> =
                (0..16 + step).map(|i| (me * 131 + round * 17 + i) as f32).collect();
            comm.send(dst, round as u64, payload);
        }
        for step in 1..p {
            let src = (me + p - step) % p;
            let got: Vec<f32> = comm.recv(src, round as u64);
            for v in got {
                acc = acc.wrapping_mul(1099511628211).wrapping_add(v.to_bits() as u64);
            }
        }
        comm.barrier();
    }
    (acc, comm.now())
}

#[test]
fn engines_agree_on_messaging_compute_and_barriers() {
    assert_parity(|| Cluster::new(8, CostModel::aries()), busy_workload);
}

#[test]
fn engines_agree_under_a_chaos_plan() {
    // Stragglers, link windows, jitter and pauses all charge virtually; the
    // event engine skips only the *wall* holds, so modeled outcomes match.
    let plan = || {
        ChaosPlan::new(2024)
            .straggler(1, 2.0)
            .straggler_window(3, 1.5, 0.0, 0.5)
            .degrade_all_links(1.2, 1.5, 0.0, 0.2)
            .jitter(5e-5)
            .pause(2, 0.01, 0.05)
    };
    assert_parity(|| Cluster::new(6, CostModel::aries()).with_chaos(plan()), busy_workload);
}

#[test]
fn engines_agree_on_out_of_order_irecv_resolution() {
    // Rank 0 streams three tagged messages; rank 1 posts all three irecvs up
    // front and resolves them in reverse order. Port charging follows the
    // resolution order, which both engines must reproduce exactly.
    let workload = |comm: &mut simnet::Comm| {
        if comm.rank() == 0 {
            for tag in 0..3u64 {
                comm.send(1, tag, vec![tag as f32; 256 * (tag as usize + 1)]);
            }
            comm.now()
        } else {
            let r0 = comm.irecv::<Vec<f32>>(0, 0);
            let r1 = comm.irecv::<Vec<f32>>(0, 1);
            let r2 = comm.irecv::<Vec<f32>>(0, 2);
            comm.compute(1e-3);
            let c = comm.wait_recv(r2);
            let b = comm.wait_recv(r1);
            let a = comm.wait_recv(r0);
            assert_eq!((a.len(), b.len(), c.len()), (256, 512, 768));
            comm.now()
        }
    };
    assert_parity(|| Cluster::new(2, CostModel::aries()), workload);
}

#[test]
fn bounded_worker_counts_do_not_change_results() {
    // The run-token budget caps concurrency, never semantics: W=1 serializes
    // ranks completely, W=8 lets all of them fly, both must match the oracle.
    let reference =
        Cluster::new(8, CostModel::aries()).with_engine(Engine::Thread).run(busy_workload);
    for workers in [1usize, 2, 3, 8] {
        let report = Cluster::new(8, CostModel::aries())
            .with_engine(Engine::Event)
            .with_workers(workers)
            .run(busy_workload);
        assert_eq!(reference.results, report.results, "W={workers} changed results");
        assert_eq!(reference.times, report.times, "W={workers} changed clocks");
    }
}

#[test]
fn event_engine_reports_recv_cycles_exactly_and_instantly() {
    // A 3-cycle of receives with no sends: the thread engine would need a
    // watchdog timeout to notice; the event engine proves it from the empty
    // ready queue and names the cycle.
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(3, CostModel::free()).with_engine(Engine::Event).run(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let _: Vec<f32> = comm.recv(next, 7);
        })
    }));
    let msg = expect_panic(result, "a recv cycle must fail the run");
    assert!(msg.contains("simnet deadlock (exact)"), "unexpected report: {msg}");
    assert!(msg.contains("recv cycle:"), "report must name the cycle: {msg}");
    assert!(msg.contains("needs no watchdog"), "report must note exact detection: {msg}");
    // Exact detection needs no timeouts; generous bound for slow CI only.
    assert!(start.elapsed() < Duration::from_secs(30));
}

#[test]
fn event_engine_reports_recv_after_finish() {
    // Rank 1 returns without sending; rank 0 then blocks on it. The report
    // must say the peer already finished (a chain, not a cycle).
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(2, CostModel::free()).with_engine(Engine::Event).run(|comm| {
            if comm.rank() == 0 {
                let _: Vec<f32> = comm.recv(1, 0);
            }
        })
    }));
    let msg = expect_panic(result, "recv from a finished rank must fail the run");
    assert!(msg.contains("simnet deadlock (exact)"), "unexpected report: {msg}");
    assert!(msg.contains("already finished and will never send"), "unexpected report: {msg}");
}

#[test]
fn event_engine_rejects_send_to_finished_rank() {
    // W=1 pins the interleaving: rank 0 parks on the recv, rank 1 sends and
    // finishes (Done), then rank 0 resumes and sends into the void.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(2, CostModel::free()).with_engine(Engine::Event).with_workers(1).run(|comm| {
            if comm.rank() == 0 {
                let _: Vec<f32> = comm.recv(1, 0);
                comm.send(1, 1, vec![1.0f32]);
            } else {
                comm.send(0, 0, vec![0.0f32]);
            }
        })
    }));
    let msg = expect_panic(result, "send to a finished rank must fail the run");
    assert!(msg.contains("already finished"), "unexpected message: {msg}");
}

#[test]
fn event_engine_rank_panics_propagate_with_original_payload() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(4, CostModel::free()).with_engine(Engine::Event).run(|comm| {
            if comm.rank() == 2 {
                panic!("injected event-engine failure");
            }
            let _: Vec<f32> = comm.recv(2, 0); // blocks forever; must cascade
        })
    }));
    let msg = expect_panic(result, "a rank panic must fail the run");
    assert!(msg.contains("injected event-engine failure"), "wrong payload surfaced: {msg}");
}

#[test]
fn event_engine_serves_chaos_wall_holds_instantly() {
    // The plan demands a 5 s wall-clock hold. The thread engine would sleep;
    // the event engine charges the virtual pause and moves on.
    let start = Instant::now();
    let report = Cluster::new(2, CostModel::free())
        .with_engine(Engine::Event)
        .with_chaos(ChaosPlan::new(0).pause(0, 0.0, 0.4).with_wall_hold(5.0))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.compute(0.1);
                comm.send(1, 0, vec![1.0f32; 4]);
            } else {
                let v: Vec<f32> = comm.recv(0, 0);
                assert_eq!(v.len(), 4);
            }
            comm.now()
        });
    assert!((report.results[0] - 0.5).abs() < 1e-12, "{}", report.results[0]);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "event engine must not serve wall holds (took {:?})",
        start.elapsed()
    );
}

#[test]
fn event_engine_scales_to_many_ranks_with_small_stacks() {
    // A quick sanity run well above thread-engine comfort on small machines:
    // 256 ranks, 1 MiB stacks, a ring exchange plus a barrier.
    let p = 256;
    let report = Cluster::new(p, CostModel::aries())
        .with_engine(Engine::Event)
        .with_stack_bytes(1 << 20)
        .run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 0, vec![comm.rank() as f32; 32]);
            let got: Vec<f32> = comm.recv(left, 0);
            comm.barrier();
            got[0] as usize
        });
    let want: Vec<usize> = (0..p).map(|r| (r + p - 1) % p).collect();
    assert_eq!(report.results, want);
    assert_eq!(report.ledger.total_elements(), (p * 32) as u64);
}

/// Run `f` on the event engine under both dispatch paths (`SchedMode::Classic`
/// is the PR 7 kill switch, `SchedMode::Fast` the handoff/cohort/spin path)
/// and assert results, clocks, ledgers and virtual-class metrics agree bit for
/// bit at every worker count. The dispatch path decides only *who runs when on
/// the host*, never what the simulation computes.
fn assert_sched_parity<T, F>(mut mk: impl FnMut() -> Cluster, f: F)
where
    T: Clone + PartialEq + std::fmt::Debug + Send,
    F: Fn(&mut simnet::Comm) -> T + Send + Sync + Copy,
{
    let size = mk().size();
    for workers in [1usize, 2, 8] {
        let classic = mk()
            .with_obs(true)
            .with_engine(Engine::Event)
            .with_workers(workers)
            .with_sched(SchedMode::Classic)
            .run(f);
        let fast = mk()
            .with_obs(true)
            .with_engine(Engine::Event)
            .with_workers(workers)
            .with_sched(SchedMode::Fast)
            .run(f);
        assert_eq!(classic.results, fast.results, "W={workers}: results diverged across paths");
        assert_eq!(classic.times, fast.times, "W={workers}: clocks diverged across paths");
        assert_eq!(
            ledger_canon(&classic.ledger, size),
            ledger_canon(&fast.ledger, size),
            "W={workers}: ledgers diverged across paths"
        );
        assert_eq!(
            classic.metrics.parity_view(),
            fast.metrics.parity_view(),
            "W={workers}: virtual-class metrics diverged across paths"
        );
    }
}

#[test]
fn sched_paths_agree_on_messaging_compute_and_barriers() {
    assert_sched_parity(|| Cluster::new(8, CostModel::aries()), busy_workload);
}

#[test]
fn sched_paths_agree_under_a_chaos_plan() {
    let plan = || {
        ChaosPlan::new(2024)
            .straggler(1, 2.0)
            .straggler_window(3, 1.5, 0.0, 0.5)
            .degrade_all_links(1.2, 1.5, 0.0, 0.2)
            .jitter(5e-5)
            .pause(2, 0.01, 0.05)
    };
    assert_sched_parity(|| Cluster::new(6, CostModel::aries()).with_chaos(plan()), busy_workload);
}

#[test]
fn fast_path_reports_recv_cycles_exactly() {
    // The stale-entry machinery (targeted handoffs leave dead heap entries
    // behind) must not mask a real deadlock: the detector judges emptiness on
    // live entries only, and the report still walks and names the cycle.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(3, CostModel::free())
            .with_engine(Engine::Event)
            .with_sched(SchedMode::Fast)
            .run(|comm| {
                let next = (comm.rank() + 1) % comm.size();
                let _: Vec<f32> = comm.recv(next, 7);
            })
    }));
    let msg = expect_panic(result, "a recv cycle must fail the run under the fast path");
    assert!(msg.contains("simnet deadlock (exact)"), "unexpected report: {msg}");
    assert!(msg.contains("recv cycle:"), "report must name the cycle: {msg}");
}

#[test]
fn fast_path_reports_recv_after_finish() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(2, CostModel::free())
            .with_engine(Engine::Event)
            .with_sched(SchedMode::Fast)
            .run(|comm| {
                if comm.rank() == 0 {
                    let _: Vec<f32> = comm.recv(1, 0);
                }
            })
    }));
    let msg = expect_panic(result, "recv from a finished rank must fail under the fast path");
    assert!(msg.contains("already finished and will never send"), "unexpected report: {msg}");
}

#[test]
fn fast_path_rejects_send_to_finished_rank() {
    // The done flag moved to the per-rank inbox on the fast path; the panic
    // message must stay identical to the classic one.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(2, CostModel::free())
            .with_engine(Engine::Event)
            .with_sched(SchedMode::Fast)
            .with_workers(1)
            .run(|comm| {
                if comm.rank() == 0 {
                    let _: Vec<f32> = comm.recv(1, 0);
                    comm.send(1, 1, vec![1.0f32]);
                } else {
                    comm.send(0, 0, vec![0.0f32]);
                }
            })
    }));
    let msg = expect_panic(result, "send to a finished rank must fail under the fast path");
    assert!(msg.contains("already finished"), "unexpected message: {msg}");
}

#[test]
fn fast_path_survives_the_inline_continue_window() {
    // Lost-wakeup stress for the claim / `wake_pending` handshake: W=2 keeps
    // both ranks genuinely concurrent, zero compute makes sends land as often
    // as possible in the window between the receiver's wait registration and
    // its park. Any lost wakeup deadlocks (and the exact detector reports it);
    // any double wake corrupts the token protocol. Thousands of rounds of
    // bidirectional traffic must come out exact.
    let iters = 5000usize;
    let report = Cluster::new(2, CostModel::free())
        .with_obs(true)
        .with_engine(Engine::Event)
        .with_sched(SchedMode::Fast)
        .with_workers(2)
        .run(move |comm| {
            let me = comm.rank();
            let other = 1 - me;
            let mut acc = 0u64;
            for it in 0..iters {
                comm.send(other, it as u64, vec![(me * iters + it) as f32]);
                let got: Vec<f32> = comm.recv(other, it as u64);
                acc = acc.wrapping_mul(31).wrapping_add(got[0] as u64);
            }
            acc
        });
    let expect = |src: usize| {
        (0..iters).fold(0u64, |a, it| a.wrapping_mul(31).wrapping_add((src * iters + it) as u64))
    };
    assert_eq!(report.results, vec![expect(1), expect(0)]);
}

/// Unwrap a `catch_unwind` result that must be a panic, as a string message.
fn expect_panic<T>(result: Result<T, Box<dyn std::any::Any + Send>>, why: &str) -> String {
    match result {
        Ok(_) => panic!("{why}"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                panic!("panic payload was not a string");
            }
        }
    }
}
