//! Integration tests for chaos plans flowing through the simnet charging paths.

use simnet::{ChaosPlan, Cluster, CostModel, TraceKind};
use std::time::Duration;

fn unit_cost() -> CostModel {
    CostModel { alpha: 1.0, beta: 0.1, hierarchy: None }
}

#[test]
fn straggler_stretches_only_the_named_rank() {
    let run = |plan: Option<ChaosPlan>| {
        let mut cluster = Cluster::new(3, CostModel::free());
        if let Some(p) = plan {
            cluster = cluster.with_chaos(p);
        }
        cluster.run(|comm| {
            comm.compute(2.0);
            comm.now()
        })
    };
    let clean = run(None);
    let perturbed = run(Some(ChaosPlan::new(0).straggler(1, 3.0)));
    assert_eq!(clean.results, vec![2.0, 2.0, 2.0]);
    assert_eq!(perturbed.results, vec![2.0, 6.0, 2.0]);
}

#[test]
fn windowed_straggler_integrates_across_the_edge() {
    // 3x inside [0.5, 1.0): a 1.0 s block run from t=0 finishes at 4/3
    // (0.5 s clean, 0.5 s of window covering 1/6 of work, 1/3 clean after).
    let report = Cluster::new(1, CostModel::free())
        .with_chaos(ChaosPlan::new(0).straggler_window(0, 3.0, 0.5, 1.0))
        .run(|comm| {
            comm.compute(1.0);
            comm.now()
        });
    assert!((report.results[0] - 4.0 / 3.0).abs() < 1e-12, "{}", report.results[0]);
}

#[test]
fn pause_freezes_clock_and_nic_ports() {
    // Rank 0 pauses over [1.0, 1.5): compute starting at t=1.0 resumes at 1.5.
    let report = Cluster::new(1, CostModel::free())
        .with_chaos(ChaosPlan::new(0).pause(0, 1.0, 0.5))
        .run(|comm| {
            comm.enable_trace();
            comm.compute(1.0); // lands exactly on the pause start
            comm.compute(0.25); // gated: jumps to 1.5, then runs clean
            let trace = comm.take_trace();
            (comm.now(), trace)
        });
    let (now, trace) = &report.results[0];
    assert!((now - 1.75).abs() < 1e-12, "resumed at 1.5 then +0.25, got {now}");
    let pause =
        trace.iter().find(|e| e.kind == TraceKind::Pause).expect("pause interval must be traced");
    assert!(pause.perturbed);
    assert!((pause.start - 1.0).abs() < 1e-12 && (pause.end - 1.5).abs() < 1e-12);
}

#[test]
fn degraded_link_slows_both_endpoints_consistently() {
    // Link 0→1 gets 2x α and 5x β over the whole exchange. 10 elements:
    // clean recv completes at α + β·10 = 1 + 1 = 2; degraded at 2 + 5 = 7.
    let run = |degrade: bool| {
        let mut cluster = Cluster::new(2, unit_cost());
        if degrade {
            cluster = cluster.with_chaos(ChaosPlan::new(0).degrade_link(0, 1, 2.0, 5.0, 0.0, 1e9));
        }
        cluster.run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0.0f32; 10]);
                comm.local_finish_time()
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now()
            }
        })
    };
    let clean = run(false);
    assert!((clean.results[1] - 2.0).abs() < 1e-12, "{}", clean.results[1]);
    let slow = run(true);
    // Sender's injection port holds 5x longer too.
    assert!((slow.results[0] - 5.0).abs() < 1e-12, "{}", slow.results[0]);
    assert!((slow.results[1] - 7.0).abs() < 1e-12, "{}", slow.results[1]);
}

#[test]
fn jitter_delays_are_deterministic_and_seed_sensitive() {
    let run = |seed: u64| {
        Cluster::new(2, unit_cost()).with_chaos(ChaosPlan::new(seed).jitter(0.5)).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..4 {
                    comm.send(1, i, vec![0.0f32; 5]);
                }
                0.0
            } else {
                for i in 0..4 {
                    let _: Vec<f32> = comm.recv(0, i);
                }
                comm.now()
            }
        })
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.results, b.results, "same seed must replay bit-identically");
    let c = run(8);
    assert_ne!(a.results[1], c.results[1], "different seed must draw different jitter");
    // Jitter only ever adds latency.
    let clean = Cluster::new(2, unit_cost()).run(|comm| {
        if comm.rank() == 0 {
            for i in 0..4 {
                comm.send(1, i, vec![0.0f32; 5]);
            }
            0.0
        } else {
            for i in 0..4 {
                let _: Vec<f32> = comm.recv(0, i);
            }
            comm.now()
        }
    });
    assert!(a.results[1] >= clean.results[1]);
}

#[test]
fn paused_sender_with_wall_hold_does_not_trip_the_watchdog() {
    // Rank 0's pause holds the real channel for ~0.4 s of wall clock; rank 1's
    // recv deadline is only 100 ms. The watchdog budgets for the plan's wall
    // hold, so this must complete, not panic as a deadlock.
    let report = Cluster::new(2, CostModel::free())
        .with_recv_timeout(Duration::from_millis(100))
        .with_chaos(ChaosPlan::new(0).pause(0, 0.0, 0.4).with_wall_hold(1.0))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.compute(0.1); // gated by the pause: sleeps ~0.4 s wall
                comm.send(1, 0, vec![1.0f32; 4]);
                comm.now()
            } else {
                let v: Vec<f32> = comm.recv(0, 0);
                v.len() as f64
            }
        });
    assert_eq!(report.results[1], 4.0);
    assert!((report.results[0] - 0.5).abs() < 1e-12, "{}", report.results[0]);
}

#[test]
fn real_deadlocks_still_panic_under_a_chaos_plan() {
    // The pause budget must extend the deadline, not disable the watchdog.
    let start = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Cluster::new(2, CostModel::free())
            .with_recv_timeout(Duration::from_millis(100))
            .with_chaos(ChaosPlan::new(0).pause(0, 0.0, 0.2).with_wall_hold(1.0))
            .run(|comm| {
                if comm.rank() == 1 {
                    let _: Vec<f32> = comm.recv(0, 0); // never sent
                }
            })
    }));
    assert!(result.is_err(), "missing send must still panic");
    assert!(start.elapsed() < Duration::from_secs(30));
}

#[test]
fn empty_plan_changes_nothing() {
    let workload = |comm: &mut simnet::Comm| {
        comm.compute(0.5);
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(right, 0, vec![comm.rank() as f32; 64]);
        let v: Vec<f32> = comm.recv(left, 0);
        comm.barrier();
        (v[0], comm.now())
    };
    let clean = Cluster::new(4, unit_cost()).run(|c| workload(c));
    let chaotic = Cluster::new(4, unit_cost()).with_chaos(ChaosPlan::new(99)).run(|c| workload(c));
    assert_eq!(clean.results, chaotic.results, "empty plan must be bit-identical");
    assert_eq!(clean.times, chaotic.times);
}

#[test]
fn perturbed_events_are_tagged_and_clean_ones_are_not() {
    let report =
        Cluster::new(2, unit_cost()).with_chaos(ChaosPlan::new(0).straggler(0, 2.0)).run(|comm| {
            comm.enable_trace();
            comm.compute(1.0);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0.0f32; 8]);
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
            }
            comm.take_trace()
        });
    // Rank 0's compute is stretched, hence tagged.
    let compute0 =
        report.results[0].iter().find(|e| e.kind == TraceKind::Compute).expect("compute traced");
    assert!(compute0.perturbed);
    assert!((compute0.end - 2.0).abs() < 1e-12);
    // Rank 1's compute and recv are untouched (no link rule, no jitter).
    for e in &report.results[1] {
        assert!(!e.perturbed, "clean rank must carry no perturbed tags: {e:?}");
    }
}

#[test]
fn chaos_runs_are_deterministic_end_to_end() {
    let plan = || {
        ChaosPlan::new(1234)
            .straggler_window(1, 2.5, 0.0, 5.0)
            .degrade_all_links(1.5, 2.0, 0.1, 0.6)
            .jitter(1e-3)
            .pause(2, 0.2, 0.3)
    };
    let run = || {
        Cluster::new(4, unit_cost()).with_chaos(plan()).run(|comm| {
            for dst in 0..comm.size() {
                if dst != comm.rank() {
                    comm.send(dst, 3, vec![comm.rank() as f32; comm.rank() * 8 + 4]);
                }
            }
            let mut sum = 0.0f32;
            for src in 0..comm.size() {
                if src != comm.rank() {
                    let v: Vec<f32> = comm.recv(src, 3);
                    sum += v.iter().sum::<f32>();
                }
            }
            comm.barrier();
            (sum, comm.now())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.times, b.times);
}
