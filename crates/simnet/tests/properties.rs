//! Property tests for the simulated network substrate.

use proptest::prelude::*;
use simnet::{Cluster, CostModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An all-to-all exchange delivers every payload intact, for any cluster size and
    /// any payload sizes.
    #[test]
    fn all_to_all_delivers_everything(
        p in 2usize..7,
        sizes in proptest::collection::vec(0usize..50, 2..7),
    ) {
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let me = comm.rank();
            let len = sizes[me % sizes.len()];
            for dst in 0..comm.size() {
                if dst != me {
                    let payload: Vec<f32> = (0..len).map(|i| (me * 1000 + i) as f32).collect();
                    comm.send(dst, 42, payload);
                }
            }
            let mut ok = true;
            for src in 0..comm.size() {
                if src != me {
                    let got: Vec<f32> = comm.recv(src, 42);
                    let want_len = sizes[src % sizes.len()];
                    ok &= got.len() == want_len;
                    ok &= got.iter().enumerate().all(|(i, &v)| v == (src * 1000 + i) as f32);
                }
            }
            ok
        });
        prop_assert!(report.results.iter().all(|&ok| ok));
        // Ledger counted exactly the elements that crossed the wire.
        let expected: u64 = (0..p).map(|r| (sizes[r % sizes.len()] * (p - 1)) as u64).sum();
        prop_assert_eq!(report.ledger.total_elements(), expected);
    }

    /// Virtual clocks never go backwards and the makespan bounds every rank.
    #[test]
    fn clocks_are_monotone(p in 2usize..6, steps in 1usize..6) {
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut last = comm.now();
            let mut monotone = true;
            for s in 0..steps {
                let partner = (comm.rank() + 1 + s) % comm.size();
                if partner != comm.rank() {
                    let from = (comm.rank() + comm.size() - 1 - s % comm.size()) % comm.size();
                    // Everyone sends to its rotated partner, receives from its inverse.
                    comm.send(partner, s as u64, vec![1u32; s + 1]);
                    let _: Vec<u32> = comm.recv(from, s as u64);
                }
                comm.barrier();
                monotone &= comm.now() >= last;
                last = comm.now();
            }
            monotone
        });
        prop_assert!(report.results.iter().all(|&ok| ok));
        let makespan = report.makespan();
        prop_assert!(report.times.iter().all(|&t| t <= makespan + 1e-12));
    }

    /// Two identical runs produce bit-identical clocks and ledgers (determinism).
    #[test]
    fn runs_are_deterministic(p in 2usize..6, len in 1usize..64) {
        let cluster = Cluster::new(p, CostModel::commodity());
        let go = || cluster.run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let mut acc = vec![0.0f32; len];
            for _ in 0..3 {
                let got: Vec<f32> =
                    comm.sendrecv(right, 0, acc.clone(), left, 0);
                for (a, g) in acc.iter_mut().zip(&got) {
                    *a += g + 1.0;
                }
            }
            (acc, comm.now())
        });
        let a = go();
        let b = go();
        prop_assert_eq!(&a.results, &b.results);
        prop_assert_eq!(&a.times, &b.times);
    }
}
