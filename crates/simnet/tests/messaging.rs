//! Behavioral tests for the pooled-envelope message path: out-of-order
//! delivery, mailbox hygiene, nonblocking requests, and shared payloads.

use simnet::{Cluster, CostModel};

/// α=1, β=0.1 — round numbers so modeled times can be asserted exactly.
fn unit_cost() -> CostModel {
    CostModel { alpha: 1.0, beta: 0.1, hierarchy: None }
}

#[test]
fn out_of_order_tags_and_sources_demultiplex() {
    let report = Cluster::new(3, CostModel::free()).run(|comm| {
        match comm.rank() {
            0 => {
                for tag in [1u64, 2, 3] {
                    comm.send(2, tag, vec![tag as f32]);
                }
                vec![]
            }
            1 => {
                for tag in [4u64, 5] {
                    comm.send(2, tag, vec![10.0 + tag as f32]);
                }
                vec![]
            }
            _ => {
                // Receive interleaved across sources and in reverse tag order;
                // every early arrival passes through the mailbox.
                let mut got = Vec::new();
                for (src, tag) in [(1usize, 5u64), (0, 3), (1, 4), (0, 2), (0, 1)] {
                    let v: Vec<f32> = comm.recv(src, tag);
                    got.push(v[0]);
                }
                assert_eq!(
                    comm.pending_mailbox_entries(),
                    0,
                    "drained mailbox queues must be removed"
                );
                got
            }
        }
    });
    assert_eq!(report.results[2], vec![15.0, 3.0, 14.0, 2.0, 1.0]);
}

#[test]
fn mailbox_does_not_leak_drained_queues() {
    // Regression: `take_matching` used to leave an empty VecDeque in the map for
    // every (src, tag) pair ever stashed, growing without bound across steps.
    let report = Cluster::new(2, CostModel::free()).run(|comm| {
        if comm.rank() == 0 {
            for step in 0..64u64 {
                comm.send(1, step, vec![step as u32]);
            }
            0
        } else {
            // Pull a later tag first so every earlier message is stashed, then
            // drain them all.
            let _last: Vec<u32> = comm.recv(0, 63);
            assert_eq!(comm.pending_mailbox_entries(), 63);
            for step in 0..63u64 {
                let v: Vec<u32> = comm.recv(0, step);
                assert_eq!(v[0], step as u32);
            }
            comm.pending_mailbox_entries()
        }
    });
    assert_eq!(report.results[1], 0);
}

#[test]
fn sendrecv_is_self_consistent_at_p2() {
    let report = Cluster::new(2, unit_cost()).run(|comm| {
        let me = comm.rank();
        let peer = 1 - me;
        let got: Vec<f32> = comm.sendrecv(peer, 7, vec![me as f32; 10], peer, 7);
        (got[0], comm.now())
    });
    let (v0, t0) = report.results[0];
    let (v1, t1) = report.results[1];
    assert_eq!(v0, 1.0);
    assert_eq!(v1, 0.0);
    // Symmetric exchange: both ranks finish at the same modeled time,
    // head arrival (α=1) + body drain (10·β=1).
    assert_eq!(t0, t1);
    assert_eq!(t0, 2.0);
}

#[test]
fn irecv_overlap_beats_blocking_order() {
    let compute = 5.0;
    // Blocking order: recv, then compute.
    let blocking = Cluster::new(2, unit_cost()).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![1.0f32; 100]);
        } else {
            let _: Vec<f32> = comm.recv(0, 1);
            comm.compute(compute);
        }
        comm.now()
    });
    // Overlapped: post the receive, compute while the message drains, wait.
    let overlapped = Cluster::new(2, unit_cost()).run(|comm| {
        if comm.rank() == 0 {
            let h = comm.isend(1, 1, vec![1.0f32; 100]);
            assert_eq!(h.complete_at(), 10.0); // β·L = 0.1·100
            h.wait();
        } else {
            let req = comm.irecv::<Vec<f32>>(0, 1);
            comm.compute(compute);
            let got = comm.wait_recv(req);
            assert_eq!(got.len(), 100);
        }
        comm.now()
    });
    // recv completes at max(α, 0) + β·L = 11. Blocking: 11 + 5 = 16;
    // overlapped: max(5, 11) = 11.
    assert_eq!(blocking.results[1], 16.0);
    assert_eq!(overlapped.results[1], 11.0);
    assert!(
        overlapped.results[1] < blocking.results[1],
        "overlap must be strictly faster than the blocking equivalent"
    );
}

#[test]
fn irecv_then_immediate_wait_matches_blocking_recv() {
    let run = |nonblocking: bool| {
        Cluster::new(2, unit_cost()).run(move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![2.0f32; 64]);
                comm.now()
            } else {
                let v: Vec<f32> = if nonblocking {
                    let req = comm.irecv(0, 3);
                    comm.wait_recv(req)
                } else {
                    comm.recv(0, 3)
                };
                assert_eq!(v, vec![2.0; 64]);
                comm.now()
            }
        })
    };
    assert_eq!(run(true).results, run(false).results);
}

#[test]
fn test_recv_completes_only_when_drained() {
    let report = Cluster::new(2, unit_cost()).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 9, vec![7.0f32; 100]);
            0.0
        } else {
            let req = comm.irecv::<Vec<f32>>(0, 9);
            // Drain finishes at modeled t=11; at t=0 the test must not complete
            // and must not perturb any modeled state.
            let req = match comm.test_recv(req) {
                Ok(_) => panic!("message cannot have drained at t=0"),
                Err(req) => req,
            };
            assert_eq!(comm.now(), 0.0);
            comm.compute(20.0);
            match comm.test_recv(req) {
                Ok(v) => assert_eq!(v[0], 7.0),
                Err(_) => panic!("message has drained by t=20"),
            }
            comm.now()
        }
    });
    // The resolved receive (done t=11) does not move a clock already at t=20.
    assert_eq!(report.results[1], 20.0);
}

#[test]
fn shared_payloads_fan_out_and_charge_wire_cost() {
    let p = 4;
    let report = Cluster::new(p, unit_cost()).run(move |comm| {
        if comm.rank() == 0 {
            let buf = std::sync::Arc::new(vec![0.5f32; 50]);
            for dst in 1..p {
                comm.send_shared(dst, 2, buf.clone());
            }
            (0.0, comm.local_finish_time())
        } else {
            let got = comm.recv_shared::<Vec<f32>>(0, 2);
            (got[0], comm.now())
        }
    });
    // Root's injection port serializes 3 bodies of 5.0 each.
    assert_eq!(report.results[0].1, 15.0);
    for r in 1..p {
        assert_eq!(report.results[r].0, 0.5);
        assert!(report.results[r].1 > 0.0, "shared sends must still cost wire time");
    }
}

#[test]
fn pooled_buffers_are_recycled() {
    let report = Cluster::new(1, CostModel::free()).run(|comm| {
        let buf = comm.take_f32(128);
        let ptr = buf.as_ptr() as usize;
        comm.recycle_f32(buf);
        let again = comm.take_f32(64);
        assert!(again.is_empty() && again.capacity() >= 64);
        let reused = again.as_ptr() as usize == ptr;
        comm.recycle_f32(again);
        reused
    });
    assert!(report.results[0], "take after recycle must reuse the same allocation");
}
