//! Latency–bandwidth cost model and wire-size accounting.

/// Optional two-level network hierarchy: consecutive ranks share a node with a
/// faster intra-node link (NVLink/shared-memory class), while cross-node traffic
/// pays the base α/β. Lets topology effects be studied without leaving the α–β
/// framework (a step toward the paper's hybrid-parallelism future work, §6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hierarchy {
    /// Ranks `[i·r, (i+1)·r)` share node `i`.
    pub ranks_per_node: usize,
    /// Intra-node per-message latency (s).
    pub intra_alpha: f64,
    /// Intra-node per-element transfer time (s).
    pub intra_beta: f64,
}

/// Network/compute cost parameters for the simulation.
///
/// The communication part is the classic α–β model used throughout the paper
/// (§2, Table 1): a message of `L` elements costs `α + β·L`. One *element* is one
/// 4-byte word — an `f32` gradient value or a `u32` coordinate — matching the paper's
/// COO accounting where a k-sparse gradient occupies `2k` elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds (wire + software stack).
    pub alpha: f64,
    /// Per-element transfer time in seconds (4-byte words).
    pub beta: f64,
    /// Optional two-level topology; `None` models a flat network.
    pub hierarchy: Option<Hierarchy>,
}

impl CostModel {
    /// Cray-Aries-class calibration used for the paper-shaped experiments.
    ///
    /// * `alpha = 1.5 µs`: small-message latency through an MPI stack on Aries.
    /// * `beta = 4 ns/element`: ≈1 GB/s *effective* per-flow bandwidth for 4-byte
    ///   elements through a Python + mpi4py stack. This is deliberately effective
    ///   (not peak link) bandwidth: it makes a dense allreduce of a 27.5M-parameter
    ///   model cost ≈0.2 s, the same order as the paper's measured dense
    ///   communication time, so breakdown proportions land in the paper's regime.
    pub fn aries() -> Self {
        Self { alpha: 1.5e-6, beta: 4.0e-9, hierarchy: None }
    }

    /// Commodity-cloud calibration (≈25 µs latency, ≈100 MB/s effective bandwidth).
    /// The paper predicts its speedups grow on such networks; the ablation harness
    /// uses this preset to check that claim directionally.
    pub fn commodity() -> Self {
        Self { alpha: 25.0e-6, beta: 40.0e-9, hierarchy: None }
    }

    /// Zero-cost network; useful in tests that only check data correctness.
    pub fn free() -> Self {
        Self { alpha: 0.0, beta: 0.0, hierarchy: None }
    }

    /// Add a two-level hierarchy: `ranks_per_node` ranks share an intra-node link
    /// that is `speedup`× faster (both latency and bandwidth) than the base link.
    pub fn with_hierarchy(mut self, ranks_per_node: usize, speedup: f64) -> Self {
        assert!(ranks_per_node >= 1 && speedup >= 1.0);
        self.hierarchy = Some(Hierarchy {
            ranks_per_node,
            intra_alpha: self.alpha / speedup,
            intra_beta: self.beta / speedup,
        });
        self
    }

    /// (latency, per-element time) of the link between `src` and `dst`.
    pub fn link(&self, src: usize, dst: usize) -> (f64, f64) {
        if let Some(h) = &self.hierarchy {
            if src / h.ranks_per_node == dst / h.ranks_per_node {
                return (h.intra_alpha, h.intra_beta);
            }
        }
        (self.alpha, self.beta)
    }

    /// Modeled cost of one point-to-point message of `elems` elements (base link).
    pub fn msg_cost(&self, elems: u64) -> f64 {
        self.alpha + self.beta * elems as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::aries()
    }
}

/// Types that can be sent through [`crate::Comm`] must report their size in
/// 4-byte wire elements so the cost model can charge for them.
///
/// Implementations exist for the payload shapes the collectives use; downstream crates
/// implement it for their own message types (e.g. COO gradient chunks).
pub trait WireSize {
    /// Number of 4-byte elements this value occupies on the wire.
    fn wire_elems(&self) -> u64;
}

impl WireSize for () {
    fn wire_elems(&self) -> u64 {
        // Control message: header only; charged latency but no body.
        0
    }
}

impl WireSize for f32 {
    fn wire_elems(&self) -> u64 {
        1
    }
}

impl WireSize for u32 {
    fn wire_elems(&self) -> u64 {
        1
    }
}

impl WireSize for u64 {
    fn wire_elems(&self) -> u64 {
        2
    }
}

impl WireSize for f64 {
    fn wire_elems(&self) -> u64 {
        2
    }
}

impl WireSize for usize {
    fn wire_elems(&self) -> u64 {
        2
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_elems(&self) -> u64 {
        self.iter().map(WireSize::wire_elems).sum()
    }
}

impl<T: WireSize + ?Sized> WireSize for std::sync::Arc<T> {
    fn wire_elems(&self) -> u64 {
        (**self).wire_elems()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_elems(&self) -> u64 {
        match self {
            Some(v) => v.wire_elems(),
            None => 0,
        }
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_elems(&self) -> u64 {
        self.0.wire_elems() + self.1.wire_elems()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_elems(&self) -> u64 {
        self.0.wire_elems() + self.1.wire_elems() + self.2.wire_elems()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_cost_is_affine_in_size() {
        let m = CostModel { alpha: 1.0, beta: 0.5, hierarchy: None };
        assert_eq!(m.msg_cost(0), 1.0);
        assert_eq!(m.msg_cost(10), 6.0);
    }

    #[test]
    fn wire_sizes_match_coo_accounting() {
        // A k-sparse COO gradient = k values + k indexes = 2k elements.
        let values: Vec<f32> = vec![0.5; 100];
        let indexes: Vec<u32> = vec![7; 100];
        assert_eq!((values, indexes).wire_elems(), 200);
    }

    #[test]
    fn nested_and_optional_sizes() {
        let v: Vec<(u32, f32)> = vec![(1, 2.0), (3, 4.0)];
        assert_eq!(v.wire_elems(), 4);
        assert_eq!(Some(5u32).wire_elems(), 1);
        assert_eq!(None::<u32>.wire_elems(), 0);
        assert_eq!(().wire_elems(), 0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let a = CostModel::aries();
        let c = CostModel::commodity();
        assert!(a.alpha < c.alpha);
        assert!(a.beta < c.beta);
        assert_eq!(CostModel::free().msg_cost(1_000_000), 0.0);
    }
}
