//! Per-rank execution traces in virtual time, with a text timeline renderer.
//!
//! Enable with [`crate::Comm::enable_trace`]; every send, receive, compute block
//! and barrier is recorded with its modeled start/end times. The renderer draws an
//! ASCII Gantt chart — handy for seeing schedules like split-and-reduce's rotation
//! actually pipelining, without leaving the terminal.
//!
//! When a chaos plan is installed ([`crate::Cluster::with_chaos`]), events whose
//! timing was perturbed carry a `perturbed` tag and render as lowercase glyphs;
//! injected pauses appear as their own [`TraceKind::Pause`] intervals, and
//! [`render_timeline_with_chaos`] adds a header row marking the plan's windows.

/// What a rank was doing during one traced interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Injecting a message (occupies the send port).
    Send {
        /// Destination rank.
        dst: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Draining a message (occupies the receive port; includes waiting).
    Recv {
        /// Source rank.
        src: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Local computation charged via `compute`.
    Compute,
    /// Barrier synchronization (wait + latency).
    Barrier,
    /// An injected chaos pause: the rank was frozen by the plan.
    Pause,
}

/// One traced interval on one rank's virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Modeled start time (s).
    pub start: f64,
    /// Modeled end time (s).
    pub end: f64,
    /// Activity during the interval.
    pub kind: TraceKind,
    /// Whether an installed chaos plan perturbed this interval (stretched
    /// compute, degraded/jittered link, or pause-gated activity).
    pub perturbed: bool,
}

impl TraceEvent {
    /// Construct a clean event, checking (in debug builds) that the interval is
    /// well-formed: recording code must clamp `start` and `end` consistently.
    pub fn new(start: f64, end: f64, kind: TraceKind) -> Self {
        Self::tagged(start, end, kind, false)
    }

    /// Construct an event with an explicit perturbed tag; the same consistency
    /// debug-assert applies to perturbed pairs as to clean Recv pairs.
    pub fn tagged(start: f64, end: f64, kind: TraceKind, perturbed: bool) -> Self {
        debug_assert!(
            start <= end,
            "trace event with start {start} > end {end} ({kind:?}, perturbed {perturbed}): \
             clamp the pair consistently"
        );
        Self { start, end, kind, perturbed }
    }

    fn glyph(&self) -> char {
        let clean = match self.kind {
            TraceKind::Send { .. } => 'S',
            TraceKind::Recv { .. } => 'R',
            TraceKind::Compute => 'C',
            TraceKind::Barrier => 'B',
            TraceKind::Pause => 'P',
        };
        if self.perturbed && self.kind != TraceKind::Pause {
            clean.to_ascii_lowercase()
        } else {
            clean
        }
    }
}

const LEGEND: &str = "S=send R=recv C=compute B=barrier P=chaos-pause ·=idle; lowercase=perturbed";

fn span_of(traces: &[Vec<TraceEvent>]) -> f64 {
    traces.iter().flat_map(|t| t.iter().map(|e| e.end)).fold(0.0f64, f64::max).max(1e-12)
}

fn render_rows(out: &mut String, traces: &[Vec<TraceEvent>], width: usize, t_max: f64) {
    for (rank, events) in traces.iter().enumerate() {
        let mut row = vec!['·'; width];
        for e in events {
            let a = ((e.start / t_max) * width as f64).floor() as usize;
            // Zero-length intervals (instant barriers, empty pauses) would
            // otherwise have floor(a) == ceil(b) and vanish; paint ≥1 cell.
            let b = (((e.end / t_max) * width as f64).ceil() as usize).max(a + 1);
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = e.glyph();
            }
        }
        out.push_str(&format!("rank {rank:>3} |{}|\n", row.iter().collect::<String>()));
    }
}

/// Render per-rank traces as an ASCII Gantt chart of `width` columns spanning
/// `[0, t_max]`. Overlapping events on one rank keep the later glyph; idle time
/// renders as `·`.
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let t_max = span_of(traces);
    let mut out = String::new();
    out.push_str(&format!("timeline 0 .. {t_max:.3e} s  ({LEGEND})\n"));
    render_rows(&mut out, traces, width, t_max);
    out
}

/// Like [`render_timeline`], with an extra `chaos` header row marking the
/// injected perturbation windows `(start, end)` (e.g. from
/// `chaos::CompiledChaos::windows`) as `#`. Open windows (`end = ∞`) are
/// clamped to the traced span.
pub fn render_timeline_with_chaos(
    traces: &[Vec<TraceEvent>],
    width: usize,
    windows: &[(f64, f64)],
) -> String {
    let t_max = span_of(traces);
    let mut out = String::new();
    out.push_str(&format!("timeline 0 .. {t_max:.3e} s  ({LEGEND}; #=injected window)\n"));
    let mut row = vec!['·'; width];
    for &(start, end) in windows {
        let end = end.min(t_max);
        if end <= start {
            continue;
        }
        let a = ((start / t_max) * width as f64).floor() as usize;
        let b = ((end / t_max) * width as f64).ceil() as usize;
        for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
            *cell = '#';
        }
    }
    out.push_str(&format!("chaos    |{}|\n", row.iter().collect::<String>()));
    render_rows(&mut out, traces, width, t_max);
    out
}

/// Export per-rank traces, structured spans, scheduler decisions and chaos
/// windows as one Chrome/Perfetto `trace_events` JSON document.
///
/// Layout: one *pid per rank* with thread 0 carrying the flat activity
/// timeline and thread 1 the nested [`obs::SpanEvent`] spans; the event
/// engine's scheduler log gets its own pid (token grants and parks as instant
/// events), and chaos windows land as instants on a final "chaos" pid.
/// Virtual seconds map to microseconds (`ts = vsec × 10⁶`). Any of the
/// slices may be empty; the output is a valid document either way.
pub fn export_chrome(
    traces: &[Vec<TraceEvent>],
    spans: &[Vec<obs::SpanEvent>],
    sched: &[crate::engine::SchedEvent],
    windows: &[(f64, f64)],
) -> String {
    use obs::chrome::{Arg, TraceBuilder};
    const US: f64 = 1e6;
    let ranks = traces.len().max(spans.len());
    let mut tb = TraceBuilder::new();
    for rank in 0..ranks {
        let pid = rank as u64;
        tb.process_name(pid, &format!("rank {rank}"));
        tb.process_sort_index(pid, rank as i64);
        tb.thread_name(pid, 0, "timeline");
        if spans.get(rank).is_some_and(|s| !s.is_empty()) {
            tb.thread_name(pid, 1, "spans");
        }
    }
    for (rank, events) in traces.iter().enumerate() {
        let pid = rank as u64;
        for e in events {
            let (name, mut args): (String, Vec<(&str, Arg)>) = match e.kind {
                TraceKind::Send { dst, elems } => {
                    (format!("send → {dst}"), vec![("elems", Arg::U64(elems))])
                }
                TraceKind::Recv { src, elems } => {
                    (format!("recv ← {src}"), vec![("elems", Arg::U64(elems))])
                }
                TraceKind::Compute => ("compute".to_string(), vec![]),
                TraceKind::Barrier => ("barrier".to_string(), vec![]),
                TraceKind::Pause => ("chaos pause".to_string(), vec![]),
            };
            if e.perturbed {
                args.push(("perturbed", Arg::U64(1)));
            }
            tb.complete(pid, 0, &name, e.start * US, (e.end - e.start) * US, &args);
        }
    }
    for (rank, rank_spans) in spans.iter().enumerate() {
        let pid = rank as u64;
        for s in rank_spans {
            tb.complete(
                pid,
                1,
                &s.name,
                s.vstart * US,
                (s.vend - s.vstart) * US,
                &[("depth", Arg::U64(s.depth as u64)), ("host_wall_ns", Arg::U64(s.wall_ns))],
            );
        }
    }
    if !sched.is_empty() {
        let pid = ranks as u64;
        tb.process_name(pid, "event-engine scheduler");
        tb.process_sort_index(pid, ranks as i64);
        let (mut grants, mut handoffs, mut elides, mut recv_parks, mut barrier_parks) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut t_last = 0.0f64;
        for ev in sched {
            let name = match ev.kind {
                crate::engine::SchedKind::Grant => {
                    grants += 1;
                    "grant"
                }
                crate::engine::SchedKind::Handoff => {
                    handoffs += 1;
                    "handoff"
                }
                crate::engine::SchedKind::Elide => {
                    elides += 1;
                    "park elided"
                }
                crate::engine::SchedKind::RecvPark => {
                    recv_parks += 1;
                    "recv park"
                }
                crate::engine::SchedKind::BarrierPark => {
                    barrier_parks += 1;
                    "barrier park"
                }
                crate::engine::SchedKind::Finish => "finish",
            };
            t_last = t_last.max(ev.vclock);
            tb.instant(pid, 0, name, ev.vclock * US, &[("rank", Arg::U64(ev.rank as u64))]);
        }
        // One summary annotation at the end of the scheduler track so the
        // dispatch-path mix is readable without counting instants by hand.
        tb.instant(
            pid,
            0,
            "sched stats",
            t_last * US,
            &[
                ("grants", Arg::U64(grants)),
                ("handoffs", Arg::U64(handoffs)),
                ("parks_elided", Arg::U64(elides)),
                ("recv_parks", Arg::U64(recv_parks)),
                ("barrier_parks", Arg::U64(barrier_parks)),
            ],
        );
    }
    if !windows.is_empty() {
        let pid = ranks as u64 + 1;
        tb.process_name(pid, "chaos windows");
        tb.process_sort_index(pid, ranks as i64 + 1);
        for &(start, end) in windows {
            let args = [("start_s", Arg::F64(start)), ("end_s", Arg::F64(end))];
            tb.instant(pid, 0, "chaos window", start * US, &args);
        }
    }
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostModel};

    #[test]
    fn traces_record_all_activity_kinds() {
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None };
        let report = Cluster::new(2, cost).run(|comm| {
            comm.enable_trace();
            comm.compute(2.0);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f32; 10]);
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
            }
            comm.barrier();
            comm.take_trace()
        });
        let t0 = &report.results[0];
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Compute)));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Send { dst: 1, elems: 10 })));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Barrier)));
        let t1 = &report.results[1];
        assert!(t1.iter().any(|e| matches!(e.kind, TraceKind::Recv { src: 0, elems: 10 })));
        // Without a chaos plan, nothing is tagged perturbed.
        for tr in &report.results {
            assert!(tr.iter().all(|e| !e.perturbed));
        }
        // Events are time-ordered with non-negative spans.
        for tr in &report.results {
            for e in tr {
                assert!(e.end >= e.start);
            }
            for w in tr.windows(2) {
                assert!(w[1].start >= w[0].start - 1e-12);
            }
        }
    }

    #[test]
    fn untraced_comm_returns_empty() {
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            comm.compute(1.0);
            comm.take_trace()
        });
        assert!(report.results[0].is_empty());
    }

    #[test]
    fn renderer_produces_one_row_per_rank() {
        let traces = vec![
            vec![
                TraceEvent::new(0.0, 0.5, TraceKind::Compute),
                TraceEvent::new(0.5, 1.0, TraceKind::Send { dst: 1, elems: 4 }),
            ],
            vec![TraceEvent::new(0.5, 1.0, TraceKind::Recv { src: 0, elems: 4 })],
        ];
        let s = render_timeline(&traces, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('C') && lines[1].contains('S'));
        assert!(lines[2].contains('R') && lines[2].contains('·'));
    }

    #[test]
    fn perturbed_events_render_lowercase_and_pauses_render_p() {
        let traces = vec![vec![
            TraceEvent::tagged(0.0, 0.4, TraceKind::Compute, true),
            TraceEvent::tagged(0.4, 0.6, TraceKind::Pause, true),
            TraceEvent::new(0.6, 1.0, TraceKind::Compute),
        ]];
        let s = render_timeline(&traces, 20);
        let row = s.lines().nth(1).expect("rank row");
        assert!(row.contains('c'), "perturbed compute lowercased: {row}");
        assert!(row.contains('P'), "pause glyph present: {row}");
        assert!(row.contains('C'), "clean compute untouched: {row}");
    }

    #[test]
    fn chaos_row_marks_windows_and_clamps_open_ends() {
        let traces = vec![vec![TraceEvent::new(0.0, 1.0, TraceKind::Compute)]];
        let s = render_timeline_with_chaos(&traces, 20, &[(0.5, f64::INFINITY)]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("chaos"));
        let marks = lines[1].chars().filter(|&c| c == '#').count();
        assert!((9..=11).contains(&marks), "half the row marked: {}", lines[1]);
    }

    #[test]
    #[should_panic(expected = "clamp the pair")]
    #[cfg(debug_assertions)]
    fn inverted_perturbed_pair_trips_debug_assert() {
        let _ = TraceEvent::tagged(1.0, 0.5, TraceKind::Pause, true);
    }

    #[test]
    fn empty_trace_renders_a_header_and_no_rows() {
        let s = render_timeline(&[], 20);
        assert_eq!(s.lines().count(), 1, "header only: {s:?}");
        assert!(s.starts_with("timeline 0 .. "));
        // The chaos variant still renders its window row over the degenerate
        // span without dividing by zero.
        let s = render_timeline_with_chaos(&[], 20, &[(0.0, 1.0)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("chaos"));
    }

    #[test]
    fn zero_length_intervals_still_occupy_one_column() {
        // A zero-duration event (floor(a) == position of ceil(b)) must not
        // vanish: ceil rounds the right edge up to paint at least one cell.
        let traces = vec![vec![
            TraceEvent::new(0.0, 1.0, TraceKind::Compute),
            TraceEvent::new(0.25, 0.25, TraceKind::Barrier),
        ]];
        let s = render_timeline(&traces, 20);
        let row = s.lines().nth(1).expect("rank row");
        assert!(row.contains('B'), "zero-length event painted: {row}");
    }

    #[test]
    fn overlapping_chaos_windows_merge_in_the_header_row() {
        let traces = vec![vec![TraceEvent::new(0.0, 1.0, TraceKind::Compute)]];
        // Two overlapping windows plus one inverted (end < start) that must be
        // skipped; the merged mark covers [0.2, 0.8] exactly once.
        let windows = [(0.2, 0.6), (0.4, 0.8), (0.9, 0.1)];
        let s = render_timeline_with_chaos(&traces, 20, &windows);
        let row = s.lines().nth(1).expect("chaos row");
        let marks = row.chars().filter(|&c| c == '#').count();
        assert!((11..=14).contains(&marks), "merged window width: {row}");
        // Contiguous: one '#' run, no gap between the overlapping windows.
        let body: String = row.chars().skip_while(|&c| c != '|').collect();
        assert!(!body.contains("#·#"), "no gap inside merged windows: {row}");
    }

    #[test]
    fn chrome_export_is_valid_and_carries_every_track() {
        use crate::engine::{SchedEvent, SchedKind};
        let traces = vec![
            vec![TraceEvent::new(0.0, 0.5, TraceKind::Send { dst: 1, elems: 4 })],
            vec![TraceEvent::tagged(0.0, 0.5, TraceKind::Recv { src: 0, elems: 4 }, true)],
        ];
        let spans = vec![
            vec![obs::SpanEvent {
                name: "step".into(),
                vstart: 0.0,
                vend: 0.5,
                depth: 0,
                wall_ns: 123,
            }],
            vec![],
        ];
        let sched = vec![SchedEvent { vclock: 0.1, rank: 1, kind: SchedKind::Grant }];
        let doc = export_chrome(&traces, &spans, &sched, &[(0.2, 0.4)]);
        let v = obs::json::validate(&doc).expect("valid trace_events JSON");
        let events = v.get("traceEvents").and_then(obs::json::Json::as_arr).expect("array");
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(obs::json::Json::as_str)).collect();
        assert!(names.contains(&"send → 1"));
        assert!(names.contains(&"recv ← 0"));
        assert!(names.contains(&"step"));
        assert!(names.contains(&"grant"));
        assert!(names.contains(&"chaos window"));
        // pid layout: ranks 0..2, scheduler at 2, chaos at 3.
        let max_pid = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(obs::json::Json::as_f64))
            .fold(0.0f64, f64::max);
        assert_eq!(max_pid, 3.0);
    }

    #[test]
    fn chrome_export_of_nothing_is_an_empty_document() {
        let doc = export_chrome(&[], &[], &[], &[]);
        let v = obs::json::validate(&doc).expect("valid");
        assert_eq!(
            v.get("traceEvents").and_then(obs::json::Json::as_arr).map(<[obs::json::Json]>::len),
            Some(0)
        );
    }
}
