//! Per-rank execution traces in virtual time, with a text timeline renderer.
//!
//! Enable with [`crate::Comm::enable_trace`]; every send, receive, compute block
//! and barrier is recorded with its modeled start/end times. The renderer draws an
//! ASCII Gantt chart — handy for seeing schedules like split-and-reduce's rotation
//! actually pipelining, without leaving the terminal.

/// What a rank was doing during one traced interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Injecting a message (occupies the send port).
    Send {
        /// Destination rank.
        dst: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Draining a message (occupies the receive port; includes waiting).
    Recv {
        /// Source rank.
        src: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Local computation charged via `compute`.
    Compute,
    /// Barrier synchronization (wait + latency).
    Barrier,
}

/// One traced interval on one rank's virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Modeled start time (s).
    pub start: f64,
    /// Modeled end time (s).
    pub end: f64,
    /// Activity during the interval.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Construct an event, checking (in debug builds) that the interval is
    /// well-formed: recording code must clamp `start` and `end` consistently.
    pub fn new(start: f64, end: f64, kind: TraceKind) -> Self {
        debug_assert!(
            start <= end,
            "trace event with start {start} > end {end} ({kind:?}): clamp the pair consistently"
        );
        Self { start, end, kind }
    }

    fn glyph(&self) -> char {
        match self.kind {
            TraceKind::Send { .. } => 'S',
            TraceKind::Recv { .. } => 'R',
            TraceKind::Compute => 'C',
            TraceKind::Barrier => 'B',
        }
    }
}

/// Render per-rank traces as an ASCII Gantt chart of `width` columns spanning
/// `[0, t_max]`. Overlapping events on one rank keep the later glyph; idle time
/// renders as `·`.
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let t_max =
        traces.iter().flat_map(|t| t.iter().map(|e| e.end)).fold(0.0f64, f64::max).max(1e-12);
    let mut out = String::new();
    out.push_str(&format!(
        "timeline 0 .. {:.3e} s  (S=send R=recv C=compute B=barrier ·=idle)\n",
        t_max
    ));
    for (rank, events) in traces.iter().enumerate() {
        let mut row = vec!['·'; width];
        for e in events {
            let a = ((e.start / t_max) * width as f64).floor() as usize;
            let b = ((e.end / t_max) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = e.glyph();
            }
        }
        out.push_str(&format!("rank {rank:>3} |{}|\n", row.iter().collect::<String>()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostModel};

    #[test]
    fn traces_record_all_activity_kinds() {
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None };
        let report = Cluster::new(2, cost).run(|comm| {
            comm.enable_trace();
            comm.compute(2.0);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f32; 10]);
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
            }
            comm.barrier();
            comm.take_trace()
        });
        let t0 = &report.results[0];
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Compute)));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Send { dst: 1, elems: 10 })));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Barrier)));
        let t1 = &report.results[1];
        assert!(t1.iter().any(|e| matches!(e.kind, TraceKind::Recv { src: 0, elems: 10 })));
        // Events are time-ordered with non-negative spans.
        for tr in &report.results {
            for e in tr {
                assert!(e.end >= e.start);
            }
            for w in tr.windows(2) {
                assert!(w[1].start >= w[0].start - 1e-12);
            }
        }
    }

    #[test]
    fn untraced_comm_returns_empty() {
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            comm.compute(1.0);
            comm.take_trace()
        });
        assert!(report.results[0].is_empty());
    }

    #[test]
    fn renderer_produces_one_row_per_rank() {
        let traces = vec![
            vec![
                TraceEvent { start: 0.0, end: 0.5, kind: TraceKind::Compute },
                TraceEvent { start: 0.5, end: 1.0, kind: TraceKind::Send { dst: 1, elems: 4 } },
            ],
            vec![TraceEvent { start: 0.5, end: 1.0, kind: TraceKind::Recv { src: 0, elems: 4 } }],
        ];
        let s = render_timeline(&traces, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('C') && lines[1].contains('S'));
        assert!(lines[2].contains('R') && lines[2].contains('·'));
    }
}
