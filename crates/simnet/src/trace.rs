//! Per-rank execution traces in virtual time, with a text timeline renderer.
//!
//! Enable with [`crate::Comm::enable_trace`]; every send, receive, compute block
//! and barrier is recorded with its modeled start/end times. The renderer draws an
//! ASCII Gantt chart — handy for seeing schedules like split-and-reduce's rotation
//! actually pipelining, without leaving the terminal.
//!
//! When a chaos plan is installed ([`crate::Cluster::with_chaos`]), events whose
//! timing was perturbed carry a `perturbed` tag and render as lowercase glyphs;
//! injected pauses appear as their own [`TraceKind::Pause`] intervals, and
//! [`render_timeline_with_chaos`] adds a header row marking the plan's windows.

/// What a rank was doing during one traced interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Injecting a message (occupies the send port).
    Send {
        /// Destination rank.
        dst: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Draining a message (occupies the receive port; includes waiting).
    Recv {
        /// Source rank.
        src: usize,
        /// Body size in wire elements.
        elems: u64,
    },
    /// Local computation charged via `compute`.
    Compute,
    /// Barrier synchronization (wait + latency).
    Barrier,
    /// An injected chaos pause: the rank was frozen by the plan.
    Pause,
}

/// One traced interval on one rank's virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Modeled start time (s).
    pub start: f64,
    /// Modeled end time (s).
    pub end: f64,
    /// Activity during the interval.
    pub kind: TraceKind,
    /// Whether an installed chaos plan perturbed this interval (stretched
    /// compute, degraded/jittered link, or pause-gated activity).
    pub perturbed: bool,
}

impl TraceEvent {
    /// Construct a clean event, checking (in debug builds) that the interval is
    /// well-formed: recording code must clamp `start` and `end` consistently.
    pub fn new(start: f64, end: f64, kind: TraceKind) -> Self {
        Self::tagged(start, end, kind, false)
    }

    /// Construct an event with an explicit perturbed tag; the same consistency
    /// debug-assert applies to perturbed pairs as to clean Recv pairs.
    pub fn tagged(start: f64, end: f64, kind: TraceKind, perturbed: bool) -> Self {
        debug_assert!(
            start <= end,
            "trace event with start {start} > end {end} ({kind:?}, perturbed {perturbed}): \
             clamp the pair consistently"
        );
        Self { start, end, kind, perturbed }
    }

    fn glyph(&self) -> char {
        let clean = match self.kind {
            TraceKind::Send { .. } => 'S',
            TraceKind::Recv { .. } => 'R',
            TraceKind::Compute => 'C',
            TraceKind::Barrier => 'B',
            TraceKind::Pause => 'P',
        };
        if self.perturbed && self.kind != TraceKind::Pause {
            clean.to_ascii_lowercase()
        } else {
            clean
        }
    }
}

const LEGEND: &str = "S=send R=recv C=compute B=barrier P=chaos-pause ·=idle; lowercase=perturbed";

fn span_of(traces: &[Vec<TraceEvent>]) -> f64 {
    traces.iter().flat_map(|t| t.iter().map(|e| e.end)).fold(0.0f64, f64::max).max(1e-12)
}

fn render_rows(out: &mut String, traces: &[Vec<TraceEvent>], width: usize, t_max: f64) {
    for (rank, events) in traces.iter().enumerate() {
        let mut row = vec!['·'; width];
        for e in events {
            let a = ((e.start / t_max) * width as f64).floor() as usize;
            let b = ((e.end / t_max) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = e.glyph();
            }
        }
        out.push_str(&format!("rank {rank:>3} |{}|\n", row.iter().collect::<String>()));
    }
}

/// Render per-rank traces as an ASCII Gantt chart of `width` columns spanning
/// `[0, t_max]`. Overlapping events on one rank keep the later glyph; idle time
/// renders as `·`.
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let t_max = span_of(traces);
    let mut out = String::new();
    out.push_str(&format!("timeline 0 .. {t_max:.3e} s  ({LEGEND})\n"));
    render_rows(&mut out, traces, width, t_max);
    out
}

/// Like [`render_timeline`], with an extra `chaos` header row marking the
/// injected perturbation windows `(start, end)` (e.g. from
/// `chaos::CompiledChaos::windows`) as `#`. Open windows (`end = ∞`) are
/// clamped to the traced span.
pub fn render_timeline_with_chaos(
    traces: &[Vec<TraceEvent>],
    width: usize,
    windows: &[(f64, f64)],
) -> String {
    let t_max = span_of(traces);
    let mut out = String::new();
    out.push_str(&format!("timeline 0 .. {t_max:.3e} s  ({LEGEND}; #=injected window)\n"));
    let mut row = vec!['·'; width];
    for &(start, end) in windows {
        let end = end.min(t_max);
        if end <= start {
            continue;
        }
        let a = ((start / t_max) * width as f64).floor() as usize;
        let b = ((end / t_max) * width as f64).ceil() as usize;
        for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
            *cell = '#';
        }
    }
    out.push_str(&format!("chaos    |{}|\n", row.iter().collect::<String>()));
    render_rows(&mut out, traces, width, t_max);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostModel};

    #[test]
    fn traces_record_all_activity_kinds() {
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None };
        let report = Cluster::new(2, cost).run(|comm| {
            comm.enable_trace();
            comm.compute(2.0);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f32; 10]);
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
            }
            comm.barrier();
            comm.take_trace()
        });
        let t0 = &report.results[0];
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Compute)));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Send { dst: 1, elems: 10 })));
        assert!(t0.iter().any(|e| matches!(e.kind, TraceKind::Barrier)));
        let t1 = &report.results[1];
        assert!(t1.iter().any(|e| matches!(e.kind, TraceKind::Recv { src: 0, elems: 10 })));
        // Without a chaos plan, nothing is tagged perturbed.
        for tr in &report.results {
            assert!(tr.iter().all(|e| !e.perturbed));
        }
        // Events are time-ordered with non-negative spans.
        for tr in &report.results {
            for e in tr {
                assert!(e.end >= e.start);
            }
            for w in tr.windows(2) {
                assert!(w[1].start >= w[0].start - 1e-12);
            }
        }
    }

    #[test]
    fn untraced_comm_returns_empty() {
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            comm.compute(1.0);
            comm.take_trace()
        });
        assert!(report.results[0].is_empty());
    }

    #[test]
    fn renderer_produces_one_row_per_rank() {
        let traces = vec![
            vec![
                TraceEvent::new(0.0, 0.5, TraceKind::Compute),
                TraceEvent::new(0.5, 1.0, TraceKind::Send { dst: 1, elems: 4 }),
            ],
            vec![TraceEvent::new(0.5, 1.0, TraceKind::Recv { src: 0, elems: 4 })],
        ];
        let s = render_timeline(&traces, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('C') && lines[1].contains('S'));
        assert!(lines[2].contains('R') && lines[2].contains('·'));
    }

    #[test]
    fn perturbed_events_render_lowercase_and_pauses_render_p() {
        let traces = vec![vec![
            TraceEvent::tagged(0.0, 0.4, TraceKind::Compute, true),
            TraceEvent::tagged(0.4, 0.6, TraceKind::Pause, true),
            TraceEvent::new(0.6, 1.0, TraceKind::Compute),
        ]];
        let s = render_timeline(&traces, 20);
        let row = s.lines().nth(1).expect("rank row");
        assert!(row.contains('c'), "perturbed compute lowercased: {row}");
        assert!(row.contains('P'), "pause glyph present: {row}");
        assert!(row.contains('C'), "clean compute untouched: {row}");
    }

    #[test]
    fn chaos_row_marks_windows_and_clamps_open_ends() {
        let traces = vec![vec![TraceEvent::new(0.0, 1.0, TraceKind::Compute)]];
        let s = render_timeline_with_chaos(&traces, 20, &[(0.5, f64::INFINITY)]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("chaos"));
        let marks = lines[1].chars().filter(|&c| c == '#').count();
        assert!((9..=11).contains(&marks), "half the row marked: {}", lines[1]);
    }

    #[test]
    #[should_panic(expected = "clamp the pair")]
    #[cfg(debug_assertions)]
    fn inverted_perturbed_pair_trips_debug_assert() {
        let _ = TraceEvent::tagged(1.0, 0.5, TraceKind::Pause, true);
    }
}
