//! Nonblocking operation handles (MPI-style requests).
//!
//! ## Port-serialization semantics
//!
//! Posting an [`irecv`](crate::Comm::irecv) does not touch the modeled clocks.
//! The reception port is charged when the request is *resolved* — by
//! [`wait_recv`](crate::Comm::wait_recv), a successful
//! [`test_recv`](crate::Comm::test_recv), or equivalently a blocking `recv` —
//! and requests serialize on the port in the order their resolutions are
//! demanded. Consequently `irecv` + `wait_recv` is bit-identical in modeled
//! time to a blocking `recv` issued at the wait point.
//!
//! The overlap win comes from program order, not from the handle itself: a
//! message drains through the reception port concurrently with local compute,
//! because its port-busy interval `[max(head_arrival, port_free), …+β·L)` never
//! depends on the receiver's clock. Code that posts an `irecv`, runs `compute`,
//! then waits finishes at `max(now + c, done)` instead of the blocking-order
//! `max(now, done) + c`.
//!
//! Sends are DMA-style: ownership of the buffer transfers at `isend`/`send`
//! and the injection port is charged immediately, so a [`SendHandle`] is
//! already complete when constructed; its `wait` exists for MPI-shaped
//! symmetry and its [`complete_at`](SendHandle::complete_at) exposes when the
//! message has fully left the injection port.
//!
//! Handles are engine-agnostic: under the thread engine a resolution blocks
//! the OS thread on its channel, under the event engine it parks the rank
//! continuation in the scheduler until the matching envelope is delivered.
//! Either way the modeled outcome is identical — resolution order and the
//! envelope's sender-stamped timing fields decide the clocks, not the
//! transport.

use crate::comm::Tag;
use std::marker::PhantomData;

/// Handle for a posted nonblocking send.
#[derive(Clone, Copy, Debug)]
pub struct SendHandle {
    complete_at: f64,
}

impl SendHandle {
    pub(crate) fn new(complete_at: f64) -> Self {
        Self { complete_at }
    }

    /// Modeled time at which the message has fully left this rank's injection
    /// port (`injection start + β·L`).
    pub fn complete_at(&self) -> f64 {
        self.complete_at
    }

    /// Complete the send. Injection is DMA-style — buffer ownership moved at
    /// `isend` and the sender's clock never blocks on its own injection port —
    /// so this is a no-op; the port occupancy is still visible to
    /// [`crate::Comm::local_finish_time`] and barriers.
    pub fn wait(self) {}
}

/// Handle for a posted nonblocking receive of a `T` from `(src, tag)`.
///
/// Resolve with [`wait_recv`](crate::net::Net::wait_recv) (blocking) or
/// [`test_recv`](crate::net::Net::test_recv) (completes only if the message
/// has fully drained by the rank's current virtual time).
#[must_use = "a posted irecv must be resolved with wait_recv or test_recv"]
#[derive(Debug)]
pub struct RecvHandle<T> {
    src: usize,
    tag: Tag,
    _t: PhantomData<fn() -> T>,
}

impl<T> RecvHandle<T> {
    pub(crate) fn new(src: usize, tag: Tag) -> Self {
        Self { src, tag, _t: PhantomData }
    }

    /// Source rank (communicator-local) this receive was posted against.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Message tag this receive was posted against.
    pub fn tag(&self) -> Tag {
        self.tag
    }
}
