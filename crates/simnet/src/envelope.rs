//! Internal message envelope passed between rank threads.
//!
//! The payload is a small enum with *inline* variants for the hot wire shapes
//! (`Vec<f32>`, `Vec<u32>`, `Vec<f64>`, and COO index/value pairs), so a
//! steady-state send moves a `Vec`'s `(ptr, len, cap)` triple through the
//! channel without any per-message heap allocation. Everything else falls back
//! to the old `Box<dyn Any>` type erasure, and fan-out traffic (broadcast,
//! allgather) can share one reference-counted buffer across P−1 destinations.

use std::any::Any;
use std::sync::Arc;

/// Type-erased message body with inline fast paths for the hot payload shapes.
pub(crate) enum Payload {
    /// Dense value chunk (gradient slices, reduce-scatter/allgather chunks).
    F32(Vec<f32>),
    /// Index list (COO coordinates, permutation tables).
    U32(Vec<u32>),
    /// Double-precision chunk (loss/metric reductions).
    F64(Vec<f64>),
    /// COO gradient as (indexes, values) — the paper's 2k-element sparse format.
    Pair(Vec<u32>, Vec<f32>),
    /// Reference-counted payload shared across a fan-out: one buffer serves
    /// every destination of a broadcast or allgather relay.
    Shared(Arc<dyn Any + Send + Sync>),
    /// Fallback for arbitrary message types.
    Boxed(Box<dyn Any + Send>),
}

/// Move a concrete `S` into a `T` if (and only if) they are the same runtime
/// type. This is the `Option` dance: wrapping the value lets it be moved out
/// through a `&mut dyn Any` without consuming the original binding on failure.
fn reclaim<T: 'static, S: 'static>(value: S) -> Result<T, S> {
    let mut slot = Some(value);
    match (&mut slot as &mut dyn Any).downcast_mut::<Option<T>>() {
        Some(s) => Ok(s.take().unwrap()),
        None => Err(slot.unwrap()),
    }
}

impl Payload {
    /// Wrap a value for the wire, moving it into an inline variant when it is
    /// one of the hot shapes (no heap allocation) and boxing it otherwise.
    pub(crate) fn from_value<T: Send + 'static>(value: T) -> Self {
        let value = match reclaim::<Vec<f32>, T>(value) {
            Ok(v) => return Payload::F32(v),
            Err(v) => v,
        };
        let value = match reclaim::<Vec<u32>, T>(value) {
            Ok(v) => return Payload::U32(v),
            Err(v) => v,
        };
        let value = match reclaim::<Vec<f64>, T>(value) {
            Ok(v) => return Payload::F64(v),
            Err(v) => v,
        };
        let value = match reclaim::<(Vec<u32>, Vec<f32>), T>(value) {
            Ok((idx, val)) => return Payload::Pair(idx, val),
            Err(v) => v,
        };
        Payload::Boxed(Box::new(value))
    }

    /// Unwrap into a concrete `T`, or report what the payload actually was.
    pub(crate) fn into_value<T: Send + 'static>(self) -> Result<T, &'static str> {
        match self {
            Payload::F32(v) => reclaim(v).map_err(|_| "Vec<f32>"),
            Payload::U32(v) => reclaim(v).map_err(|_| "Vec<u32>"),
            Payload::F64(v) => reclaim(v).map_err(|_| "Vec<f64>"),
            Payload::Pair(idx, val) => reclaim((idx, val)).map_err(|_| "(Vec<u32>, Vec<f32>)"),
            Payload::Shared(_) => Err("an Arc-shared payload (use recv_shared)"),
            Payload::Boxed(b) => {
                b.downcast::<T>().map(|b| *b).map_err(|_| "a boxed payload of another type")
            }
        }
    }

    /// Unwrap a shared payload into `Arc<T>`.
    pub(crate) fn into_shared<T: Send + Sync + 'static>(self) -> Result<Arc<T>, &'static str> {
        match self {
            Payload::Shared(arc) => arc.downcast::<T>().map_err(|_| "an Arc of another type"),
            _ => Err("a non-shared payload (use recv)"),
        }
    }
}

/// A message in flight between two ranks.
///
/// Timing fields are computed by the *sender* from its own virtual clock; the
/// receiver combines them with its reception-port state to produce the modeled
/// completion time.
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    /// Modeled time at which the head of the message reaches the receiver
    /// (injection start + effective α, including any injected jitter).
    pub head_arrival: f64,
    /// Body size in 4-byte wire elements.
    pub elems: u64,
    /// Effective per-element link time for this message. The sender evaluates
    /// any chaos link degradation once at injection start and carries the
    /// result here, so both endpoints charge the *same* β for the same bytes;
    /// with no chaos plan this is exactly `cost.link(src, dst).1`.
    pub beta: f64,
    /// Whether a chaos plan perturbed this message's timing (for trace tagging).
    pub perturbed: bool,
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_shapes_take_inline_variants() {
        assert!(matches!(Payload::from_value(vec![1.0f32]), Payload::F32(_)));
        assert!(matches!(Payload::from_value(vec![1u32]), Payload::U32(_)));
        assert!(matches!(Payload::from_value(vec![1.0f64]), Payload::F64(_)));
        assert!(matches!(Payload::from_value((vec![1u32], vec![1.0f32])), Payload::Pair(_, _)));
        assert!(matches!(Payload::from_value("other"), Payload::Boxed(_)));
        // An `Option` wrapper is a *different* runtime type: no false positives.
        assert!(matches!(Payload::from_value(Some(vec![1.0f32])), Payload::Boxed(_)));
    }

    #[test]
    fn round_trips_preserve_values() {
        let v: Vec<f32> = vec![1.0, 2.0];
        assert_eq!(Payload::from_value(v.clone()).into_value::<Vec<f32>>().unwrap(), v);
        let pair = (vec![3u32, 9], vec![0.5f32, -0.5]);
        assert_eq!(
            Payload::from_value(pair.clone()).into_value::<(Vec<u32>, Vec<f32>)>().unwrap(),
            pair
        );
        let boxed = Payload::from_value((1u8, 2u8));
        assert_eq!(boxed.into_value::<(u8, u8)>().unwrap(), (1, 2));
    }

    #[test]
    fn mismatches_report_what_was_found() {
        let err = Payload::from_value(vec![1.0f32]).into_value::<Vec<u32>>().unwrap_err();
        assert_eq!(err, "Vec<f32>");
        let err = Payload::Shared(Arc::new(vec![1.0f32])).into_value::<Vec<f32>>().unwrap_err();
        assert!(err.contains("recv_shared"));
    }
}
