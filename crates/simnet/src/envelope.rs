//! Internal message envelope passed between rank threads.

use std::any::Any;

/// A message in flight between two ranks.
///
/// The payload is type-erased; [`crate::Comm::recv`] downcasts it back. Timing fields
/// are computed by the *sender* from its own virtual clock; the receiver combines them
/// with its reception-port state to produce the modeled completion time.
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    /// Modeled time at which the head of the message reaches the receiver
    /// (injection start + α).
    pub head_arrival: f64,
    /// Body size in 4-byte wire elements.
    pub elems: u64,
    pub payload: Box<dyn Any + Send>,
}
