//! Execution engines for [`crate::Cluster`]: thread-per-rank vs discrete-event.
//!
//! ## Why two engines
//!
//! The original engine gives every rank its own OS thread and lets the kernel
//! schedule them; correctness does not depend on the interleaving (clock
//! arithmetic only reads per-rank program order and matched message order), but
//! the *cost* of the interleaving grows with P: at 1024+ ranks the host
//! scheduler thrashes between hundreds of runnable threads, blocked receives
//! burn wakeups, and sweeps that the paper runs at 256 nodes become intractable
//! in one process.
//!
//! The discrete-event engine ([`EventCore`]) keeps one thread per rank — the
//! thread *is* the rank's continuation, so the blocking [`crate::Comm`] API is
//! preserved verbatim — but hands out **run tokens** from a virtual-time
//! scheduler instead of letting the OS pick. At most `workers` ranks are
//! runnable at any instant; every blocking point (recv with an empty inbox,
//! barrier arrival) parks the rank inside the core and releases its token, and
//! message delivery / barrier release marks ranks ready again. The ready queue
//! is ordered by `(virtual clock, rank id)` — lowest clock first, rank id as
//! the tie-break — so execution tracks the modeled timeline, which keeps
//! cross-rank backlogs small and makes progress order reproducible.
//!
//! Because both engines run the same per-rank programs over the same matched
//! message streams, they produce **bit-identical** clocks, gradients and
//! ledgers; the thread engine stays available as a differential oracle
//! (`SIMNET_ENGINE=thread`, the default).
//!
//! ## Scheduler fast paths (`SIMNET_SCHED=fast`, the default)
//!
//! Profiling the P ≥ 1024 regime showed wall time tracking `engine.parks` at
//! ~15–35 µs per park: every blocking point paid a global-lock transaction, a
//! condvar signal (futex syscall) and a futex sleep, and every message — even
//! one that wakes nobody — serialized on the same scheduler lock. The fast
//! dispatch path keeps the park/grant *semantics* (and therefore bit-identical
//! results) while removing the constant factors:
//!
//! 1. **Direct handoff** — when a running rank blocks, it picks the next rank
//!    and transfers its run token *in the same lock hold* that parked it,
//!    preferring the *producer* it is waiting on (following the recv wait-for
//!    chain up to [`WAITCHAIN_MAX`] hops to the first ready ancestor) over the
//!    lowest-clock heap head: demand-driven order keeps the dataflow chain on
//!    a warm cache, and one producer's sends satisfy many consumers at once.
//!    The wakeup itself is a lock-free `Thread::unpark` issued after the lock
//!    is released — its sticky permit cannot lose a race, unparking a thread
//!    that is mid-spin is a plain atomic store with no syscall
//!    (`engine.handoff_hit`), and only a genuinely parked target costs a futex
//!    wake (`engine.handoff_miss`). Neither side of the handoff reacquires
//!    the scheduler lock, so granter and wakee never contend for it.
//! 2. **Cohort wakeups** — a barrier release makes all P ranks ready at once;
//!    instead of P heap transactions it appends the whole release set, sorted
//!    by `(clock, rank)`, to a FIFO *cohort* drained by subsequent grants in
//!    O(1) (one notify pass; W > 1 workers drain the cohort concurrently).
//!    Heap refills likewise pop the entire equal-timestamp run in one lock
//!    acquisition (`engine.cohort_size` histograms both).
//! 3. **Adaptive spin-then-park** — a parking continuation spins briefly on
//!    its token word before the `park()` fallback, gated by *two* EWMAs: the
//!    inter-park gap (events must be dense) and the recent spin hit rate
//!    (spins must actually be landing — re-probed every 64th park so a phase
//!    change can re-arm it). In relay-shaped phases the yield loop replaces
//!    both futex syscalls and the handoff runs at memory speed; in all-rank
//!    wave phases the controller disarms itself and parks immediately.
//!    `engine.spin_hit` vs `engine.spin_park` count the outcomes.
//!
//! The critical section itself shrinks: message delivery and wait registration
//! move to **per-rank inbox locks**. Only the owning rank pops its inbox and
//! registers what it waits for, and only one matching sender can claim a
//! registered wait (single-writer invariants), so a non-matching send — the
//! common case in bucketed collectives — never touches the scheduler lock at
//! all. A send that lands in the window between wait registration and the
//! park marks `wake_pending` under the scheduler lock and the receiver
//! *continues inline*, keeping its token (`engine.park_elided`); the claim /
//! `wake_pending` handshake is ordered by the scheduler lock, so the wakeup
//! cannot be lost.
//!
//! `SIMNET_SCHED=classic` (or [`crate::Cluster::with_sched`]) restores the
//! PR 7 dispatch path unchanged — the kill switch for the fast paths, held
//! bit-identical by the parity suites.
//!
//! ## Exact deadlock detection
//!
//! The thread engine can only detect a deadlock with a wall-clock watchdog.
//! The event core knows the whole cluster state: if no rank holds a run token,
//! the ready queue is empty and unfinished ranks remain, the simulation cannot
//! ever progress. The core then records a fault report that names every
//! blocked rank and walks the recv wait-for graph to print the cycle, and all
//! parked ranks unwind quietly (see [`Cascade`]). Both dispatch paths share
//! the check (the fast path counts its cohort FIFO as ready work).

use crate::comm::Tag;
use crate::envelope::Envelope;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Cap on the optional scheduler event log: a runaway sweep must not hoard
/// unbounded memory just because scheduler tracing was left on.
const SCHED_LOG_MAX: usize = 1 << 20;

/// Spin gate, part 1: a parked continuation may spin only while the EWMA of
/// recent inter-park gaps is below this (nanoseconds). Dense-event phases
/// (P ≥ 1024 sweeps park every few µs) qualify; sparse phases go straight to
/// the condvar.
const SPIN_GAP_NS: u64 = 200_000;

/// Busy iterations (`spin_loop` hint) before the spin phase starts yielding
/// the core — the cheap window that catches a token granted by another worker
/// already running on a different CPU.
const SPIN_CHEAP: u32 = 64;

/// `yield_now` iterations after the busy window. On a single-core host this
/// is the whole game: a recently-parked rank stays *runnable* instead of
/// futex-sleeping, so when the token holder blocks, the kernel switches
/// straight to it — no futex wake, no futex wait, one cheap switch.
const SPIN_YIELDS: u32 = 8;

/// Spin gate, part 2 — fixed-point one for the spin hit-rate EWMA. Whether a
/// spin can succeed depends on the communication *shape*: in chain/ping-pong
/// phases the next token lands within a few events of the park (spins hit);
/// in all-rank wave phases it arrives ~P events later (spins always miss and
/// every yield is churn). The shape is observable as the recent hit rate.
const SPIN_OK_ONE: u32 = 1 << 16;

/// Spin only while the hit-rate EWMA clears 7/8. The bar is this high because
/// the costs are asymmetric: a hit saves a couple of µs of futex round-trip,
/// but a miss burns the whole yield budget in context-switch churn against
/// the thread doing real work — an order of magnitude more. Only phases where
/// spins almost always land are worth spinning in.
const SPIN_OK_MIN: u32 = SPIN_OK_ONE / 8 * 7;

/// 1-in-64 parks probe the spin path even when the controller says no, so a
/// workload phase change (wave → chain) can re-enable it, at a bounded
/// average overhead per park in the disabled regime.
const SPIN_PROBE_MASK: u64 = 63;

/// Maximum wait-for hops the targeted-handoff walk follows from a parking
/// receiver towards a runnable producer before giving up on the chain.
const WAITCHAIN_MAX: usize = 16;

/// One scheduler decision of the event engine, recorded (only) when
/// [`crate::Cluster::with_sched_trace`] is on — the profiling signal for the
/// P ≥ 1024 run-token hand-off investigation. Exported to its own track by
/// [`crate::trace::export_chrome`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedEvent {
    /// The rank's virtual clock at the decision.
    pub vclock: f64,
    /// The rank the decision concerns.
    pub rank: usize,
    /// What the scheduler did.
    pub kind: SchedKind,
}

/// The kind of a [`SchedEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// A run token was granted to the rank.
    Grant,
    /// A run token was transferred to the rank by a blocking rank in the same
    /// lock hold (fast path: direct handoff).
    Handoff,
    /// The rank was about to park in a receive when the matching message
    /// landed; it kept its token and continued inline (fast path).
    Elide,
    /// The rank parked in a blocking receive (token released).
    RecvPark,
    /// The rank parked at the cluster barrier (token released).
    BarrierPark,
    /// The rank's closure returned.
    Finish,
}

/// Scheduler metric handles (Host class: token traffic and queue depths are
/// properties of the simulating host's execution, not of modeled time).
#[derive(Clone)]
pub(crate) struct EngineMetrics {
    token_grants: obs::Counter,
    parks: obs::Counter,
    /// Parks split per cause, so wall-time wins are attributable.
    parks_recv: obs::Counter,
    parks_barrier: obs::Counter,
    ready_depth_max: obs::Gauge,
    /// Direct handoffs whose condvar signal was elided (target was mid-spin).
    handoff_hit: obs::Counter,
    /// Direct handoffs that had to signal the target's condvar.
    handoff_miss: obs::Counter,
    /// Parks elided entirely: the matching message landed between wait
    /// registration and the park, so the rank kept its token.
    park_elided: obs::Counter,
    /// Tokens consumed during the lock-free spin phase (no condvar involved).
    spin_hit: obs::Counter,
    /// Tokens consumed via the condvar fallback.
    spin_park: obs::Counter,
    /// Sizes of ready cohorts (equal-timestamp heap runs, barrier releases).
    cohort_size: obs::Histogram,
}

impl EngineMetrics {
    pub(crate) fn new(reg: &obs::Registry) -> Self {
        use obs::Class::Host;
        Self {
            token_grants: reg.counter("engine.token_grants", Host),
            parks: reg.counter("engine.parks", Host),
            parks_recv: reg.counter("engine.parks_recv", Host),
            parks_barrier: reg.counter("engine.parks_barrier", Host),
            ready_depth_max: reg.gauge("engine.ready_depth_max", Host),
            handoff_hit: reg.counter("engine.handoff_hit", Host),
            handoff_miss: reg.counter("engine.handoff_miss", Host),
            park_elided: reg.counter("engine.park_elided", Host),
            spin_hit: reg.counter("engine.spin_hit", Host),
            spin_park: reg.counter("engine.spin_park", Host),
            cohort_size: reg.histogram("engine.cohort_size", Host),
        }
    }
}

/// Which execution core a [`crate::Cluster`] uses to run rank programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// One OS thread per rank, scheduled by the kernel; wall-clock watchdogs
    /// detect deadlocks. The original engine, kept as a differential oracle.
    #[default]
    Thread,
    /// Discrete-event core: one thread per rank as a parked continuation, a
    /// bounded set of run tokens granted in virtual-time order, and exact
    /// (watchdog-free) deadlock detection. Required for P ≳ 1024 sweeps.
    Event,
}

impl Engine {
    /// Engine selected by `SIMNET_ENGINE` (`thread` | `event`, case-insensitive);
    /// unset or invalid values fall back to [`Engine::Thread`].
    pub fn from_env() -> Self {
        match std::env::var("SIMNET_ENGINE") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "event" => Engine::Event,
                "thread" | "" => Engine::Thread,
                _ => {
                    eprintln!(
                        "simnet: ignoring invalid SIMNET_ENGINE={raw:?} (want `thread` or `event`)"
                    );
                    Engine::Thread
                }
            },
            Err(_) => Engine::Thread,
        }
    }
}

/// Which dispatch path the event engine's scheduler uses. Results are
/// bit-identical either way (proven by the parity suites); the mode only
/// changes host-side cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// The PR 7 dispatch path: one global lock for delivery and scheduling,
    /// condvar signal on every grant. The kill switch for the fast paths.
    Classic,
    /// Direct run-token handoff, cohort wakeups, adaptive spin-then-park and
    /// per-rank inbox locks. The default.
    #[default]
    Fast,
}

impl SchedMode {
    /// Mode selected by `SIMNET_SCHED` (`classic` | `fast`, case-insensitive);
    /// unset or invalid values fall back to [`SchedMode::Fast`].
    pub fn from_env() -> Self {
        match std::env::var("SIMNET_SCHED") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "classic" => SchedMode::Classic,
                "fast" | "" => SchedMode::Fast,
                _ => {
                    eprintln!(
                        "simnet: ignoring invalid SIMNET_SCHED={raw:?} (want `classic` or `fast`)"
                    );
                    SchedMode::Fast
                }
            },
            Err(_) => SchedMode::Fast,
        }
    }
}

/// Default worker count for the event engine: `SIMNET_WORKERS`, else the
/// machine's available parallelism. Determinism never depends on this — it
/// only bounds how many rank continuations may run concurrently.
pub(crate) fn default_workers() -> usize {
    if let Ok(raw) = std::env::var("SIMNET_WORKERS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("simnet: ignoring invalid SIMNET_WORKERS={raw:?} (want a positive int)"),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Panic payload for ranks aborted *because some other rank failed* (panic or
/// detected deadlock). Unwinding with `resume_unwind` and this marker skips
/// the panic hook, so a 1000-rank cascade prints nothing; the cluster joiner
/// recognizes the marker and reports the original fault instead.
pub(crate) struct Cascade;

/// Quietly unwind the current rank as a casualty of another rank's fault.
pub(crate) fn cascade() -> ! {
    std::panic::resume_unwind(Box::new(Cascade))
}

/// Ready-queue key: virtual clock first (total order via `total_cmp`), rank id
/// as the deterministic tie-break. Wrapped in `Reverse` inside the heap so the
/// *lowest* virtual time is granted first.
#[derive(Clone, Copy, Debug)]
struct ReadyKey {
    clock: f64,
    rank: usize,
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ReadyKey {}
impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.clock.total_cmp(&other.clock).then(self.rank.cmp(&other.rank))
    }
}

/// What a rank continuation is doing, from the scheduler's point of view.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    /// In the ready queue (heap or cohort FIFO), waiting for a run token.
    Ready,
    /// Holds a run token; its thread is executing user code.
    Running,
    /// Parked in a blocking receive for `(src, tag)` with an empty inbox.
    RecvWait { src: usize, tag: Tag },
    /// Parked at the cluster barrier.
    BarrierWait,
    /// Returned from its closure (or was torn down by a fault).
    Done,
}

struct RankSlot {
    status: Status,
    /// Virtual clock at the last park — the ready-queue priority when woken.
    clock: f64,
    /// Messages delivered to this rank, in arrival order (classic path; the
    /// fast path keeps its inbox in [`EventCore::inboxes`] so delivery never
    /// takes the scheduler lock).
    inbox: VecDeque<Envelope>,
    /// Barrier result snapshot, written by the releasing rank (classic path;
    /// the fast path uses the lock-free [`EventCore::release_bits`]).
    release: f64,
}

/// Fast-path per-rank delivery state, behind its *own* lock so the scheduler
/// lock never serializes message payload movement. Single-writer invariants:
/// only the owning rank pops `q` and registers `waiting`; only the one sender
/// whose `(src, tag)` matches a registered wait can claim it (and a rank
/// registers one wait at a time), so claim/requeue races cannot duplicate or
/// lose a wakeup.
struct RankInbox {
    /// Messages delivered to this rank, in arrival order.
    q: VecDeque<Envelope>,
    /// The `(src, tag)` the owning rank is about to park for; a matching
    /// sender claims the wake by clearing it.
    waiting: Option<(usize, Tag)>,
    /// The owning rank finished — a send here can never be received.
    done: bool,
}

/// Fast-path per-rank wake word. `token` is the run token itself (set by the
/// granter under the scheduler lock, consumed by the wakee without any lock);
/// `handle` is the rank's OS thread, woken by `Thread::unpark` — its sticky
/// permit makes lost wakeups impossible with no lock on the sleep side, and
/// unparking a thread that is not parked is a plain atomic store, no syscall.
/// `sleeping` only feeds the handoff hit/miss statistics.
struct WakeSlot {
    token: AtomicU32,
    sleeping: AtomicBool,
    handle: OnceLock<std::thread::Thread>,
}

struct CoreState {
    ranks: Vec<RankSlot>,
    ready: BinaryHeap<Reverse<ReadyKey>>,
    /// Fast path: ranks ready at the current virtual-time frontier, granted
    /// FIFO in `(clock, rank)` order without further heap transactions.
    /// Always empty on the classic path.
    cohort: VecDeque<usize>,
    /// Fast path: set (under this lock) by a matching sender that caught the
    /// receiver *between* wait registration and the park; the receiver
    /// consumes it in its park transaction and continues inline instead.
    wake_pending: Vec<bool>,
    /// Ranks currently holding a run token.
    running: usize,
    /// Ranks whose closure returned.
    finished: usize,
    /// Barrier arrivals this episode (no generation counter needed: an episode
    /// cannot restart until every rank it released has resumed past the point
    /// where its `release` snapshot was read — all `size` ranks must re-arrive
    /// first, and a released-but-unresumed rank cannot arrive).
    bar_arrived: usize,
    bar_max: f64,
    /// First fault (rank panic or detected deadlock); once set, every rank
    /// that touches the core unwinds with [`Cascade`].
    fault: Option<String>,
    /// Scheduler decisions, recorded only when tracing is on (bounded by
    /// [`SCHED_LOG_MAX`]).
    sched: Vec<SchedEvent>,
}

impl CoreState {
    fn log_sched(&mut self, on: bool, vclock: f64, rank: usize, kind: SchedKind) {
        if on && self.sched.len() < SCHED_LOG_MAX {
            self.sched.push(SchedEvent { vclock, rank, kind });
        }
    }
}

/// Shared state of the discrete-event engine for one [`crate::Cluster::run`].
pub(crate) struct EventCore {
    size: usize,
    workers: usize,
    mode: SchedMode,
    /// Scheduler metric handles; `None` when the run has no registry wired.
    metrics: Option<EngineMetrics>,
    /// Whether scheduler decisions are logged for trace export.
    sched_trace: bool,
    state: Mutex<CoreState>,
    /// One condvar per rank: each parked continuation waits only on its own.
    cvs: Vec<Condvar>,
    /// Fast path: per-rank delivery state (messages + wait registration).
    inboxes: Vec<Mutex<RankInbox>>,
    /// Fast path: per-rank run-token words.
    wake: Vec<WakeSlot>,
    /// Fast path: barrier release snapshots as `f64` bits — written by the
    /// releasing rank before it grants tokens, read by each released rank
    /// after it acquires its token, so no lock is needed on the read side.
    release_bits: Vec<AtomicU64>,
    /// Mirrors `CoreState::fault.is_some()` so lock-free spinners notice a
    /// teardown without touching the scheduler lock.
    fault_flag: AtomicBool,
    /// Origin for the inter-park gap EWMA timestamps.
    t0: Instant,
    /// Nanoseconds (since `t0`) of the most recent park, any rank.
    last_park_ns: AtomicU64,
    /// EWMA (α = 1/8) of inter-park gaps in nanoseconds; gates the spin phase.
    gap_ewma_ns: AtomicU64,
    /// EWMA (α = 1/8, fixed-point [`SPIN_OK_ONE`]) of spin outcomes; the
    /// hit-rate half of the spin gate.
    spin_ok: AtomicU32,
    /// Park sequence number, for the 1-in-[`SPIN_PROBE_MASK`]+1 spin probes.
    park_seq: AtomicU64,
}

impl EventCore {
    pub(crate) fn new(
        size: usize,
        workers: usize,
        mode: SchedMode,
        metrics: Option<EngineMetrics>,
        sched_trace: bool,
    ) -> Self {
        assert!(size >= 1 && workers >= 1);
        let ranks = (0..size)
            .map(|_| RankSlot {
                status: Status::Ready,
                clock: 0.0,
                inbox: VecDeque::new(),
                release: 0.0,
            })
            .collect();
        let ready = (0..size).map(|rank| Reverse(ReadyKey { clock: 0.0, rank })).collect();
        Self {
            size,
            workers,
            mode,
            metrics,
            sched_trace,
            state: Mutex::new(CoreState {
                ranks,
                ready,
                cohort: VecDeque::new(),
                wake_pending: vec![false; size],
                running: 0,
                finished: 0,
                bar_arrived: 0,
                bar_max: f64::NEG_INFINITY,
                fault: None,
                sched: Vec::new(),
            }),
            cvs: (0..size).map(|_| Condvar::new()).collect(),
            inboxes: (0..size)
                .map(|_| Mutex::new(RankInbox { q: VecDeque::new(), waiting: None, done: false }))
                .collect(),
            wake: (0..size)
                .map(|_| WakeSlot {
                    token: AtomicU32::new(0),
                    sleeping: AtomicBool::new(false),
                    handle: OnceLock::new(),
                })
                .collect(),
            release_bits: (0..size).map(|_| AtomicU64::new(0)).collect(),
            fault_flag: AtomicBool::new(false),
            t0: Instant::now(),
            last_park_ns: AtomicU64::new(0),
            gap_ewma_ns: AtomicU64::new(SPIN_GAP_NS),
            spin_ok: AtomicU32::new(SPIN_OK_MIN),
            park_seq: AtomicU64::new(0),
        }
    }

    /// Grant run tokens to the lowest-clock ready ranks while slots are free
    /// (classic path: signal under the lock, heap-only ready queue).
    fn schedule(&self, st: &mut CoreState) {
        if let Some(m) = &self.metrics {
            m.ready_depth_max.set_max(st.ready.len() as u64);
        }
        while st.running < self.workers {
            let Some(Reverse(key)) = st.ready.pop() else { break };
            debug_assert_eq!(st.ranks[key.rank].status, Status::Ready);
            st.ranks[key.rank].status = Status::Running;
            st.running += 1;
            if let Some(m) = &self.metrics {
                m.token_grants.inc();
            }
            st.log_sched(self.sched_trace, key.clock, key.rank, SchedKind::Grant);
            self.cvs[key.rank].notify_one();
        }
    }

    /// Fast path: next ready rank in `(clock, rank)` order — O(1) from the
    /// cohort FIFO, refilled by popping the heap's whole equal-timestamp run
    /// in one transaction. Entries whose rank is no longer `Ready` are stale
    /// leftovers from a targeted handoff (which grants out of band without
    /// digging them out of the heap) and are skipped lazily here.
    fn pop_next_ready(&self, st: &mut CoreState) -> Option<ReadyKey> {
        loop {
            if let Some(rank) = st.cohort.pop_front() {
                if st.ranks[rank].status == Status::Ready {
                    return Some(ReadyKey { clock: st.ranks[rank].clock, rank });
                }
                continue;
            }
            let Reverse(head) = st.ready.pop()?;
            let mut n = 1u64;
            while let Some(&Reverse(k)) = st.ready.peek() {
                if k.clock.total_cmp(&head.clock).is_eq() {
                    st.ready.pop();
                    st.cohort.push_back(k.rank);
                    n += 1;
                } else {
                    break;
                }
            }
            if st.ranks[head.rank].status != Status::Ready {
                continue;
            }
            if let Some(m) = &self.metrics {
                m.cohort_size.record(n);
            }
            return Some(head);
        }
    }

    /// Fast path: grant tokens while slots are free. Sets each target's token
    /// word under the lock but defers the (possibly elided) condvar signal to
    /// [`Self::flush_grants`], which the caller runs after unlocking. `direct`
    /// marks grants performed inside a blocking rank's own park transaction —
    /// the direct-handoff path.
    fn schedule_fast(&self, st: &mut CoreState, direct: bool, granted: &mut Vec<usize>) {
        // Amortized stale purge: targeted grants leave dead heap entries
        // behind; rebuild once they dominate so memory stays O(size).
        if st.ready.len() > 8 * self.size + 64 {
            st.ready.retain(|&Reverse(k)| st.ranks[k.rank].status == Status::Ready);
        }
        if let Some(m) = &self.metrics {
            m.ready_depth_max.set_max((st.ready.len() + st.cohort.len()) as u64);
        }
        while st.running < self.workers {
            let Some(key) = self.pop_next_ready(st) else { break };
            let kind = if direct { SchedKind::Handoff } else { SchedKind::Grant };
            self.grant_rank(st, key.rank, kind, granted);
        }
    }

    /// Set `rank` (must be `Ready`) running and queue its wakeup. Any heap or
    /// cohort entry still naming it goes stale and is skipped at pop time.
    fn grant_rank(
        &self,
        st: &mut CoreState,
        rank: usize,
        kind: SchedKind,
        granted: &mut Vec<usize>,
    ) {
        debug_assert_eq!(st.ranks[rank].status, Status::Ready);
        st.ranks[rank].status = Status::Running;
        st.running += 1;
        if let Some(m) = &self.metrics {
            m.token_grants.inc();
        }
        let clock = st.ranks[rank].clock;
        st.log_sched(self.sched_trace, clock, rank, kind);
        self.wake[rank].token.store(1, Ordering::SeqCst);
        granted.push(rank);
    }

    /// Signal granted ranks *after* the scheduler lock is released: a wakee
    /// mid-spin (or not yet asleep) consumes its token without any syscall,
    /// and the unpark is a plain permit store (handoff hit); only a parked
    /// thread costs a futex wake (handoff miss). Never loses a wakeup: the
    /// token word was set under the lock, the wakee re-checks it before every
    /// `park()`, and an `unpark` that races ahead just leaves a sticky permit
    /// the next `park()` consumes immediately.
    fn flush_grants(&self, direct: bool, granted: &[usize]) {
        for &rank in granted {
            let slot = &self.wake[rank];
            if direct {
                if let Some(m) = &self.metrics {
                    if slot.sleeping.load(Ordering::SeqCst) {
                        m.handoff_miss.inc();
                    } else {
                        m.handoff_hit.inc();
                    }
                }
            }
            // None only before the rank's thread reached `start`; it then
            // finds its token already set before ever parking.
            if let Some(t) = slot.handle.get() {
                t.unpark();
            }
        }
    }

    /// Record a park for the inter-park gap EWMA (fast path's spin gate).
    fn note_park_gap(&self) {
        let now = self.t0.elapsed().as_nanos() as u64;
        let last = self.last_park_ns.swap(now, Ordering::Relaxed);
        let gap = now.saturating_sub(last);
        let e = self.gap_ewma_ns.load(Ordering::Relaxed);
        self.gap_ewma_ns.store(e - e / 8 + gap / 8, Ordering::Relaxed);
    }

    /// Record a spin outcome in the hit-rate EWMA (fast path's spin gate).
    /// Asymmetric on purpose: a couple of probe hits re-arm spinning quickly
    /// when a phase turns spin-friendly, while a single miss near the (high)
    /// threshold is enough to disarm it — misses are what cost.
    fn note_spin(&self, hit: bool) {
        let e = self.spin_ok.load(Ordering::Relaxed);
        let e = if hit { e + (SPIN_OK_ONE - e) / 2 } else { e - e / 4 };
        self.spin_ok.store(e, Ordering::Relaxed);
    }

    /// Wait for this rank's run token (fast path). Spins lock-free while the
    /// adaptive gate allows — events must be dense (inter-park gap EWMA) *and*
    /// recent spins must actually be hitting (hit-rate EWMA, re-probed every
    /// 32nd park) — then falls back to the condvar under the scheduler lock.
    /// Cascades if a fault lands first.
    fn wait_token(&self, rank: usize) {
        let slot = &self.wake[rank];
        let dense = self.gap_ewma_ns.load(Ordering::Relaxed) < SPIN_GAP_NS;
        let spin = dense && {
            let seq = self.park_seq.fetch_add(1, Ordering::Relaxed);
            self.spin_ok.load(Ordering::Relaxed) >= SPIN_OK_MIN || seq & SPIN_PROBE_MASK == 0
        };
        if spin {
            let mut i = 0u32;
            while i < SPIN_CHEAP + SPIN_YIELDS && !self.fault_flag.load(Ordering::Relaxed) {
                if slot.token.load(Ordering::SeqCst) == 1 {
                    slot.token.store(0, Ordering::SeqCst);
                    self.note_spin(true);
                    if let Some(m) = &self.metrics {
                        m.spin_hit.inc();
                    }
                    return;
                }
                if i < SPIN_CHEAP {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                i += 1;
            }
            self.note_spin(false);
        }
        // Lock-free sleep: no scheduler-lock reacquisition on either side of
        // the handoff, so granter and wakee never contend for it — the
        // unpark permit alone carries the wakeup.
        if let Some(m) = &self.metrics {
            m.spin_park.inc();
        }
        slot.sleeping.store(true, Ordering::SeqCst);
        loop {
            if self.fault_flag.load(Ordering::SeqCst) {
                slot.sleeping.store(false, Ordering::SeqCst);
                cascade();
            }
            if slot.token.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::park();
        }
        slot.sleeping.store(false, Ordering::SeqCst);
        slot.token.store(0, Ordering::SeqCst);
    }

    /// Drain the scheduler event log (empty unless tracing was on).
    pub(crate) fn take_sched(&self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.state.lock().sched)
    }

    /// If nothing can ever run again, record the deadlock fault and wake every
    /// continuation so the run tears down immediately (no watchdog involved).
    fn check_deadlock(&self, st: &mut CoreState) {
        if st.fault.is_some() || st.running > 0 || st.finished >= self.size {
            return;
        }
        // Stale entries (targeted handoffs grant out of band) must not mask a
        // real deadlock: judge emptiness on live entries only. Rare path — a
        // scheduler with no token out either deadlocked or is shutting down.
        st.cohort.retain(|&r| st.ranks[r].status == Status::Ready);
        st.ready.retain(|&Reverse(k)| st.ranks[k.rank].status == Status::Ready);
        if !st.ready.is_empty() || !st.cohort.is_empty() {
            return;
        }
        st.fault = Some(deadlock_report(st, self.size));
        self.fault_flag.store(true, Ordering::SeqCst);
        self.wake_everyone();
    }

    /// Teardown broadcast: wake every continuation, whichever way it sleeps
    /// (classic condvar or fast-path `thread::park`), so it sees the fault.
    fn wake_everyone(&self) {
        for cv in &self.cvs {
            cv.notify_all();
        }
        for slot in &self.wake {
            if let Some(t) = slot.handle.get() {
                t.unpark();
            }
        }
    }

    /// Block until this rank holds a run token; cascades if a fault lands
    /// first (classic path — the fast path uses [`Self::wait_token`]).
    fn wait_runnable(&self, rank: usize, st: &mut MutexGuard<'_, CoreState>) {
        loop {
            if st.fault.is_some() {
                cascade();
            }
            if st.ranks[rank].status == Status::Running {
                return;
            }
            self.cvs[rank].wait(st);
        }
    }

    /// Called once by each rank thread before running user code: waits for the
    /// initial run-token grant (all ranks start Ready at clock 0).
    pub(crate) fn start(&self, rank: usize) {
        match self.mode {
            SchedMode::Classic => {
                let mut st = self.state.lock();
                self.schedule(&mut st);
                self.wait_runnable(rank, &mut st);
            }
            SchedMode::Fast => {
                let _ = self.wake[rank].handle.set(std::thread::current());
                let mut granted = Vec::new();
                {
                    let mut st = self.state.lock();
                    self.schedule_fast(&mut st, false, &mut granted);
                }
                self.flush_grants(false, &granted);
                self.wait_token(rank);
            }
        }
    }

    /// Pop the next envelope delivered to `rank` (arrival order), parking the
    /// continuation — token released, status `RecvWait(src, tag)` — whenever
    /// the inbox is empty. The caller matches/stashes envelopes exactly like
    /// the thread engine drains its channel, so the matched message order (and
    /// with it every clock) is identical across engines.
    pub(crate) fn next_envelope(&self, rank: usize, src: usize, tag: Tag, clock: f64) -> Envelope {
        match self.mode {
            SchedMode::Classic => self.next_envelope_classic(rank, src, tag, clock),
            SchedMode::Fast => self.next_envelope_fast(rank, src, tag, clock),
        }
    }

    fn next_envelope_classic(&self, rank: usize, src: usize, tag: Tag, clock: f64) -> Envelope {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        loop {
            if let Some(env) = st.ranks[rank].inbox.pop_front() {
                return env;
            }
            st.ranks[rank].status = Status::RecvWait { src, tag };
            st.ranks[rank].clock = clock;
            st.running -= 1;
            if let Some(m) = &self.metrics {
                m.parks.inc();
                m.parks_recv.inc();
            }
            st.log_sched(self.sched_trace, clock, rank, SchedKind::RecvPark);
            self.schedule(&mut st);
            self.check_deadlock(&mut st);
            self.wait_runnable(rank, &mut st);
        }
    }

    fn next_envelope_fast(&self, rank: usize, src: usize, tag: Tag, clock: f64) -> Envelope {
        if self.fault_flag.load(Ordering::Relaxed) {
            cascade();
        }
        loop {
            // Inbox scan under the rank's own lock: the hot pop never touches
            // the scheduler. An empty inbox registers the wait *here* so a
            // racing matching sender can claim it without the scheduler lock.
            {
                let mut ib = self.inboxes[rank].lock();
                if let Some(env) = ib.q.pop_front() {
                    return env;
                }
                ib.waiting = Some((src, tag));
            }
            let mut granted = Vec::new();
            {
                let mut st = self.state.lock();
                if st.fault.is_some() {
                    cascade();
                }
                if st.wake_pending[rank] {
                    // The matching message landed between wait registration
                    // and this park transaction (the sender claimed the wait
                    // and found us still Running). Keep the token, continue
                    // inline; the envelope is already in the inbox.
                    st.wake_pending[rank] = false;
                    if let Some(m) = &self.metrics {
                        m.park_elided.inc();
                    }
                    st.log_sched(self.sched_trace, clock, rank, SchedKind::Elide);
                    continue;
                }
                st.ranks[rank].status = Status::RecvWait { src, tag };
                st.ranks[rank].clock = clock;
                st.running -= 1;
                if let Some(m) = &self.metrics {
                    m.parks.inc();
                    m.parks_recv.inc();
                }
                st.log_sched(self.sched_trace, clock, rank, SchedKind::RecvPark);
                self.note_park_gap();
                // Targeted handoff: walk the wait-for chain from the rank we
                // are waiting *on* and run the first ready producer along it —
                // demand-driven order beats lowest-clock order for rotation
                // all-to-all phases, where one producer's sends satisfy many
                // consumers at once. Bounded walk; a cycle (real deadlock)
                // just falls through to the regular scheduler + detector.
                if st.running < self.workers {
                    let mut cur = src;
                    for _ in 0..WAITCHAIN_MAX {
                        match st.ranks[cur].status {
                            Status::Ready => {
                                self.grant_rank(&mut st, cur, SchedKind::Handoff, &mut granted);
                                break;
                            }
                            Status::RecvWait { src: s, .. } if s != cur => cur = s,
                            _ => break,
                        }
                    }
                }
                self.schedule_fast(&mut st, true, &mut granted);
                self.check_deadlock(&mut st);
            }
            self.flush_grants(true, &granted);
            self.wait_token(rank);
        }
    }

    /// Deliver an envelope to `dst`. Wakes the destination only when it is
    /// parked waiting for exactly this `(src, tag)` — a non-matching arrival
    /// queues silently, sparing the futile wake/stash/re-block round-trip the
    /// thread engine pays. On the fast path a non-matching send never takes
    /// the scheduler lock at all.
    pub(crate) fn post(&self, dst: usize, env: Envelope) {
        match self.mode {
            SchedMode::Classic => self.post_classic(dst, env),
            SchedMode::Fast => self.post_fast(dst, env),
        }
    }

    fn post_classic(&self, dst: usize, env: Envelope) {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        match st.ranks[dst].status {
            Status::Done => panic!(
                "rank {} sent to rank {dst} (tag {}), which already finished — \
                 message can never be received",
                env.src, env.tag
            ),
            Status::RecvWait { src, tag } if src == env.src && tag == env.tag => {
                let clock = st.ranks[dst].clock;
                st.ranks[dst].inbox.push_back(env);
                st.ranks[dst].status = Status::Ready;
                st.ready.push(Reverse(ReadyKey { clock, rank: dst }));
                self.schedule(&mut st);
            }
            _ => st.ranks[dst].inbox.push_back(env),
        }
    }

    fn post_fast(&self, dst: usize, env: Envelope) {
        if self.fault_flag.load(Ordering::Relaxed) {
            cascade();
        }
        let claimed = {
            let mut ib = self.inboxes[dst].lock();
            if ib.done {
                panic!(
                    "rank {} sent to rank {dst} (tag {}), which already finished — \
                     message can never be received",
                    env.src, env.tag
                );
            }
            let claim = ib.waiting == Some((env.src, env.tag));
            if claim {
                ib.waiting = None;
            }
            ib.q.push_back(env);
            claim
        };
        if !claimed {
            return;
        }
        let mut granted = Vec::new();
        {
            let mut st = self.state.lock();
            if st.fault.is_some() {
                cascade();
            }
            match st.ranks[dst].status {
                Status::RecvWait { .. } => {
                    let clock = st.ranks[dst].clock;
                    st.ranks[dst].status = Status::Ready;
                    st.ready.push(Reverse(ReadyKey { clock, rank: dst }));
                    self.schedule_fast(&mut st, false, &mut granted);
                }
                // Claimed the wait but the receiver has not parked yet: flag
                // it so its park transaction continues inline instead. The
                // scheduler lock orders the two, so the wakeup cannot be lost.
                _ => {
                    debug_assert_eq!(st.ranks[dst].status, Status::Running);
                    st.wake_pending[dst] = true;
                }
            }
        }
        self.flush_grants(false, &granted);
    }

    /// Barrier rendezvous: fold `value` into the episode maximum; the last
    /// arriver releases everyone with the result snapshot, earlier arrivers
    /// park (`BarrierWait`) and read the snapshot once rescheduled.
    pub(crate) fn barrier_wait(&self, rank: usize, value: f64, clock: f64) -> f64 {
        match self.mode {
            SchedMode::Classic => self.barrier_wait_classic(rank, value, clock),
            SchedMode::Fast => self.barrier_wait_fast(rank, value, clock),
        }
    }

    fn barrier_wait_classic(&self, rank: usize, value: f64, clock: f64) -> f64 {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        st.bar_max = st.bar_max.max(value);
        st.bar_arrived += 1;
        if st.bar_arrived == self.size {
            let result = st.bar_max;
            st.bar_arrived = 0;
            st.bar_max = f64::NEG_INFINITY;
            for r in 0..self.size {
                if st.ranks[r].status == Status::BarrierWait {
                    st.ranks[r].release = result;
                    st.ranks[r].status = Status::Ready;
                    let c = st.ranks[r].clock;
                    st.ready.push(Reverse(ReadyKey { clock: c, rank: r }));
                }
            }
            self.schedule(&mut st);
            result
        } else {
            st.ranks[rank].status = Status::BarrierWait;
            st.ranks[rank].clock = clock;
            st.running -= 1;
            if let Some(m) = &self.metrics {
                m.parks.inc();
                m.parks_barrier.inc();
            }
            st.log_sched(self.sched_trace, clock, rank, SchedKind::BarrierPark);
            self.schedule(&mut st);
            self.check_deadlock(&mut st);
            self.wait_runnable(rank, &mut st);
            st.ranks[rank].release
        }
    }

    fn barrier_wait_fast(&self, rank: usize, value: f64, clock: f64) -> f64 {
        let mut granted = Vec::new();
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        st.bar_max = st.bar_max.max(value);
        st.bar_arrived += 1;
        if st.bar_arrived == self.size {
            let result = st.bar_max;
            st.bar_arrived = 0;
            st.bar_max = f64::NEG_INFINITY;
            // Cohort wakeup: every other rank is parked at this barrier (the
            // episode argument — all `size` arrived, we hold the only token),
            // so no live ready entry can exist and the whole release set can
            // skip the heap: sort once by (clock, rank), append to the FIFO.
            // Anything still queued is a stale targeted-handoff leftover;
            // clear it here so stale entries never outlive a barrier episode.
            debug_assert!(st.cohort.iter().all(|&r| st.ranks[r].status != Status::Ready));
            debug_assert!(st
                .ready
                .iter()
                .all(|&Reverse(k)| st.ranks[k.rank].status != Status::Ready));
            st.ready.clear();
            st.cohort.clear();
            let mut release: Vec<(f64, usize)> = (0..self.size)
                .filter(|&r| st.ranks[r].status == Status::BarrierWait)
                .map(|r| (st.ranks[r].clock, r))
                .collect();
            release.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            if let Some(m) = &self.metrics {
                if !release.is_empty() {
                    m.cohort_size.record(release.len() as u64);
                }
            }
            for &(_, r) in &release {
                st.ranks[r].status = Status::Ready;
                self.release_bits[r].store(result.to_bits(), Ordering::Relaxed);
                st.cohort.push_back(r);
            }
            self.schedule_fast(&mut st, false, &mut granted);
            drop(st);
            self.flush_grants(false, &granted);
            result
        } else {
            st.ranks[rank].status = Status::BarrierWait;
            st.ranks[rank].clock = clock;
            st.running -= 1;
            if let Some(m) = &self.metrics {
                m.parks.inc();
                m.parks_barrier.inc();
            }
            st.log_sched(self.sched_trace, clock, rank, SchedKind::BarrierPark);
            self.note_park_gap();
            self.schedule_fast(&mut st, true, &mut granted);
            self.check_deadlock(&mut st);
            drop(st);
            self.flush_grants(true, &granted);
            self.wait_token(rank);
            f64::from_bits(self.release_bits[rank].load(Ordering::Relaxed))
        }
    }

    /// Rank's closure returned: release its token and let the next rank run.
    /// Remaining blocked ranks (e.g. a recv from this now-finished rank) are
    /// caught by the deadlock check right here.
    pub(crate) fn finish(&self, rank: usize) {
        match self.mode {
            SchedMode::Classic => {
                let mut st = self.state.lock();
                st.ranks[rank].status = Status::Done;
                st.running -= 1;
                st.finished += 1;
                let clock = st.ranks[rank].clock;
                st.log_sched(self.sched_trace, clock, rank, SchedKind::Finish);
                self.schedule(&mut st);
                self.check_deadlock(&mut st);
            }
            SchedMode::Fast => {
                self.inboxes[rank].lock().done = true;
                let mut granted = Vec::new();
                {
                    let mut st = self.state.lock();
                    st.ranks[rank].status = Status::Done;
                    st.running -= 1;
                    st.finished += 1;
                    let clock = st.ranks[rank].clock;
                    st.log_sched(self.sched_trace, clock, rank, SchedKind::Finish);
                    self.schedule_fast(&mut st, false, &mut granted);
                    self.check_deadlock(&mut st);
                }
                self.flush_grants(false, &granted);
            }
        }
    }

    /// Rank's closure panicked: record the fault (unless one is already set —
    /// then this unwind is itself a cascade and the counters were already
    /// settled) and wake every continuation so the cluster tears down.
    pub(crate) fn rank_panicked(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.fault.is_none() {
            st.fault = Some(format!("rank {rank} panicked; aborting the run"));
            st.ranks[rank].status = Status::Done;
            st.running -= 1;
        }
        self.fault_flag.store(true, Ordering::SeqCst);
        self.wake_everyone();
    }

    /// The fault report, if the run was torn down (deadlock or rank panic).
    pub(crate) fn fault_message(&self) -> Option<String> {
        self.state.lock().fault.clone()
    }
}

/// Human-readable exact-deadlock report: every blocked rank with what it waits
/// for, plus the recv wait-for cycle (or chain) starting from the lowest
/// blocked rank.
fn deadlock_report(st: &CoreState, size: usize) -> String {
    const MAX_LISTED: usize = 16;
    let blocked: Vec<usize> = (0..size)
        .filter(|&r| matches!(st.ranks[r].status, Status::RecvWait { .. } | Status::BarrierWait))
        .collect();
    let mut msg = format!(
        "simnet deadlock (exact): no rank can ever run again — {} blocked, {} finished, {size} total\n",
        blocked.len(),
        st.finished
    );
    for &r in blocked.iter().take(MAX_LISTED) {
        match st.ranks[r].status {
            Status::RecvWait { src, tag } => {
                msg.push_str(&format!(
                    "  rank {r}: blocked in recv(src={src}, tag={tag}) at t={:.6e}\n",
                    st.ranks[r].clock
                ));
            }
            Status::BarrierWait => {
                msg.push_str(&format!(
                    "  rank {r}: blocked in barrier ({}/{size} arrived) at t={:.6e}\n",
                    st.bar_arrived, st.ranks[r].clock
                ));
            }
            _ => {}
        }
    }
    if blocked.len() > MAX_LISTED {
        msg.push_str(&format!("  ... and {} more blocked ranks\n", blocked.len() - MAX_LISTED));
    }
    // Walk the recv wait-for graph from the lowest recv-blocked rank.
    if let Some(&start) =
        blocked.iter().find(|&&r| matches!(st.ranks[r].status, Status::RecvWait { .. }))
    {
        let mut chain = vec![start];
        let mut cur = start;
        loop {
            let Status::RecvWait { src, .. } = st.ranks[cur].status else {
                msg.push_str(&format!(
                    "  wait chain: {} — rank {cur} is blocked in {}\n",
                    fmt_chain(&chain),
                    match st.ranks[cur].status {
                        Status::BarrierWait => "the barrier".to_string(),
                        other => format!("{other:?}"),
                    }
                ));
                break;
            };
            if let Some(pos) = chain.iter().position(|&r| r == src) {
                let mut cycle = chain[pos..].to_vec();
                cycle.push(src);
                msg.push_str(&format!("  recv cycle: {}\n", fmt_chain(&cycle)));
                break;
            }
            if st.ranks[src].status == Status::Done {
                chain.push(src);
                msg.push_str(&format!(
                    "  wait chain: {} — rank {src} already finished and will never send\n",
                    fmt_chain(&chain)
                ));
                break;
            }
            chain.push(src);
            cur = src;
        }
    }
    msg.push_str("(deadline-free detection: the event engine needs no watchdog)");
    msg
}

fn fmt_chain(chain: &[usize]) -> String {
    chain.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_key_orders_by_clock_then_rank() {
        let a = ReadyKey { clock: 1.0, rank: 5 };
        let b = ReadyKey { clock: 2.0, rank: 0 };
        let c = ReadyKey { clock: 1.0, rank: 6 };
        assert!(a < b);
        assert!(a < c);
        // total_cmp gives a total order even for exotic floats.
        let nz = ReadyKey { clock: -0.0, rank: 0 };
        let pz = ReadyKey { clock: 0.0, rank: 0 };
        assert!(nz < pz);
    }

    #[test]
    fn engine_from_env_defaults_to_thread() {
        // The test runner may set SIMNET_ENGINE; only assert the unset/invalid
        // fallback via the parse logic on a scratch value.
        assert_eq!(Engine::default(), Engine::Thread);
    }

    #[test]
    fn sched_mode_defaults_to_fast() {
        assert_eq!(SchedMode::default(), SchedMode::Fast);
    }

    #[test]
    fn heap_pops_lowest_clock_first() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(ReadyKey { clock: 3.0, rank: 0 }));
        heap.push(Reverse(ReadyKey { clock: 1.0, rank: 2 }));
        heap.push(Reverse(ReadyKey { clock: 1.0, rank: 1 }));
        let order: Vec<usize> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(k)| k.rank)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn cohort_refill_pops_equal_timestamp_run() {
        let core = EventCore::new(4, 1, SchedMode::Fast, None, false);
        let mut st = core.state.lock();
        st.ready.clear();
        st.ready.push(Reverse(ReadyKey { clock: 1.0, rank: 3 }));
        st.ready.push(Reverse(ReadyKey { clock: 1.0, rank: 1 }));
        st.ready.push(Reverse(ReadyKey { clock: 2.0, rank: 0 }));
        for r in 0..4 {
            st.ranks[r].clock = if r == 0 { 2.0 } else { 1.0 };
        }
        // First pop pulls the whole t=1.0 run: head 1, cohort holds 3.
        let head = core.pop_next_ready(&mut st).unwrap();
        assert_eq!((head.rank, head.clock), (1, 1.0));
        assert_eq!(st.cohort, [3]);
        assert_eq!(st.ready.len(), 1);
        // Cohort drains FIFO before the heap is touched again.
        assert_eq!(core.pop_next_ready(&mut st).unwrap().rank, 3);
        assert_eq!(core.pop_next_ready(&mut st).unwrap().rank, 0);
        assert!(core.pop_next_ready(&mut st).is_none());
    }
}
