//! Execution engines for [`crate::Cluster`]: thread-per-rank vs discrete-event.
//!
//! ## Why two engines
//!
//! The original engine gives every rank its own OS thread and lets the kernel
//! schedule them; correctness does not depend on the interleaving (clock
//! arithmetic only reads per-rank program order and matched message order), but
//! the *cost* of the interleaving grows with P: at 1024+ ranks the host
//! scheduler thrashes between hundreds of runnable threads, blocked receives
//! burn wakeups, and sweeps that the paper runs at 256 nodes become intractable
//! in one process.
//!
//! The discrete-event engine ([`EventCore`]) keeps one thread per rank — the
//! thread *is* the rank's continuation, so the blocking [`crate::Comm`] API is
//! preserved verbatim — but hands out **run tokens** from a virtual-time
//! scheduler instead of letting the OS pick. At most `workers` ranks are
//! runnable at any instant; every blocking point (recv with an empty inbox,
//! barrier arrival) parks the rank inside the core and releases its token, and
//! message delivery / barrier release marks ranks ready again. The ready queue
//! is ordered by `(virtual clock, rank id)` — lowest clock first, rank id as
//! the tie-break — so execution tracks the modeled timeline, which keeps
//! cross-rank backlogs small and makes progress order reproducible.
//!
//! Because both engines run the same per-rank programs over the same matched
//! message streams, they produce **bit-identical** clocks, gradients and
//! ledgers; the thread engine stays available as a differential oracle
//! (`SIMNET_ENGINE=thread`, the default).
//!
//! ## Exact deadlock detection
//!
//! The thread engine can only detect a deadlock with a wall-clock watchdog.
//! The event core knows the whole cluster state: if no rank holds a run token,
//! the ready queue is empty and unfinished ranks remain, the simulation cannot
//! ever progress. The core then records a fault report that names every
//! blocked rank and walks the recv wait-for graph to print the cycle, and all
//! parked ranks unwind quietly (see [`Cascade`]).

use crate::comm::Tag;
use crate::envelope::Envelope;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cap on the optional scheduler event log: a runaway sweep must not hoard
/// unbounded memory just because scheduler tracing was left on.
const SCHED_LOG_MAX: usize = 1 << 20;

/// One scheduler decision of the event engine, recorded (only) when
/// [`crate::Cluster::with_sched_trace`] is on — the profiling signal for the
/// P ≥ 1024 run-token hand-off investigation. Exported to its own track by
/// [`crate::trace::export_chrome`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedEvent {
    /// The rank's virtual clock at the decision.
    pub vclock: f64,
    /// The rank the decision concerns.
    pub rank: usize,
    /// What the scheduler did.
    pub kind: SchedKind,
}

/// The kind of a [`SchedEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// A run token was granted to the rank.
    Grant,
    /// The rank parked in a blocking receive (token released).
    RecvPark,
    /// The rank parked at the cluster barrier (token released).
    BarrierPark,
    /// The rank's closure returned.
    Finish,
}

/// Scheduler metric handles (Host class: token traffic and queue depths are
/// properties of the simulating host's execution, not of modeled time).
#[derive(Clone)]
pub(crate) struct EngineMetrics {
    token_grants: obs::Counter,
    parks: obs::Counter,
    ready_depth_max: obs::Gauge,
}

impl EngineMetrics {
    pub(crate) fn new(reg: &obs::Registry) -> Self {
        use obs::Class::Host;
        Self {
            token_grants: reg.counter("engine.token_grants", Host),
            parks: reg.counter("engine.parks", Host),
            ready_depth_max: reg.gauge("engine.ready_depth_max", Host),
        }
    }
}

/// Which execution core a [`crate::Cluster`] uses to run rank programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// One OS thread per rank, scheduled by the kernel; wall-clock watchdogs
    /// detect deadlocks. The original engine, kept as a differential oracle.
    #[default]
    Thread,
    /// Discrete-event core: one thread per rank as a parked continuation, a
    /// bounded set of run tokens granted in virtual-time order, and exact
    /// (watchdog-free) deadlock detection. Required for P ≳ 1024 sweeps.
    Event,
}

impl Engine {
    /// Engine selected by `SIMNET_ENGINE` (`thread` | `event`, case-insensitive);
    /// unset or invalid values fall back to [`Engine::Thread`].
    pub fn from_env() -> Self {
        match std::env::var("SIMNET_ENGINE") {
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "event" => Engine::Event,
                "thread" | "" => Engine::Thread,
                _ => {
                    eprintln!(
                        "simnet: ignoring invalid SIMNET_ENGINE={raw:?} (want `thread` or `event`)"
                    );
                    Engine::Thread
                }
            },
            Err(_) => Engine::Thread,
        }
    }
}

/// Default worker count for the event engine: `SIMNET_WORKERS`, else the
/// machine's available parallelism. Determinism never depends on this — it
/// only bounds how many rank continuations may run concurrently.
pub(crate) fn default_workers() -> usize {
    if let Ok(raw) = std::env::var("SIMNET_WORKERS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("simnet: ignoring invalid SIMNET_WORKERS={raw:?} (want a positive int)"),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Panic payload for ranks aborted *because some other rank failed* (panic or
/// detected deadlock). Unwinding with `resume_unwind` and this marker skips
/// the panic hook, so a 1000-rank cascade prints nothing; the cluster joiner
/// recognizes the marker and reports the original fault instead.
pub(crate) struct Cascade;

/// Quietly unwind the current rank as a casualty of another rank's fault.
pub(crate) fn cascade() -> ! {
    std::panic::resume_unwind(Box::new(Cascade))
}

/// Ready-queue key: virtual clock first (total order via `total_cmp`), rank id
/// as the deterministic tie-break. Wrapped in `Reverse` inside the heap so the
/// *lowest* virtual time is granted first.
#[derive(Clone, Copy, Debug)]
struct ReadyKey {
    clock: f64,
    rank: usize,
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ReadyKey {}
impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.clock.total_cmp(&other.clock).then(self.rank.cmp(&other.rank))
    }
}

/// What a rank continuation is doing, from the scheduler's point of view.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    /// In the ready queue, waiting for a run token.
    Ready,
    /// Holds a run token; its thread is executing user code.
    Running,
    /// Parked in a blocking receive for `(src, tag)` with an empty inbox.
    RecvWait { src: usize, tag: Tag },
    /// Parked at the cluster barrier.
    BarrierWait,
    /// Returned from its closure (or was torn down by a fault).
    Done,
}

struct RankSlot {
    status: Status,
    /// Virtual clock at the last park — the ready-queue priority when woken.
    clock: f64,
    /// Messages delivered to this rank, in arrival order (the event-engine
    /// analogue of the thread engine's channel).
    inbox: VecDeque<Envelope>,
    /// Barrier result snapshot, written by the releasing rank.
    release: f64,
}

struct CoreState {
    ranks: Vec<RankSlot>,
    ready: BinaryHeap<Reverse<ReadyKey>>,
    /// Ranks currently holding a run token.
    running: usize,
    /// Ranks whose closure returned.
    finished: usize,
    /// Barrier arrivals this episode (no generation counter needed: an episode
    /// cannot restart until every rank it released has resumed past the point
    /// where its `release` snapshot was read — all `size` ranks must re-arrive
    /// first, and a released-but-unresumed rank cannot arrive).
    bar_arrived: usize,
    bar_max: f64,
    /// First fault (rank panic or detected deadlock); once set, every rank
    /// that touches the core unwinds with [`Cascade`].
    fault: Option<String>,
    /// Scheduler decisions, recorded only when tracing is on (bounded by
    /// [`SCHED_LOG_MAX`]).
    sched: Vec<SchedEvent>,
}

impl CoreState {
    fn log_sched(&mut self, on: bool, vclock: f64, rank: usize, kind: SchedKind) {
        if on && self.sched.len() < SCHED_LOG_MAX {
            self.sched.push(SchedEvent { vclock, rank, kind });
        }
    }
}

/// Shared state of the discrete-event engine for one [`crate::Cluster::run`].
pub(crate) struct EventCore {
    size: usize,
    workers: usize,
    /// Scheduler metric handles; `None` when the run has no registry wired.
    metrics: Option<EngineMetrics>,
    /// Whether scheduler decisions are logged for trace export.
    sched_trace: bool,
    state: Mutex<CoreState>,
    /// One condvar per rank: each parked continuation waits only on its own.
    cvs: Vec<Condvar>,
}

impl EventCore {
    pub(crate) fn new(
        size: usize,
        workers: usize,
        metrics: Option<EngineMetrics>,
        sched_trace: bool,
    ) -> Self {
        assert!(size >= 1 && workers >= 1);
        let ranks = (0..size)
            .map(|_| RankSlot {
                status: Status::Ready,
                clock: 0.0,
                inbox: VecDeque::new(),
                release: 0.0,
            })
            .collect();
        let ready = (0..size).map(|rank| Reverse(ReadyKey { clock: 0.0, rank })).collect();
        Self {
            size,
            workers,
            metrics,
            sched_trace,
            state: Mutex::new(CoreState {
                ranks,
                ready,
                running: 0,
                finished: 0,
                bar_arrived: 0,
                bar_max: f64::NEG_INFINITY,
                fault: None,
                sched: Vec::new(),
            }),
            cvs: (0..size).map(|_| Condvar::new()).collect(),
        }
    }

    /// Grant run tokens to the lowest-clock ready ranks while slots are free.
    fn schedule(&self, st: &mut CoreState) {
        if let Some(m) = &self.metrics {
            m.ready_depth_max.set_max(st.ready.len() as u64);
        }
        while st.running < self.workers {
            let Some(Reverse(key)) = st.ready.pop() else { break };
            debug_assert_eq!(st.ranks[key.rank].status, Status::Ready);
            st.ranks[key.rank].status = Status::Running;
            st.running += 1;
            if let Some(m) = &self.metrics {
                m.token_grants.inc();
            }
            st.log_sched(self.sched_trace, key.clock, key.rank, SchedKind::Grant);
            self.cvs[key.rank].notify_one();
        }
    }

    /// Drain the scheduler event log (empty unless tracing was on).
    pub(crate) fn take_sched(&self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.state.lock().sched)
    }

    /// If nothing can ever run again, record the deadlock fault and wake every
    /// continuation so the run tears down immediately (no watchdog involved).
    fn check_deadlock(&self, st: &mut CoreState) {
        if st.fault.is_some() || st.running > 0 || !st.ready.is_empty() || st.finished >= self.size
        {
            return;
        }
        st.fault = Some(deadlock_report(st, self.size));
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    /// Block until this rank holds a run token; cascades if a fault lands first.
    fn wait_runnable(&self, rank: usize, st: &mut MutexGuard<'_, CoreState>) {
        loop {
            if st.fault.is_some() {
                cascade();
            }
            if st.ranks[rank].status == Status::Running {
                return;
            }
            self.cvs[rank].wait(st);
        }
    }

    /// Called once by each rank thread before running user code: waits for the
    /// initial run-token grant (all ranks start Ready at clock 0).
    pub(crate) fn start(&self, rank: usize) {
        let mut st = self.state.lock();
        self.schedule(&mut st);
        self.wait_runnable(rank, &mut st);
    }

    /// Pop the next envelope delivered to `rank` (arrival order), parking the
    /// continuation — token released, status `RecvWait(src, tag)` — whenever
    /// the inbox is empty. The caller matches/stashes envelopes exactly like
    /// the thread engine drains its channel, so the matched message order (and
    /// with it every clock) is identical across engines.
    pub(crate) fn next_envelope(&self, rank: usize, src: usize, tag: Tag, clock: f64) -> Envelope {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        loop {
            if let Some(env) = st.ranks[rank].inbox.pop_front() {
                return env;
            }
            st.ranks[rank].status = Status::RecvWait { src, tag };
            st.ranks[rank].clock = clock;
            st.running -= 1;
            if let Some(m) = &self.metrics {
                m.parks.inc();
            }
            st.log_sched(self.sched_trace, clock, rank, SchedKind::RecvPark);
            self.schedule(&mut st);
            self.check_deadlock(&mut st);
            self.wait_runnable(rank, &mut st);
        }
    }

    /// Deliver an envelope to `dst`. Wakes the destination only when it is
    /// parked waiting for exactly this `(src, tag)` — a non-matching arrival
    /// queues silently, sparing the futile wake/stash/re-block round-trip the
    /// thread engine pays.
    pub(crate) fn post(&self, dst: usize, env: Envelope) {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        match st.ranks[dst].status {
            Status::Done => panic!(
                "rank {} sent to rank {dst} (tag {}), which already finished — \
                 message can never be received",
                env.src, env.tag
            ),
            Status::RecvWait { src, tag } if src == env.src && tag == env.tag => {
                let clock = st.ranks[dst].clock;
                st.ranks[dst].inbox.push_back(env);
                st.ranks[dst].status = Status::Ready;
                st.ready.push(Reverse(ReadyKey { clock, rank: dst }));
                self.schedule(&mut st);
            }
            _ => st.ranks[dst].inbox.push_back(env),
        }
    }

    /// Barrier rendezvous: fold `value` into the episode maximum; the last
    /// arriver releases everyone with the result snapshot, earlier arrivers
    /// park (`BarrierWait`) and read the snapshot once rescheduled.
    pub(crate) fn barrier_wait(&self, rank: usize, value: f64, clock: f64) -> f64 {
        let mut st = self.state.lock();
        if st.fault.is_some() {
            cascade();
        }
        st.bar_max = st.bar_max.max(value);
        st.bar_arrived += 1;
        if st.bar_arrived == self.size {
            let result = st.bar_max;
            st.bar_arrived = 0;
            st.bar_max = f64::NEG_INFINITY;
            for r in 0..self.size {
                if st.ranks[r].status == Status::BarrierWait {
                    st.ranks[r].release = result;
                    st.ranks[r].status = Status::Ready;
                    let c = st.ranks[r].clock;
                    st.ready.push(Reverse(ReadyKey { clock: c, rank: r }));
                }
            }
            self.schedule(&mut st);
            result
        } else {
            st.ranks[rank].status = Status::BarrierWait;
            st.ranks[rank].clock = clock;
            st.running -= 1;
            if let Some(m) = &self.metrics {
                m.parks.inc();
            }
            st.log_sched(self.sched_trace, clock, rank, SchedKind::BarrierPark);
            self.schedule(&mut st);
            self.check_deadlock(&mut st);
            self.wait_runnable(rank, &mut st);
            st.ranks[rank].release
        }
    }

    /// Rank's closure returned: release its token and let the next rank run.
    /// Remaining blocked ranks (e.g. a recv from this now-finished rank) are
    /// caught by the deadlock check right here.
    pub(crate) fn finish(&self, rank: usize) {
        let mut st = self.state.lock();
        st.ranks[rank].status = Status::Done;
        st.running -= 1;
        st.finished += 1;
        let clock = st.ranks[rank].clock;
        st.log_sched(self.sched_trace, clock, rank, SchedKind::Finish);
        self.schedule(&mut st);
        self.check_deadlock(&mut st);
    }

    /// Rank's closure panicked: record the fault (unless one is already set —
    /// then this unwind is itself a cascade and the counters were already
    /// settled) and wake every continuation so the cluster tears down.
    pub(crate) fn rank_panicked(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.fault.is_none() {
            st.fault = Some(format!("rank {rank} panicked; aborting the run"));
            st.ranks[rank].status = Status::Done;
            st.running -= 1;
        }
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    /// The fault report, if the run was torn down (deadlock or rank panic).
    pub(crate) fn fault_message(&self) -> Option<String> {
        self.state.lock().fault.clone()
    }
}

/// Human-readable exact-deadlock report: every blocked rank with what it waits
/// for, plus the recv wait-for cycle (or chain) starting from the lowest
/// blocked rank.
fn deadlock_report(st: &CoreState, size: usize) -> String {
    const MAX_LISTED: usize = 16;
    let blocked: Vec<usize> = (0..size)
        .filter(|&r| matches!(st.ranks[r].status, Status::RecvWait { .. } | Status::BarrierWait))
        .collect();
    let mut msg = format!(
        "simnet deadlock (exact): no rank can ever run again — {} blocked, {} finished, {size} total\n",
        blocked.len(),
        st.finished
    );
    for &r in blocked.iter().take(MAX_LISTED) {
        match st.ranks[r].status {
            Status::RecvWait { src, tag } => {
                msg.push_str(&format!(
                    "  rank {r}: blocked in recv(src={src}, tag={tag}) at t={:.6e}\n",
                    st.ranks[r].clock
                ));
            }
            Status::BarrierWait => {
                msg.push_str(&format!(
                    "  rank {r}: blocked in barrier ({}/{size} arrived) at t={:.6e}\n",
                    st.bar_arrived, st.ranks[r].clock
                ));
            }
            _ => {}
        }
    }
    if blocked.len() > MAX_LISTED {
        msg.push_str(&format!("  ... and {} more blocked ranks\n", blocked.len() - MAX_LISTED));
    }
    // Walk the recv wait-for graph from the lowest recv-blocked rank.
    if let Some(&start) =
        blocked.iter().find(|&&r| matches!(st.ranks[r].status, Status::RecvWait { .. }))
    {
        let mut chain = vec![start];
        let mut cur = start;
        loop {
            let Status::RecvWait { src, .. } = st.ranks[cur].status else {
                msg.push_str(&format!(
                    "  wait chain: {} — rank {cur} is blocked in {}\n",
                    fmt_chain(&chain),
                    match st.ranks[cur].status {
                        Status::BarrierWait => "the barrier".to_string(),
                        other => format!("{other:?}"),
                    }
                ));
                break;
            };
            if let Some(pos) = chain.iter().position(|&r| r == src) {
                let mut cycle = chain[pos..].to_vec();
                cycle.push(src);
                msg.push_str(&format!("  recv cycle: {}\n", fmt_chain(&cycle)));
                break;
            }
            if st.ranks[src].status == Status::Done {
                chain.push(src);
                msg.push_str(&format!(
                    "  wait chain: {} — rank {src} already finished and will never send\n",
                    fmt_chain(&chain)
                ));
                break;
            }
            chain.push(src);
            cur = src;
        }
    }
    msg.push_str("(deadline-free detection: the event engine needs no watchdog)");
    msg
}

fn fmt_chain(chain: &[usize]) -> String {
    chain.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_key_orders_by_clock_then_rank() {
        let a = ReadyKey { clock: 1.0, rank: 5 };
        let b = ReadyKey { clock: 2.0, rank: 0 };
        let c = ReadyKey { clock: 1.0, rank: 6 };
        assert!(a < b);
        assert!(a < c);
        // total_cmp gives a total order even for exotic floats.
        let nz = ReadyKey { clock: -0.0, rank: 0 };
        let pz = ReadyKey { clock: 0.0, rank: 0 };
        assert!(nz < pz);
    }

    #[test]
    fn engine_from_env_defaults_to_thread() {
        // The test runner may set SIMNET_ENGINE; only assert the unset/invalid
        // fallback via the parse logic on a scratch value.
        assert_eq!(Engine::default(), Engine::Thread);
    }

    #[test]
    fn heap_pops_lowest_clock_first() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(ReadyKey { clock: 3.0, rank: 0 }));
        heap.push(Reverse(ReadyKey { clock: 1.0, rank: 2 }));
        heap.push(Reverse(ReadyKey { clock: 1.0, rank: 1 }));
        let order: Vec<usize> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(k)| k.rank)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
