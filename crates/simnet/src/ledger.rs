//! Traffic accounting: who sent how many elements, per algorithm phase.
//!
//! The ledger is how Table 1 is *measured* rather than asserted: every point-to-point
//! message logs its element count under the sender's current phase label, and the
//! harness compares aggregate volumes against the paper's analytic formulas.
//!
//! Phase labels are interned to small integer ids on first use, so the
//! per-message `record` path never hashes a string and dynamically built
//! labels (per-bucket, per-layer) cost one allocation for the whole run
//! instead of leaking `&'static str`s.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Aggregated volume for one (rank, phase) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseVolume {
    /// Number of point-to-point messages sent.
    pub messages: u64,
    /// Total 4-byte elements sent (message bodies; headers are latency-only).
    pub elements: u64,
}

/// Interned phase-label id (index into the ledger's name table).
pub(crate) type PhaseId = u16;

#[derive(Default)]
struct Inner {
    /// Interned phase names, indexed by [`PhaseId`].
    names: Vec<String>,
    /// Name → id, for interning.
    ids: HashMap<String, PhaseId>,
    /// (rank, phase id) → volume.
    cells: HashMap<(usize, PhaseId), PhaseVolume>,
}

/// Shared, thread-safe traffic ledger for one simulation run.
#[derive(Default)]
pub struct Ledger {
    inner: Mutex<Inner>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id for this ledger.
    pub(crate) fn intern(&self, name: &str) -> PhaseId {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.ids.get(name) {
            return id;
        }
        let id = PhaseId::try_from(inner.names.len()).expect("more than 65536 phase labels");
        inner.names.push(name.to_string());
        inner.ids.insert(name.to_string(), id);
        id
    }

    pub(crate) fn record(&self, rank: usize, phase: PhaseId, elems: u64) {
        let mut inner = self.inner.lock();
        let cell = inner.cells.entry((rank, phase)).or_default();
        cell.messages += 1;
        cell.elements += elems;
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let inner = self.inner.lock();
        LedgerSnapshot { names: inner.names.clone(), cells: inner.cells.clone() }
    }

    /// Reset all counters (e.g. between warm-up and measured iterations).
    /// Interned labels survive — ids stay valid across the reset.
    pub fn reset(&self) {
        self.inner.lock().cells.clear();
    }
}

/// A point-in-time copy of the ledger, queryable without locking.
#[derive(Clone, Debug, Default)]
pub struct LedgerSnapshot {
    names: Vec<String>,
    cells: HashMap<(usize, PhaseId), PhaseVolume>,
}

impl LedgerSnapshot {
    fn id_of(&self, phase: &str) -> Option<PhaseId> {
        self.names.iter().position(|n| n == phase).map(|i| i as PhaseId)
    }

    /// Total elements sent by `rank` across all phases.
    pub fn rank_elements(&self, rank: usize) -> u64 {
        self.cells.iter().filter(|((r, _), _)| *r == rank).map(|(_, v)| v.elements).sum()
    }

    /// Total elements sent by all ranks in `phase`.
    pub fn phase_elements(&self, phase: &str) -> u64 {
        let Some(id) = self.id_of(phase) else { return 0 };
        self.cells.iter().filter(|((_, p), _)| *p == id).map(|(_, v)| v.elements).sum()
    }

    /// Elements sent by `rank` within `phase`.
    pub fn cell(&self, rank: usize, phase: &str) -> PhaseVolume {
        let Some(id) = self.id_of(phase) else { return PhaseVolume::default() };
        self.cells.get(&(rank, id)).copied().unwrap_or_default()
    }

    /// Total elements sent by all ranks across all phases.
    pub fn total_elements(&self) -> u64 {
        self.cells.values().map(|v| v.elements).sum()
    }

    /// Total messages sent by all ranks across all phases.
    pub fn total_messages(&self) -> u64 {
        self.cells.values().map(|v| v.messages).sum()
    }

    /// Maximum per-rank sent-element count — a load-imbalance indicator.
    pub fn max_rank_elements(&self, size: usize) -> u64 {
        (0..size).map(|r| self.rank_elements(r)).max().unwrap_or(0)
    }

    /// All phase labels that actually recorded traffic, sorted.
    pub fn phases(&self) -> Vec<&str> {
        let mut v: Vec<&str> =
            self.cells.keys().map(|&(_, id)| self.names[id as usize].as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_named(ledger: &Ledger, rank: usize, phase: &str, elems: u64) {
        let id = ledger.intern(phase);
        ledger.record(rank, id, elems);
    }

    #[test]
    fn records_and_aggregates() {
        let ledger = Ledger::new();
        record_named(&ledger, 0, "reduce", 100);
        record_named(&ledger, 0, "reduce", 50);
        record_named(&ledger, 1, "reduce", 30);
        record_named(&ledger, 0, "gather", 7);

        let snap = ledger.snapshot();
        assert_eq!(snap.cell(0, "reduce"), PhaseVolume { messages: 2, elements: 150 });
        assert_eq!(snap.rank_elements(0), 157);
        assert_eq!(snap.phase_elements("reduce"), 180);
        assert_eq!(snap.total_elements(), 187);
        assert_eq!(snap.total_messages(), 4);
        assert_eq!(snap.max_rank_elements(2), 157);
        assert_eq!(snap.phases(), vec!["gather", "reduce"]);
    }

    #[test]
    fn dynamic_labels_intern_to_stable_ids() {
        let ledger = Ledger::new();
        for bucket in 0..3 {
            let label = format!("bucket-{bucket}");
            record_named(&ledger, 0, &label, 10);
            // Re-interning the same dynamic string yields the same id.
            assert_eq!(ledger.intern(&label), bucket as PhaseId);
        }
        let snap = ledger.snapshot();
        assert_eq!(snap.phases(), vec!["bucket-0", "bucket-1", "bucket-2"]);
        assert_eq!(snap.cell(0, "bucket-1").elements, 10);
        assert_eq!(snap.cell(0, "bucket-9"), PhaseVolume::default());
    }

    #[test]
    fn reset_clears_cells_but_keeps_interned_ids() {
        let ledger = Ledger::new();
        let id = ledger.intern("x");
        ledger.record(0, id, 1);
        ledger.reset();
        assert_eq!(ledger.snapshot().total_elements(), 0);
        assert_eq!(ledger.intern("x"), id, "interned ids survive reset");
        ledger.record(0, id, 2);
        assert_eq!(ledger.snapshot().cell(0, "x").elements, 2);
    }
}
