//! Traffic accounting: who sent how many elements, per algorithm phase.
//!
//! The ledger is how Table 1 is *measured* rather than asserted: every point-to-point
//! message logs its element count under the sender's current phase label, and the
//! harness compares aggregate volumes against the paper's analytic formulas.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Aggregated volume for one (rank, phase) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseVolume {
    /// Number of point-to-point messages sent.
    pub messages: u64,
    /// Total 4-byte elements sent (message bodies; headers are latency-only).
    pub elements: u64,
}

#[derive(Default)]
struct Inner {
    /// (rank, phase) → volume.
    cells: HashMap<(usize, &'static str), PhaseVolume>,
}

/// Shared, thread-safe traffic ledger for one simulation run.
#[derive(Default)]
pub struct Ledger {
    inner: Mutex<Inner>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&self, rank: usize, phase: &'static str, elems: u64) {
        let mut inner = self.inner.lock();
        let cell = inner.cells.entry((rank, phase)).or_default();
        cell.messages += 1;
        cell.elements += elems;
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot { cells: self.inner.lock().cells.clone() }
    }

    /// Reset all counters (e.g. between warm-up and measured iterations).
    pub fn reset(&self) {
        self.inner.lock().cells.clear();
    }
}

/// A point-in-time copy of the ledger, queryable without locking.
#[derive(Clone, Debug, Default)]
pub struct LedgerSnapshot {
    cells: HashMap<(usize, &'static str), PhaseVolume>,
}

impl LedgerSnapshot {
    /// Total elements sent by `rank` across all phases.
    pub fn rank_elements(&self, rank: usize) -> u64 {
        self.cells.iter().filter(|((r, _), _)| *r == rank).map(|(_, v)| v.elements).sum()
    }

    /// Total elements sent by all ranks in `phase`.
    pub fn phase_elements(&self, phase: &str) -> u64 {
        self.cells.iter().filter(|((_, p), _)| *p == phase).map(|(_, v)| v.elements).sum()
    }

    /// Elements sent by `rank` within `phase`.
    pub fn cell(&self, rank: usize, phase: &str) -> PhaseVolume {
        self.cells
            .iter()
            .find(|((r, p), _)| *r == rank && *p == phase)
            .map(|(_, v)| *v)
            .unwrap_or_default()
    }

    /// Total elements sent by all ranks across all phases.
    pub fn total_elements(&self) -> u64 {
        self.cells.values().map(|v| v.elements).sum()
    }

    /// Total messages sent by all ranks across all phases.
    pub fn total_messages(&self) -> u64 {
        self.cells.values().map(|v| v.messages).sum()
    }

    /// Maximum per-rank sent-element count — a load-imbalance indicator.
    pub fn max_rank_elements(&self, size: usize) -> u64 {
        (0..size).map(|r| self.rank_elements(r)).max().unwrap_or(0)
    }

    /// All phase labels seen, sorted.
    pub fn phases(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.cells.keys().map(|(_, p)| *p).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let ledger = Ledger::new();
        ledger.record(0, "reduce", 100);
        ledger.record(0, "reduce", 50);
        ledger.record(1, "reduce", 30);
        ledger.record(0, "gather", 7);

        let snap = ledger.snapshot();
        assert_eq!(snap.cell(0, "reduce"), PhaseVolume { messages: 2, elements: 150 });
        assert_eq!(snap.rank_elements(0), 157);
        assert_eq!(snap.phase_elements("reduce"), 180);
        assert_eq!(snap.total_elements(), 187);
        assert_eq!(snap.total_messages(), 4);
        assert_eq!(snap.max_rank_elements(2), 157);
        assert_eq!(snap.phases(), vec!["gather", "reduce"]);
    }

    #[test]
    fn reset_clears() {
        let ledger = Ledger::new();
        ledger.record(0, "x", 1);
        ledger.reset();
        assert_eq!(ledger.snapshot().total_elements(), 0);
    }
}
