//! Cluster runner: executes one closure per rank and collects results, clocks
//! and traffic — on either execution engine (see [`Engine`]).

use crate::comm::{Backend, BarrierState, Comm, PoolBudget, SimMetrics};
use crate::cost::CostModel;
use crate::engine::{
    default_workers, Cascade, Engine, EngineMetrics, EventCore, SchedEvent, SchedMode,
};
use crate::envelope::Envelope;
use crate::ledger::{Ledger, LedgerSnapshot};
use chaos::{ChaosPlan, ChaosView, CompiledChaos};
use crossbeam_channel::unbounded;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use topo::Topology;

/// A simulated cluster of `size` ranks governed by one [`CostModel`].
///
/// `Cluster` is cheap to construct; each [`run`](Self::run) spawns fresh rank threads,
/// a fresh traffic ledger and fresh clocks, so runs are independent and deterministic.
///
/// Two execution engines are available (see [`Engine`]); both produce
/// bit-identical results, clocks and ledgers for the same inputs. The engine is
/// chosen by `SIMNET_ENGINE` at construction and overridden with
/// [`with_engine`](Self::with_engine).
pub struct Cluster {
    size: usize,
    cost: CostModel,
    /// Stack size for rank threads. Training loops keep their state on the heap, but a
    /// little headroom avoids surprises with deep call chains in debug builds.
    stack_bytes: usize,
    /// Wall-clock recv deadline override; `None` defers to `SIMNET_RECV_DEADLOCK_SECS`
    /// (else the 180 s default). Thread engine only — the event engine detects
    /// deadlocks exactly without any wall-clock deadline.
    recv_timeout: Option<Duration>,
    /// Fault/perturbation schedule applied to every run; `None` is the clean model.
    chaos: Option<ChaosPlan>,
    engine: Engine,
    /// Event-engine run-token count; `None` defers to `SIMNET_WORKERS`, else
    /// the machine's available parallelism.
    workers: Option<usize>,
    /// Idle-pool byte budget; `None` defers to `SIMNET_POOL_BUDGET_BYTES`
    /// (else 64 MiB).
    pool_budget_bytes: Option<usize>,
    /// Thread-engine watchdog poll interval; `None` defers to
    /// `SIMNET_WATCHDOG_POLL_MS` (else 50 ms). Unused by the event engine.
    watchdog_poll: Option<Duration>,
    /// Per-run observability override; `None` defers to [`obs::enabled`]
    /// (the `OKTOPK_OBS` kill switch / `obs::set_enabled`).
    obs: Option<bool>,
    /// Record event-engine scheduler decisions for trace export.
    sched_trace: bool,
    /// Event-engine dispatch path; `None` defers to `SIMNET_SCHED` (default
    /// [`SchedMode::Fast`]).
    sched: Option<SchedMode>,
    /// Two-tier topology consulted at every link-charging point and by the
    /// hierarchical collectives. Defaults to `SIMNET_TOPO` (shape-only, so the
    /// session default never shifts modeled clocks); `None` is a flat network.
    topo: Option<Arc<Topology>>,
}

/// Everything a simulation run produces.
pub struct SimReport<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank final virtual times (including pending NIC injection), seconds.
    pub times: Vec<f64>,
    /// Traffic accounting for the whole run.
    pub ledger: LedgerSnapshot,
    /// Metrics recorded during the run (empty values when observability is
    /// disabled). Virtual-class entries are bit-identical across engines.
    pub metrics: obs::MetricsSnapshot,
    /// Event-engine scheduler decisions; non-empty only when
    /// [`Cluster::with_sched_trace`] was on and the run used [`Engine::Event`].
    pub sched: Vec<SchedEvent>,
}

impl<T> SimReport<T> {
    /// The modeled makespan: the time the slowest rank finished.
    pub fn makespan(&self) -> f64 {
        self.times.iter().copied().fold(0.0, f64::max)
    }
}

impl Cluster {
    /// A cluster of `size` ranks under the given cost model, on the engine
    /// selected by `SIMNET_ENGINE` (default: [`Engine::Thread`]).
    pub fn new(size: usize, cost: CostModel) -> Self {
        assert!(size >= 1, "cluster needs at least one rank");
        Self {
            size,
            cost,
            stack_bytes: 8 << 20,
            recv_timeout: None,
            chaos: None,
            engine: Engine::from_env(),
            workers: None,
            pool_budget_bytes: None,
            watchdog_poll: None,
            obs: None,
            sched_trace: false,
            sched: None,
            topo: Topology::from_env().map(|t| Arc::new(*t)),
        }
    }

    /// Install a [`Topology`]: ranks are grouped onto nodes and, when the
    /// topology carries tier parameters, every message is charged the α/β of
    /// its tier (intra- vs inter-node, oversubscription folded into the
    /// inter-node β) instead of the flat cost model. The effective β still
    /// rides each envelope, so sender and receiver charge identically and
    /// chaos per-link degradation composes multiplicatively on top, exactly
    /// as it does on a flat network. Shape-only topologies
    /// ([`Topology::nodes_of`], or the `SIMNET_TOPO` session default) are
    /// timing-neutral: they only affect grouping and the `net.intra_bytes` /
    /// `net.inter_bytes` tier accounting.
    pub fn with_topology(mut self, topo: Topology) -> Self {
        self.topo = Some(Arc::new(topo));
        self
    }

    /// Install a [`ChaosPlan`]: every subsequent [`run`](Self::run) charges
    /// virtual time through the plan's perturbations (stragglers, link
    /// degradation, jitter, pauses). The plan is compiled once per run and
    /// shared read-only by all ranks, so runs stay deterministic — same plan,
    /// same seed ⇒ bit-identical results and virtual-time trajectories, on
    /// either engine.
    ///
    /// # Panics
    /// [`run`](Self::run) panics if the plan names a rank `>= size`.
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Override the wall-clock deadline after which a blocking thread-engine
    /// `recv` (or barrier wait) declares the simulation deadlocked (default:
    /// `SIMNET_RECV_DEADLOCK_SECS`, else 180 s). Tests that *expect* a deadlock
    /// set this low to fail fast; long sweeps on oversubscribed machines raise
    /// it. The event engine ignores it — detection there is exact and instant.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        assert!(timeout > Duration::ZERO, "recv timeout must be positive");
        self.recv_timeout = Some(timeout);
        self
    }

    /// Select the execution engine explicitly, overriding `SIMNET_ENGINE`.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Bound the number of concurrently-runnable rank continuations under the
    /// event engine (default: `SIMNET_WORKERS`, else available parallelism).
    /// Results never depend on this value.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Set the per-rank thread stack size (default 8 MiB). Large-P event-engine
    /// sweeps shrink this: 2048 ranks × 8 MiB reserves 16 GiB of address space
    /// for stacks that mostly sit parked.
    pub fn with_stack_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 64 << 10, "rank stacks below 64 KiB are not survivable");
        self.stack_bytes = bytes;
        self
    }

    /// Cap the total bytes retained *idle* across all ranks' recycled-buffer
    /// free-lists (default: `SIMNET_POOL_BUDGET_BYTES`, else 64 MiB). Memory in
    /// flight is never charged; the cap only stops P=2048 runs from hoarding
    /// O(P · bucket) idle buffers.
    pub fn with_pool_budget(mut self, bytes: usize) -> Self {
        self.pool_budget_bytes = Some(bytes);
        self
    }

    /// Set the thread-engine watchdog poll interval (default:
    /// `SIMNET_WATCHDOG_POLL_MS`, else 50 ms): how quickly a blocked wait
    /// notices a dead peer. The event engine needs no watchdog and skips this
    /// entirely.
    pub fn with_watchdog_poll(mut self, poll: Duration) -> Self {
        assert!(poll > Duration::ZERO, "watchdog poll must be positive");
        self.watchdog_poll = Some(poll);
        self
    }

    /// Force observability on or off for this cluster's runs, overriding the
    /// `OKTOPK_OBS` kill switch and any `obs::set_enabled` override. Tests
    /// that must observe metrics regardless of the environment force `true`;
    /// overhead benchmarks compare `true` vs `false` in one process without
    /// racing on global state.
    pub fn with_obs(mut self, on: bool) -> Self {
        self.obs = Some(on);
        self
    }

    /// Record the event engine's scheduler decisions (token grants, parks,
    /// finishes) for export to the Chrome-trace scheduler track. No effect on
    /// the thread engine, which has no scheduler of its own.
    pub fn with_sched_trace(mut self, on: bool) -> Self {
        self.sched_trace = on;
        self
    }

    /// Select the event engine's dispatch path explicitly, overriding
    /// `SIMNET_SCHED`. [`SchedMode::Classic`] is the kill switch for the
    /// scheduler fast paths; results are bit-identical either way.
    pub fn with_sched(mut self, mode: SchedMode) -> Self {
        self.sched = Some(mode);
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// The engine this cluster runs on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Run `f` on every rank concurrently and gather results.
    ///
    /// `f` receives a mutable [`Comm`]; its return value, the rank's final virtual
    /// time and the global traffic ledger are collected into a [`SimReport`].
    ///
    /// # Panics
    /// Propagates the *originating* rank's panic after all rank threads have
    /// stopped; ranks aborted as casualties of another rank's fault unwind
    /// quietly and are never the reported failure. An exact deadlock detected
    /// by the event engine panics with the full blocked-rank report.
    pub fn run<T, F>(&self, f: F) -> SimReport<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let ledger = Arc::new(Ledger::new());
        let compiled = self.chaos.as_ref().map(|plan| Arc::new(plan.compile(self.size)));
        let budget = Arc::new(PoolBudget::new(
            self.pool_budget_bytes.unwrap_or_else(crate::comm::default_pool_budget_bytes),
        ));
        let obs_on = self.obs.unwrap_or_else(obs::enabled);
        let registry = Arc::new(obs::Registry::with_ranks(self.size, obs_on));
        let metrics = SimMetrics::new(&registry);
        let wall_start = std::time::Instant::now();
        let (slots, panics, fault, sched) = match self.engine {
            Engine::Thread => self.run_threaded(&f, &ledger, compiled, budget, metrics),
            Engine::Event => self.run_event(&f, &ledger, compiled, budget, metrics, &registry),
        };
        if !panics.is_empty() {
            resolve_panics(panics, fault);
        }
        let mut results = Vec::with_capacity(self.size);
        let mut times = Vec::with_capacity(self.size);
        for slot in slots {
            let (r, t) = slot.expect("rank produced no result");
            results.push(r);
            times.push(t);
        }
        // Host-class wall time of the whole run: the simulator-overhead side
        // of the modeled-vs-host split the spans expose per phase.
        registry
            .fcounter("sim.host_wall_ns", obs::Class::Host)
            .add(wall_start.elapsed().as_nanos() as f64);
        registry.counter("sim.runs", obs::Class::Host).inc();
        let metrics = registry.snapshot();
        if obs_on {
            // Fold the finished run into the process-global registry so bench
            // headers can embed one cumulative snapshot.
            obs::global().absorb(&metrics);
        }
        SimReport { results, times, ledger: ledger.snapshot(), metrics, sched }
    }

    /// Thread engine: one kernel-scheduled OS thread per rank, channels for
    /// transport, condvar barrier, wall-clock watchdogs. A rank panic sets the
    /// shared poisoned flag so every blocked peer cascades within one watchdog
    /// poll instead of waiting out its deadline.
    #[allow(clippy::type_complexity)]
    fn run_threaded<T, F>(
        &self,
        f: &F,
        ledger: &Arc<Ledger>,
        compiled: Option<Arc<CompiledChaos>>,
        budget: Arc<PoolBudget>,
        metrics: SimMetrics,
    ) -> RunOut<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let barrier = Arc::new(BarrierState::new());
        let poisoned = Arc::new(AtomicBool::new(false));
        let recv_deadline = self.recv_timeout.unwrap_or_else(crate::comm::default_recv_deadline);
        let poll = self.watchdog_poll.unwrap_or_else(crate::comm::default_watchdog_poll);
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..self.size).map(|_| unbounded::<Envelope>()).unzip();

        let mut slots: Vec<Option<(T, f64)>> = Vec::with_capacity(self.size);
        slots.resize_with(self.size, || None);
        let mut panics: Vec<Box<dyn Any + Send>> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let ledger = Arc::clone(ledger);
                let barrier = Arc::clone(&barrier);
                let budget = Arc::clone(&budget);
                let metrics = metrics.clone();
                let poisoned = Arc::clone(&poisoned);
                let view = compiled.as_ref().map(|c| ChaosView::new(Arc::clone(c), rank));
                let topo = self.topo.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(self.stack_bytes)
                    .spawn_scoped(scope, move || {
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let mut comm = Comm::new(
                                rank,
                                self.size,
                                self.cost,
                                ledger,
                                Backend::Thread {
                                    senders,
                                    inbox,
                                    barrier,
                                    recv_deadline,
                                    poll,
                                    poisoned: Arc::clone(&poisoned),
                                },
                                budget,
                                view,
                                metrics,
                                topo,
                            );
                            let r = f(&mut comm);
                            (r, comm.local_finish_time())
                        }));
                        if result.is_err() {
                            poisoned.store(true, Ordering::Relaxed);
                        }
                        result
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join().unwrap_or_else(Err) {
                    Ok(pair) => slots[rank] = Some(pair),
                    Err(payload) => panics.push(payload),
                }
            }
        });
        (slots, panics, None, Vec::new())
    }

    /// Discrete-event engine: one parked continuation per rank, run tokens
    /// granted in virtual-time order by the shared [`EventCore`], exact
    /// deadlock detection. See [`crate::engine`] for the design.
    #[allow(clippy::type_complexity)]
    fn run_event<T, F>(
        &self,
        f: &F,
        ledger: &Arc<Ledger>,
        compiled: Option<Arc<CompiledChaos>>,
        budget: Arc<PoolBudget>,
        metrics: SimMetrics,
        registry: &obs::Registry,
    ) -> RunOut<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let workers = self.workers.unwrap_or_else(default_workers).max(1);
        let core = Arc::new(EventCore::new(
            self.size,
            workers,
            self.sched.unwrap_or_else(SchedMode::from_env),
            Some(EngineMetrics::new(registry)),
            self.sched_trace,
        ));

        let mut slots: Vec<Option<(T, f64)>> = Vec::with_capacity(self.size);
        slots.resize_with(self.size, || None);
        let mut panics: Vec<Box<dyn Any + Send>> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for rank in 0..self.size {
                let core = Arc::clone(&core);
                let ledger = Arc::clone(ledger);
                let budget = Arc::clone(&budget);
                let metrics = metrics.clone();
                let view = compiled.as_ref().map(|c| ChaosView::new(Arc::clone(c), rank));
                let topo = self.topo.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(self.stack_bytes)
                    .spawn_scoped(scope, move || {
                        core.start(rank);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let mut comm = Comm::new(
                                rank,
                                self.size,
                                self.cost,
                                ledger,
                                Backend::Event { core: Arc::clone(&core) },
                                budget,
                                view,
                                metrics,
                                topo,
                            );
                            let r = f(&mut comm);
                            (r, comm.local_finish_time())
                        }));
                        match result {
                            Ok(pair) => {
                                core.finish(rank);
                                Ok(pair)
                            }
                            Err(payload) => {
                                core.rank_panicked(rank);
                                Err(payload)
                            }
                        }
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join().unwrap_or_else(Err) {
                    Ok(pair) => slots[rank] = Some(pair),
                    Err(payload) => panics.push(payload),
                }
            }
        });
        let fault = core.fault_message();
        let sched = core.take_sched();
        (slots, panics, fault, sched)
    }
}

/// What an engine run hands back to [`Cluster::run`]: per-rank result slots,
/// panic payloads, the core's fault report (event engine), and the scheduler
/// event log (event engine with [`Cluster::with_sched_trace`]).
type RunOut<T> = (Vec<Option<(T, f64)>>, Vec<Box<dyn Any + Send>>, Option<String>, Vec<SchedEvent>);

/// Report a failed run: re-raise the first *originating* panic (in rank
/// order), never a quiet [`Cascade`] casualty. If every payload is a cascade
/// — the event engine detected a deadlock and no rank panicked on its own —
/// panic with the core's fault report instead.
fn resolve_panics(panics: Vec<Box<dyn Any + Send>>, fault: Option<String>) -> ! {
    let mut cascades = Vec::new();
    for payload in panics {
        if payload.is::<Cascade>() {
            cascades.push(payload);
        } else {
            std::panic::resume_unwind(payload);
        }
    }
    if let Some(msg) = fault {
        panic!("{msg}");
    }
    // Only cascades and no stored fault: should be unreachable, but re-raising
    // a casualty beats swallowing a failed run.
    std::panic::resume_unwind(cascades.into_iter().next().expect("resolve_panics without panics"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            comm.compute(2.0);
            comm.rank()
        });
        assert_eq!(report.results, vec![0]);
        assert_eq!(report.times, vec![2.0]);
    }

    #[test]
    fn ring_shift_moves_real_data() {
        let p = 5;
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 0, vec![comm.rank() as u32 * 10]);
            let got: Vec<u32> = comm.recv(left, 0);
            got[0]
        });
        assert_eq!(report.results, vec![40, 0, 10, 20, 30]);
        // 5 messages of one element each.
        assert_eq!(report.ledger.total_messages(), 5);
        assert_eq!(report.ledger.total_elements(), 5);
    }

    #[test]
    fn recv_time_is_alpha_plus_beta_l() {
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None };
        let report = Cluster::new(2, cost).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0.0f32; 10]);
                comm.now()
            } else {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now()
            }
        });
        // Sender clock unchanged (DMA injection)…
        assert_eq!(report.results[0], 0.0);
        // …but its finish time includes the injection port occupancy β·L.
        assert!((report.times[0] - 1.0f64.min(1.0) * 1.0).abs() < 1e-12 || report.times[0] > 0.0);
        // Receiver completes at α + β·L = 1 + 1 = 2.
        assert!((report.results[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_congestion_serializes_reception() {
        // Three senders target rank 0 simultaneously with 100-element messages.
        let cost = CostModel { alpha: 1.0, beta: 0.01, hierarchy: None };
        let report = Cluster::new(4, cost).run(|comm| {
            if comm.rank() == 0 {
                for src in 1..comm.size() {
                    let _: Vec<f32> = comm.recv(src, 0);
                }
                comm.now()
            } else {
                comm.send(0, 0, vec![1.0f32; 100]);
                comm.now()
            }
        });
        // All heads arrive at α = 1.0; bodies serialize: 1.0 + 3·(β·100) = 4.0.
        assert!((report.results[0] - 4.0).abs() < 1e-9, "got {}", report.results[0]);
    }

    #[test]
    fn barrier_aligns_clocks_to_slowest() {
        let cost = CostModel { alpha: 0.5, beta: 0.0, hierarchy: None };
        let report = Cluster::new(4, cost).run(|comm| {
            comm.compute(comm.rank() as f64); // ranks finish at 0,1,2,3
            comm.barrier();
            comm.now()
        });
        // max(3) + α·log2(4) = 3 + 1.0
        for t in &report.results {
            assert!((t - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn max_across_agrees_on_maximum() {
        let report = Cluster::new(3, CostModel::free())
            .run(|comm| comm.max_across(comm.rank() as f64 * 2.0));
        assert_eq!(report.results, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn tags_demultiplex_out_of_order() {
        let report = Cluster::new(2, CostModel::free()).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![1u32]);
                comm.send(1, 20, vec![2u32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b: Vec<u32> = comm.recv(0, 20);
                let a: Vec<u32> = comm.recv(0, 10);
                (b[0] * 10 + a[0]) as usize
            }
        });
        assert_eq!(report.results[1], 21);
    }

    #[test]
    fn short_recv_timeout_turns_deadlock_into_fast_panic() {
        // A recv with no matching send is a deadlock; with the per-cluster timeout
        // lowered it must surface as a panic within the timeout, not after 180 s.
        // (Under the event engine the deadline is irrelevant: detection is exact
        // and immediate.)
        let start = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Cluster::new(2, CostModel::free()).with_recv_timeout(Duration::from_millis(100)).run(
                |comm| {
                    if comm.rank() == 0 {
                        let _: Vec<f32> = comm.recv(1, 0); // never sent
                    }
                },
            )
        }));
        assert!(result.is_err(), "missing send must panic");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "timeout did not take effect: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn rank_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Cluster::new(3, CostModel::free()).run(|comm| {
                if comm.rank() == 1 {
                    panic!("injected failure on rank 1");
                }
                comm.rank()
            })
        }));
        let payload = match result {
            Ok(_) => panic!("a rank's panic must fail the whole run"),
            Err(payload) => payload,
        };
        // The *originating* panic is what propagates, not a quiet cascade.
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "got panic payload: {msg:?}");
    }

    #[test]
    fn peer_death_cascades_blocked_recv_quickly() {
        // Rank 1 dies; rank 0 is blocked receiving from it. The poisoned-flag
        // watchdog (thread engine) or the exact deadlock/fault machinery (event
        // engine) must fail the run in ~one poll interval — no hard-coded
        // sleeps, and nowhere near the 180 s default recv deadline.
        let start = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Cluster::new(2, CostModel::free()).with_watchdog_poll(Duration::from_millis(10)).run(
                |comm| {
                    if comm.rank() == 1 {
                        panic!("early exit");
                    }
                    let _: Vec<f32> = comm.recv(1, 0); // rank 1 never sends
                },
            )
        }));
        assert!(result.is_err(), "peer death must fail the run");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "peer death took too long to cascade: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn hierarchy_makes_intra_node_links_cheaper() {
        // 4 ranks, 2 per node; intra-node 10× faster. Rank 0→1 is intra, 0→2 inter.
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None }.with_hierarchy(2, 10.0);
        assert_eq!(cost.link(0, 1), (0.1, 0.01));
        assert_eq!(cost.link(2, 3), (0.1, 0.01));
        assert_eq!(cost.link(1, 2), (1.0, 0.1));
        let report = Cluster::new(4, cost).run(|comm| match comm.rank() {
            0 => {
                comm.send(1, 0, vec![0.0f32; 10]);
                0.0
            }
            1 => {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now() // intra: 0.1 + 0.01·10 = 0.2
            }
            2 => {
                comm.send(3, 0, vec![0.0f32; 10]);
                0.0
            }
            _ => {
                let _: Vec<f32> = comm.recv(2, 0);
                comm.now() // also intra
            }
        });
        assert!((report.results[1] - 0.2).abs() < 1e-12, "{}", report.results[1]);
        // Cross-node message costs the full price.
        let report = Cluster::new(4, cost).run(|comm| match comm.rank() {
            0 => {
                comm.send(2, 0, vec![0.0f32; 10]);
                0.0
            }
            2 => {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now() // inter: 1.0 + 0.1·10 = 2.0
            }
            _ => 0.0,
        });
        assert!((report.results[2] - 2.0).abs() < 1e-12, "{}", report.results[2]);
    }

    #[test]
    fn free_mode_moves_data_at_zero_cost() {
        let cost = CostModel { alpha: 1.0, beta: 1.0, hierarchy: None };
        let report = Cluster::new(2, cost).run(|comm| {
            comm.set_free_mode(true);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![5.0f32; 100]);
                comm.now()
            } else {
                let v: Vec<f32> = comm.recv(0, 0);
                assert_eq!(v.len(), 100);
                comm.now()
            }
        });
        assert_eq!(report.results, vec![0.0, 0.0]);
        assert_eq!(report.ledger.total_elements(), 0);
    }

    #[test]
    fn determinism_across_runs() {
        let cluster = Cluster::new(6, CostModel::aries());
        let run = || {
            cluster.run(|comm| {
                // All-to-all of variable-size payloads.
                for dst in 0..comm.size() {
                    if dst != comm.rank() {
                        comm.send(dst, 1, vec![comm.rank() as f32; comm.rank() + 1]);
                    }
                }
                let mut sum = 0.0f32;
                for src in 0..comm.size() {
                    if src != comm.rank() {
                        let v: Vec<f32> = comm.recv(src, 1);
                        sum += v.iter().sum::<f32>();
                    }
                }
                comm.barrier();
                (sum, comm.now())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.times, b.times);
        assert_eq!(a.ledger.total_elements(), b.ledger.total_elements());
    }

    #[test]
    fn topology_charges_links_by_tier() {
        // 4 ranks, 2 per node; 0→1 is intra (fast), 0→2 inter (slow).
        let cost = CostModel { alpha: 9.0, beta: 9.0, hierarchy: None }; // must be superseded
        let topo = Topology::two_tier(2, (0.1, 0.01), (1.0, 0.1));
        let run = |dst: usize| {
            Cluster::new(4, cost).with_topology(topo.clone()).run(move |comm| {
                if comm.rank() == 0 {
                    comm.send(dst, 0, vec![0.0f32; 10]);
                    0.0
                } else if comm.rank() == dst {
                    let _: Vec<f32> = comm.recv(0, 0);
                    comm.now()
                } else {
                    0.0
                }
            })
        };
        // Intra: α + β·L = 0.1 + 0.01·10 = 0.2.
        assert!((run(1).results[1] - 0.2).abs() < 1e-12);
        // Inter: 1.0 + 0.1·10 = 2.0.
        assert!((run(2).results[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_multiplies_inter_beta_at_the_charging_point() {
        let cost = CostModel::free();
        let topo = Topology::two_tier(2, (0.0, 0.01), (0.0, 0.1)).with_oversubscription(4.0);
        let report = Cluster::new(4, cost).with_topology(topo).run(|comm| {
            if comm.rank() == 0 {
                comm.send(2, 0, vec![0.0f32; 10]);
                0.0
            } else if comm.rank() == 2 {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now() // 4 × 0.1 × 10 = 4.0
            } else {
                0.0
            }
        });
        assert!((report.results[2] - 4.0).abs() < 1e-12, "{}", report.results[2]);
    }

    #[test]
    fn shape_only_topology_is_timing_neutral() {
        // The SIMNET_TOPO session default installs a shape-only topology; it
        // must never move modeled clocks relative to no topology at all.
        let cost = CostModel { alpha: 1.0, beta: 0.1, hierarchy: None };
        let work = |comm: &mut Comm| {
            for dst in 0..comm.size() {
                if dst != comm.rank() {
                    comm.send(dst, 0, vec![0.0f32; comm.rank() + 3]);
                }
            }
            for src in 0..comm.size() {
                if src != comm.rank() {
                    let _: Vec<f32> = comm.recv(src, 0);
                }
            }
            comm.barrier();
            comm.now()
        };
        let flat = Cluster::new(4, cost).run(|c| work(c));
        let shaped = Cluster::new(4, cost).with_topology(Topology::nodes_of(2)).run(|c| work(c));
        assert_eq!(flat.results, shaped.results);
        assert_eq!(flat.times, shaped.times);
    }

    #[test]
    fn topology_composes_with_chaos_link_degradation() {
        // Chaos multipliers apply to the topology-resolved β, and the effective
        // β rides the envelope so the receiver charges identically.
        use chaos::ChaosPlan;
        let cost = CostModel::free();
        let topo = Topology::two_tier(2, (0.0, 0.01), (0.5, 0.1));
        let plan = ChaosPlan::new(3).degrade_all_links(2.0, 3.0, 0.0, f64::MAX);
        let report = Cluster::new(4, cost).with_topology(topo).with_chaos(plan).run(|comm| {
            if comm.rank() == 0 {
                comm.send(2, 0, vec![0.0f32; 10]);
                0.0
            } else if comm.rank() == 2 {
                let _: Vec<f32> = comm.recv(0, 0);
                comm.now() // α·2 + β·3·L = 1.0 + 0.1·3·10 = 4.0
            } else {
                0.0
            }
        });
        assert!((report.results[2] - 4.0).abs() < 1e-12, "{}", report.results[2]);
    }

    #[test]
    fn tier_byte_counters_split_traffic_by_node() {
        let topo = Topology::nodes_of(2);
        let report =
            Cluster::new(4, CostModel::aries()).with_topology(topo).with_obs(true).run(|comm| {
                // Rank 0 sends 10 elems intra (→1) and 20 elems inter (→2).
                match comm.rank() {
                    0 => {
                        comm.send(1, 0, vec![0.0f32; 10]);
                        comm.send(2, 0, vec![0.0f32; 20]);
                    }
                    1 => {
                        let _: Vec<f32> = comm.recv(0, 0);
                    }
                    2 => {
                        let _: Vec<f32> = comm.recv(0, 0);
                    }
                    _ => {}
                }
                comm.barrier();
            });
        let get = |name: &str| match report.metrics.get(name) {
            Some(obs::MetricValue::PerRankU64(v)) => v.clone(),
            other => panic!("missing {name}: {other:?}"),
        };
        assert_eq!(get("net.intra_bytes")[0], 40);
        assert_eq!(get("net.inter_bytes")[0], 80);
        // Single-rank nodes (the flat-network degenerate shape, pinned so a
        // SIMNET_TOPO session default cannot regroup it): all bytes are inter.
        let flat = Cluster::new(2, CostModel::aries())
            .with_topology(Topology::nodes_of(1))
            .with_obs(true)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![0.0f32; 5]);
                } else {
                    let _: Vec<f32> = comm.recv(0, 0);
                }
                comm.barrier();
            });
        let intra = match flat.metrics.get("net.intra_bytes") {
            Some(obs::MetricValue::PerRankU64(v)) => v.iter().sum::<u64>(),
            _ => panic!("missing net.intra_bytes"),
        };
        let inter = match flat.metrics.get("net.inter_bytes") {
            Some(obs::MetricValue::PerRankU64(v)) => v.iter().sum::<u64>(),
            _ => panic!("missing net.inter_bytes"),
        };
        assert_eq!(intra, 0);
        assert_eq!(inter, 20);
    }
}
