//! Per-rank communicator: typed point-to-point messaging over a modeled network.
//!
//! `Comm` is engine-agnostic: the same blocking API runs on the thread engine
//! (messages over real channels, wall-clock watchdogs) and on the discrete-event
//! engine (messages through [`EventCore`], blocking points park the rank
//! continuation, deadlocks detected exactly). The [`Backend`] enum below is the
//! only place the two transports diverge; every charging path above it is
//! shared, which is what makes the engines bit-identical.

use crate::cost::{CostModel, WireSize};
use crate::engine::{cascade, EventCore};
use crate::envelope::{Envelope, Payload};
use crate::ledger::{Ledger, PhaseId};
use crate::request::{RecvHandle, SendHandle};
use crate::trace::{TraceEvent, TraceKind};
use chaos::ChaosView;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use obs::SpanStack;
use parking_lot::{Condvar, Mutex};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use topo::Topology;

/// Message tag, used to match sends with receives (like an MPI tag).
pub type Tag = u64;

/// Default wall-clock deadline for a `recv` blocking on the real channel before the
/// simulation is declared deadlocked. Virtual time is unrelated; this only catches
/// algorithm bugs in tests. (Thread engine only — the event engine detects
/// deadlocks exactly and ignores this.)
const RECV_DEADLOCK_DEFAULT_SECS: u64 = 180;

/// Default interval at which a blocked thread-engine wait (recv or barrier)
/// wakes to check whether a peer rank died, so one rank's panic cascades in
/// ~this much wall time instead of the full recv deadline.
const WATCHDOG_POLL_DEFAULT_MS: u64 = 50;

/// Default global byte budget for idle pooled buffers across all ranks of one
/// run (64 MiB). At P=2048 an uncapped per-rank pool would retain
/// O(P · MAX_POOL · bucket) bytes of idle free-list memory; the budget bounds
/// the total while leaving small-P runs effectively uncapped.
const POOL_BUDGET_DEFAULT_BYTES: usize = 64 << 20;

/// Most recycled buffers a rank keeps per element type. Sized to cover a full
/// bucket of the bucketed collectives (send a bucket, then drain a bucket):
/// the drain recycles up to a bucket's worth of storage that the next bucket's
/// sends take back out, so buckets up to this deep stay allocation-free in
/// steady state. The pool is a cap, not a preallocation — it only ever holds
/// buffers a `recv` actually returned. The global [`PoolBudget`] additionally
/// caps the *bytes* retained across all ranks.
const MAX_POOL: usize = 32;

/// The recv-deadlock deadline in effect when a [`crate::Cluster`] does not set one
/// explicitly: `SIMNET_RECV_DEADLOCK_SECS` (positive integer seconds, read once at
/// first use), else [`RECV_DEADLOCK_DEFAULT_SECS`]. Long sweeps on loaded machines
/// raise it; tests that *expect* a deadlock lower it to fail fast.
pub(crate) fn default_recv_deadline() -> Duration {
    static SECS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    Duration::from_secs(*SECS.get_or_init(|| match std::env::var("SIMNET_RECV_DEADLOCK_SECS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(s) if s > 0 => s,
            _ => {
                eprintln!(
                    "simnet: ignoring invalid SIMNET_RECV_DEADLOCK_SECS={raw:?} \
                         (want a positive integer of seconds)"
                );
                RECV_DEADLOCK_DEFAULT_SECS
            }
        },
        Err(_) => RECV_DEADLOCK_DEFAULT_SECS,
    }))
}

/// The thread-engine watchdog poll interval when the cluster does not set one:
/// `SIMNET_WATCHDOG_POLL_MS` (positive integer milliseconds), else 50 ms.
/// The event engine has no watchdog to poll — deadlock detection is exact —
/// so this knob is meaningless there.
pub(crate) fn default_watchdog_poll() -> Duration {
    static MS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    Duration::from_millis(*MS.get_or_init(|| match std::env::var("SIMNET_WATCHDOG_POLL_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                eprintln!(
                    "simnet: ignoring invalid SIMNET_WATCHDOG_POLL_MS={raw:?} \
                         (want a positive integer of milliseconds)"
                );
                WATCHDOG_POLL_DEFAULT_MS
            }
        },
        Err(_) => WATCHDOG_POLL_DEFAULT_MS,
    }))
}

/// The idle-pool byte budget when the cluster does not set one:
/// `SIMNET_POOL_BUDGET_BYTES` (non-negative integer), else 64 MiB.
pub(crate) fn default_pool_budget_bytes() -> usize {
    static BYTES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BYTES.get_or_init(|| match std::env::var("SIMNET_POOL_BUDGET_BYTES") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(b) => b,
            Err(_) => {
                eprintln!(
                    "simnet: ignoring invalid SIMNET_POOL_BUDGET_BYTES={raw:?} \
                         (want a non-negative integer of bytes)"
                );
                POOL_BUDGET_DEFAULT_BYTES
            }
        },
        Err(_) => POOL_BUDGET_DEFAULT_BYTES,
    })
}

/// Global byte budget for *idle* pooled buffers, shared by all ranks of one
/// run. A `recycle_*` only retains its buffer if it can reserve the buffer's
/// capacity from the budget; a `take_*` that reuses a pooled buffer releases
/// the reservation. The budget therefore bounds the total bytes sitting idle
/// in free-lists — memory actively in flight is never charged.
///
/// Whether a particular recycle wins the reservation can depend on cross-rank
/// interleaving, but that only decides *allocation reuse*: taken buffers are
/// always cleared, so modeled clocks, data and ledgers are unaffected and
/// cross-engine parity holds regardless.
pub(crate) struct PoolBudget {
    remaining: AtomicI64,
}

impl PoolBudget {
    pub(crate) fn new(bytes: usize) -> Self {
        Self { remaining: AtomicI64::new(bytes.min(i64::MAX as usize) as i64) }
    }

    fn try_reserve(&self, bytes: usize) -> bool {
        let bytes = bytes.min(i64::MAX as usize) as i64;
        let prev = self.remaining.fetch_sub(bytes, Ordering::Relaxed);
        if prev < bytes {
            self.remaining.fetch_add(bytes, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    fn release(&self, bytes: usize) {
        self.remaining.fetch_add(bytes.min(i64::MAX as usize) as i64, Ordering::Relaxed);
    }

    /// Bytes still reservable (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn remaining_bytes(&self) -> i64 {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// Largest cluster for which the per-link byte matrix (`sim.link_bytes`,
/// `P·P` atomic slots) is recorded; beyond it the matrix would dominate the
/// registry's footprint for sweeps that never look at it.
const LINK_MATRIX_MAX_RANKS: usize = 128;

/// Pre-resolved metric handles shared by every rank of one run. All handles
/// are cheap clones of registry-owned atomics; `enabled` mirrors the
/// registry's flag so recording paths can skip even the argument computation
/// when observability is off.
#[derive(Clone)]
pub(crate) struct SimMetrics {
    pub(crate) enabled: bool,
    /// Virtual seconds each rank's clock advanced waiting in `recv`.
    recv_wait: obs::RankF64,
    /// Bytes injected (sent) per rank.
    tx_bytes: obs::RankU64,
    /// Bytes drained (received) per rank.
    rx_bytes: obs::RankU64,
    /// Message body sizes, in elements.
    msg_elems: obs::Histogram,
    /// Cluster barrier entries (counted once per rank per barrier).
    barriers: obs::Counter,
    /// Chaos perturbations actually applied, by kind.
    chaos_straggler: obs::Counter,
    chaos_jitter: obs::Counter,
    chaos_degrade: obs::Counter,
    chaos_pause: obs::Counter,
    /// Row-major `P·P` sent-byte matrix; only for P ≤ [`LINK_MATRIX_MAX_RANKS`].
    link_bytes: Option<obs::RankU64>,
    /// Per-rank bytes sent over intra-node links (topology-classified). Unlike
    /// the `P·P` matrix these tier aggregates are O(P) and recorded at any P.
    intra_bytes: obs::RankU64,
    /// Per-rank bytes sent over inter-node links. With no topology installed
    /// every link is inter-node fabric by convention, so this equals
    /// `sim.tx_bytes` on a flat network.
    inter_bytes: obs::RankU64,
    /// Buffer-pool behavior (Host class: reservation outcomes may depend on
    /// cross-rank interleaving through the shared [`PoolBudget`]).
    pool_hit: obs::Counter,
    pool_miss: obs::Counter,
    pool_drop: obs::Counter,
    pool_idle_max: obs::Gauge,
    ranks: usize,
    /// The run's registry, for layers above simnet (collectives, trainer) to
    /// register their own instruments via [`Comm::obs`].
    registry: Arc<obs::Registry>,
}

impl SimMetrics {
    pub(crate) fn new(reg: &Arc<obs::Registry>) -> Self {
        use obs::Class::{Host, Virtual};
        let ranks = reg.ranks();
        Self {
            enabled: reg.enabled(),
            recv_wait: reg.rank_f64("sim.recv_wait_vsec", Virtual),
            tx_bytes: reg.slots_u64("sim.tx_bytes", Virtual, ranks),
            rx_bytes: reg.slots_u64("sim.rx_bytes", Virtual, ranks),
            msg_elems: reg.histogram("sim.msg_elems", Virtual),
            barriers: reg.counter("sim.barriers", Virtual),
            chaos_straggler: reg.counter("chaos.straggler", Virtual),
            chaos_jitter: reg.counter("chaos.jitter", Virtual),
            chaos_degrade: reg.counter("chaos.degrade", Virtual),
            chaos_pause: reg.counter("chaos.pause", Virtual),
            link_bytes: (ranks <= LINK_MATRIX_MAX_RANKS)
                .then(|| reg.slots_u64("sim.link_bytes", Virtual, ranks * ranks)),
            intra_bytes: reg.slots_u64("net.intra_bytes", Virtual, ranks),
            inter_bytes: reg.slots_u64("net.inter_bytes", Virtual, ranks),
            pool_hit: reg.counter("pool.hit", Host),
            pool_miss: reg.counter("pool.miss", Host),
            pool_drop: reg.counter("pool.recycle_drop", Host),
            pool_idle_max: reg.gauge("pool.idle_bytes_max", Host),
            ranks,
            registry: Arc::clone(reg),
        }
    }
}

/// Latency charged for a dissemination barrier: `α·⌈log2 P⌉`.
fn barrier_latency(cost: &CostModel, size: usize) -> f64 {
    if size <= 1 {
        return 0.0;
    }
    cost.alpha * (usize::BITS - (size - 1).leading_zeros()) as f64
}

pub(crate) struct BarrierState {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

struct BarrierInner {
    arrived: usize,
    generation: u64,
    max_time: f64,
    result: f64,
}

impl BarrierState {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new(BarrierInner {
                arrived: 0,
                generation: 0,
                max_time: f64::NEG_INFINITY,
                result: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all `size` ranks have arrived; returns the maximum of the
    /// submitted clock values. Safe for repeated use (generation-counted).
    /// Waits in `poll`-sized slices so a peer's death (`poisoned`) cascades
    /// quickly instead of hanging, and gives up after `deadline` — a rank that
    /// never arrives is a deadlock just like a missing send.
    fn wait(
        &self,
        size: usize,
        t_in: f64,
        poll: Duration,
        deadline: Duration,
        poisoned: &AtomicBool,
    ) -> f64 {
        let mut inner = self.inner.lock();
        inner.max_time = inner.max_time.max(t_in);
        inner.arrived += 1;
        if inner.arrived == size {
            inner.result = inner.max_time;
            inner.max_time = f64::NEG_INFINITY;
            inner.arrived = 0;
            inner.generation += 1;
            self.cv.notify_all();
            inner.result
        } else {
            let gen = inner.generation;
            let start = Instant::now();
            while inner.generation == gen {
                if poisoned.load(Ordering::Relaxed) {
                    cascade();
                }
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    panic!(
                        "barrier timed out after {deadline:?} — some rank never arrived \
                         (likely deadlock; deadline configurable via Cluster::with_recv_timeout \
                         or SIMNET_RECV_DEADLOCK_SECS)"
                    );
                }
                let step = poll.min(deadline - elapsed);
                self.cv.wait_for(&mut inner, step);
            }
            inner.result
        }
    }
}

/// How a `Comm` talks to the rest of the cluster — the only engine-specific
/// seam. Everything above it (clock charging, matching, pooling, chaos) is
/// shared between engines.
pub(crate) enum Backend {
    /// Thread engine: real channels between OS threads, condvar barrier,
    /// wall-clock watchdogs with a poisoned-flag fast path for peer death.
    Thread {
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        barrier: Arc<BarrierState>,
        /// Wall-clock deadline after which a blocked wait declares deadlock.
        /// Already includes the chaos plan's wall-hold budget (see
        /// [`Comm::new`]), so injected pauses are never misreported.
        recv_deadline: Duration,
        /// Interval at which blocked waits recheck `poisoned`.
        poll: Duration,
        /// Set by the cluster when any rank panics; blocked waits observe it
        /// within one poll interval and cascade instead of hanging.
        poisoned: Arc<AtomicBool>,
    },
    /// Discrete-event engine: the shared core owns delivery, parking, barrier
    /// and exact deadlock detection. No watchdogs, no wall-clock sleeps.
    Event { core: Arc<EventCore> },
}

/// Per-rank free-lists of recycled message buffers.
///
/// Steady-state collectives cycle the same few chunks: a rank sends a buffer,
/// receives one of the same size from a peer, and recycles it for the next
/// send. Pooling turns that cycle allocation-free after warmup.
#[derive(Default)]
struct BufPool {
    f32s: Vec<Vec<f32>>,
    u32s: Vec<Vec<u32>>,
}

/// A rank's handle on the simulated cluster.
///
/// Created by [`crate::Cluster::run`]; one `Comm` lives on each rank thread. All
/// methods that move data also advance the rank's virtual clock according to the
/// [`CostModel`] (see the crate-level docs for the port-serialization semantics).
pub struct Comm {
    rank: usize,
    size: usize,
    cost: CostModel,
    /// Virtual clock: modeled seconds since the start of the run.
    now: f64,
    /// Time at which this rank's NIC injection port becomes free.
    inj_free: f64,
    /// Time at which this rank's NIC reception port becomes free.
    rcv_free: f64,
    /// Interned id of the current phase label (see [`Ledger::intern`]).
    phase_id: PhaseId,
    /// When set, messaging carries data but costs nothing and is not logged —
    /// used by instrumentation (e.g. ξ measurement) that must not perturb the
    /// modeled timings or traffic accounting of the algorithm under study.
    free_mode: bool,
    /// Optional per-rank execution trace (see [`crate::trace`]).
    trace: Option<Vec<TraceEvent>>,
    /// Optional per-rank structured spans (see [`obs::SpanStack`]).
    spans: Option<SpanStack>,
    /// Per-run metric handles (no-ops when observability is disabled).
    metrics: SimMetrics,
    ledger: Arc<Ledger>,
    backend: Backend,
    mailbox: HashMap<(usize, Tag), VecDeque<Envelope>>,
    pool: BufPool,
    pool_budget: Arc<PoolBudget>,
    /// This rank's view of the installed chaos plan, if any. `None` keeps every
    /// charging path bit-identical to the clean model.
    chaos: Option<ChaosView>,
    /// The cluster topology, if any (see [`crate::Cluster::with_topology`]).
    /// Shape-only topologies change grouping and tier accounting but never
    /// link charging; topologies with tier parameters supersede the flat cost
    /// model at every charging point.
    topo: Option<Arc<Topology>>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor, one call site per engine
    pub(crate) fn new(
        rank: usize,
        size: usize,
        cost: CostModel,
        ledger: Arc<Ledger>,
        mut backend: Backend,
        pool_budget: Arc<PoolBudget>,
        chaos: Option<ChaosView>,
        metrics: SimMetrics,
        topo: Option<Arc<Topology>>,
    ) -> Self {
        // A paused peer holds the real channel for up to the plan's wall-hold
        // budget; the thread-engine deadlock watchdog must wait that much
        // longer before declaring the run stuck. (The event engine serves no
        // wall holds and needs no deadline at all.)
        if let Backend::Thread { recv_deadline, .. } = &mut backend {
            *recv_deadline += chaos.as_ref().map(ChaosView::extra_wall_budget).unwrap_or_default();
        }
        let phase_id = ledger.intern("default");
        Self {
            rank,
            size,
            cost,
            now: 0.0,
            inj_free: 0.0,
            rcv_free: 0.0,
            phase_id,
            free_mode: false,
            trace: None,
            spans: None,
            metrics,
            ledger,
            backend,
            mailbox: HashMap::new(),
            pool: BufPool::default(),
            pool_budget,
            chaos,
            topo,
        }
    }

    /// Whether a chaos plan is installed on this rank (via
    /// [`crate::Cluster::with_chaos`]).
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// The cluster topology, if one is installed (explicitly via
    /// [`crate::Cluster::with_topology`] or session-wide via `SIMNET_TOPO`).
    /// Hierarchical collectives consult this to group ranks by node.
    pub fn topology(&self) -> Option<&Topology> {
        self.topo.as_deref()
    }

    /// Effective clean `(α, β)` for the `self.rank → dst` link: the topology's
    /// tier parameters when it carries them (oversubscription folded in), else
    /// the flat cost model (which may itself carry a [`crate::Hierarchy`]).
    fn link_params(&self, dst: usize) -> (f64, f64) {
        self.topo
            .as_ref()
            .and_then(|t| t.tier_params(self.rank, dst))
            .unwrap_or_else(|| self.cost.link(self.rank, dst))
    }

    /// Current virtual time of this rank, in modeled seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Virtual time including pending NIC injection work — the time at which this
    /// rank's participation in the current operation is truly finished.
    pub fn local_finish_time(&self) -> f64 {
        self.now.max(self.inj_free)
    }

    /// Label subsequent traffic in the ledger (e.g. `"split_reduce"`).
    /// Accepts both `&'static str` literals and dynamically built labels
    /// (`String` / `Cow`); names are interned, so dynamic labels cost one
    /// allocation per distinct name per run, not per message.
    pub fn set_phase(&mut self, phase: impl Into<Cow<'static, str>>) {
        self.phase_id = self.ledger.intern(&phase.into());
    }

    /// Start recording this rank's activity (sends, receives, compute, barriers)
    /// on its virtual timeline; collect with [`take_trace`](Self::take_trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace (empty if tracing was never enabled) and stop
    /// recording.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Start recording structured spans on this rank (see [`obs::SpanStack`]):
    /// nested labeled intervals carrying virtual start/end times plus the
    /// wall-clock cost of the simulating host. Collect with
    /// [`take_spans`](Self::take_spans).
    pub fn enable_spans(&mut self) {
        self.spans = Some(SpanStack::new());
    }

    /// Open a span named `name` at the current virtual time. A no-op unless
    /// [`enable_spans`](Self::enable_spans) was called.
    pub fn span_enter(&mut self, name: impl Into<Cow<'static, str>>) {
        let now = self.now;
        if let Some(s) = self.spans.as_mut() {
            s.enter(name, now);
        }
    }

    /// Close the innermost open span at the current virtual time. A no-op
    /// unless spans are enabled.
    ///
    /// # Panics
    /// Panics if spans are enabled and no span is open.
    pub fn span_exit(&mut self) {
        let now = self.now;
        if let Some(s) = self.spans.as_mut() {
            s.exit(now);
        }
    }

    /// Take all closed spans recorded so far (empty if spans were never
    /// enabled). Recording continues; open spans stay open.
    pub fn take_spans(&mut self) -> Vec<obs::SpanEvent> {
        self.spans.as_mut().map(SpanStack::drain).unwrap_or_default()
    }

    /// The run's metrics registry. Layers above simnet (collectives, the
    /// trainer) register their own instruments here; everything lands in the
    /// same [`crate::SimReport::metrics`] snapshot, subject to the same
    /// kill switch and the same [`obs::Class::Virtual`] parity guarantee.
    pub fn obs(&self) -> &obs::Registry {
        &self.metrics.registry
    }

    fn record(&mut self, start: f64, end: f64, kind: TraceKind) {
        self.record_tagged(start, end, kind, false);
    }

    fn record_tagged(&mut self, start: f64, end: f64, kind: TraceKind, perturbed: bool) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent::tagged(start, end, kind, perturbed));
        }
    }

    /// If this rank's virtual clock sits inside an injected pause, jump it to
    /// the resume time, freeze the NIC ports along with it, trace the frozen
    /// interval, and serve any wall-clock hold the plan prescribes. A no-op
    /// without a chaos plan (or outside every pause window).
    ///
    /// The *virtual* charging is identical in both engines; the wall-clock hold
    /// is only served on the thread engine — under the event engine, wall time
    /// is invisible (no watchdogs race against it), so sleeping would waste
    /// real time without changing any modeled quantity.
    fn apply_pause(&mut self) {
        let Some(view) = &self.chaos else { return };
        let resumed = view.unpause(self.now);
        if resumed > self.now {
            let hold = view.wall_hold(resumed - self.now);
            let start = self.now;
            self.now = resumed;
            self.inj_free = self.inj_free.max(resumed);
            self.rcv_free = self.rcv_free.max(resumed);
            self.metrics.chaos_pause.inc();
            self.record_tagged(start, resumed, TraceKind::Pause, true);
            if hold > Duration::ZERO {
                if let Backend::Thread { .. } = self.backend {
                    std::thread::sleep(hold);
                }
            }
        }
    }

    /// Enter/leave free mode: messages still deliver their data, but cost zero
    /// modeled time and are not recorded in the ledger. All ranks involved in an
    /// exchange must agree on the mode.
    pub fn set_free_mode(&mut self, on: bool) {
        self.free_mode = on;
    }

    /// Advance the virtual clock by `seconds` of local computation. Under a
    /// chaos plan the block is stretched by any active straggler factor
    /// (integrated piecewise across window edges) and skips pause intervals.
    pub fn compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        self.apply_pause();
        let start = self.now;
        let clean_end = start + seconds;
        let end = match &self.chaos {
            Some(view) => view.advance_compute(start, seconds),
            None => clean_end,
        };
        self.now = end;
        if end != clean_end {
            self.metrics.chaos_straggler.inc();
        }
        self.record_tagged(start, end, TraceKind::Compute, end != clean_end);
    }

    /// Force the clock to at least `t` (used by higher-level overlap models).
    pub fn advance_to(&mut self, t: f64) {
        self.now = self.now.max(t);
    }

    /// Take a cleared `f32` buffer with capacity ≥ `cap` from this rank's pool,
    /// allocating only if the free-list is empty. Pair with
    /// [`recycle_f32`](Self::recycle_f32) to make steady-state messaging
    /// allocation-free. Reusing a pooled buffer returns its bytes to the
    /// cluster-wide idle-pool budget.
    pub fn take_f32(&mut self, cap: usize) -> Vec<f32> {
        match self.pool.f32s.pop() {
            Some(mut buf) => {
                self.metrics.pool_hit.inc();
                self.pool_budget.release(buf.capacity() * 4);
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => {
                self.metrics.pool_miss.inc();
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a no-longer-needed `f32` buffer (e.g. one a `recv` produced) to
    /// this rank's free-list. Keeps at most a handful per rank, and only while
    /// the cluster-wide idle-pool byte budget has room; otherwise the buffer is
    /// simply dropped (P=2048 runs must not retain O(P · bucket) idle bytes).
    pub fn recycle_f32(&mut self, buf: Vec<f32>) {
        if self.pool.f32s.len() < MAX_POOL
            && buf.capacity() > 0
            && self.pool_budget.try_reserve(buf.capacity() * 4)
        {
            self.pool.f32s.push(buf);
            self.note_idle_bytes();
        } else {
            self.metrics.pool_drop.inc();
        }
    }

    /// Take a cleared `u32` buffer with capacity ≥ `cap` from this rank's pool.
    pub fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        match self.pool.u32s.pop() {
            Some(mut buf) => {
                self.metrics.pool_hit.inc();
                self.pool_budget.release(buf.capacity() * 4);
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => {
                self.metrics.pool_miss.inc();
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a no-longer-needed `u32` buffer to this rank's free-list (same
    /// budget rules as [`recycle_f32`](Self::recycle_f32)).
    pub fn recycle_u32(&mut self, buf: Vec<u32>) {
        if self.pool.u32s.len() < MAX_POOL
            && buf.capacity() > 0
            && self.pool_budget.try_reserve(buf.capacity() * 4)
        {
            self.pool.u32s.push(buf);
            self.note_idle_bytes();
        } else {
            self.metrics.pool_drop.inc();
        }
    }

    /// Track the high-water mark of this rank's idle pooled bytes (an
    /// occupancy signal for the cluster-wide [`PoolBudget`]).
    fn note_idle_bytes(&mut self) {
        if self.metrics.enabled {
            let bytes = self.pooled_bytes() as u64;
            self.metrics.pool_idle_max.set_max(bytes);
        }
    }

    /// Bytes currently held idle in this rank's buffer free-lists.
    pub fn pooled_bytes(&self) -> usize {
        self.pool.f32s.iter().map(|b| b.capacity() * 4).sum::<usize>()
            + self.pool.u32s.iter().map(|b| b.capacity() * 4).sum::<usize>()
    }

    /// Charge the injection port for a message of `elems` elements to `dst` and
    /// return `(head_arrival, effective_beta, perturbed)`. Under a chaos plan
    /// the link's α/β pick up any active degradation multipliers and the head
    /// gains the message's deterministic jitter draw, all evaluated at
    /// injection start; the effective β travels in the envelope so the receiver
    /// charges the same per-element time.
    fn stamp_send(&mut self, dst: usize, elems: u64) -> (f64, f64, bool) {
        assert!(dst < self.size, "send to rank {dst} out of range (size {})", self.size);
        assert_ne!(dst, self.rank, "self-sends are not modeled; keep local data local");
        if self.free_mode {
            // Instrumentation traffic: deliver immediately, charge and log
            // nothing — chaos does not apply (and consumes no jitter draws).
            // The clean β still travels along in case the receiver is not in
            // free mode (modes are supposed to agree, but don't silently
            // change the cost if they don't).
            (f64::NEG_INFINITY, self.link_params(dst).1, false)
        } else {
            self.apply_pause();
            let (alpha, beta) = self.link_params(dst);
            let inj_start = self.now.max(self.inj_free);
            let (alpha_eff, beta_eff, perturbed) = match self.chaos.as_mut() {
                Some(view) => {
                    let p = view.send_perturb(dst, inj_start);
                    // Classify the applied perturbation by kind for the
                    // chaos.* counters: latency jitter vs link degradation
                    // (a draw can carry both; count each once).
                    if p.extra_latency > 0.0 {
                        self.metrics.chaos_jitter.inc();
                    }
                    if p.alpha_mult != 1.0 || p.beta_mult != 1.0 {
                        self.metrics.chaos_degrade.inc();
                    }
                    (alpha * p.alpha_mult + p.extra_latency, beta * p.beta_mult, p.is_perturbed())
                }
                None => (alpha, beta, false),
            };
            self.inj_free = inj_start + beta_eff * elems as f64;
            self.ledger.record(self.rank, self.phase_id, elems);
            if self.metrics.enabled {
                self.metrics.tx_bytes.add(self.rank, elems * 4);
                self.metrics.msg_elems.record(elems);
                if let Some(links) = &self.metrics.link_bytes {
                    links.add(self.rank * self.metrics.ranks + dst, elems * 4);
                }
                // Tier aggregation works at any P (unlike the P·P matrix). A
                // flat network counts everything as inter-node fabric.
                if self.topo.as_ref().is_some_and(|t| t.is_intra(self.rank, dst)) {
                    self.metrics.intra_bytes.add(self.rank, elems * 4);
                } else {
                    self.metrics.inter_bytes.add(self.rank, elems * 4);
                }
            }
            let inj_end = self.inj_free;
            self.record_tagged(inj_start, inj_end, TraceKind::Send { dst, elems }, perturbed);
            (inj_start + alpha_eff, beta_eff, perturbed)
        }
    }

    fn post(
        &mut self,
        dst: usize,
        tag: Tag,
        stamp: (f64, f64, bool),
        elems: u64,
        payload: Payload,
    ) {
        let (head_arrival, beta, perturbed) = stamp;
        let env = Envelope { src: self.rank, tag, head_arrival, elems, beta, perturbed, payload };
        match &self.backend {
            Backend::Thread { senders, .. } => {
                // The channel is unbounded; a send can only fail if the receiver
                // thread is gone, in which case propagating a panic is right.
                senders[dst]
                    .send(env)
                    .unwrap_or_else(|_| panic!("rank {dst} hung up (its thread panicked)"));
            }
            Backend::Event { core } => core.post(dst, env),
        }
    }

    /// Non-blocking typed send to `dst`.
    ///
    /// Charges the injection port for `β·L` and stamps the head arrival time
    /// `α` after injection start; the sender's own clock does not advance
    /// (DMA-style injection), but [`local_finish_time`](Self::local_finish_time)
    /// and [`barrier`](Self::barrier) account for the port occupancy.
    pub fn send<T: WireSize + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        let elems = value.wire_elems();
        let stamp = self.stamp_send(dst, elems);
        self.post(dst, tag, stamp, elems, Payload::from_value(value));
    }

    /// [`send`](Self::send) returning a handle that records when the message
    /// has fully left the injection port. See [`crate::request`] for the
    /// request semantics.
    pub fn isend<T: WireSize + Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> SendHandle {
        self.send(dst, tag, value);
        SendHandle::new(if self.free_mode { self.now } else { self.inj_free })
    }

    /// Send a reference-counted payload: fan-out senders (broadcast relays,
    /// allgather rings) clone the `Arc`, not the buffer, so one allocation
    /// serves every destination. Wire cost is charged per message as usual.
    /// The receiver must use [`recv_shared`](Self::recv_shared).
    pub fn send_shared<T: WireSize + Send + Sync + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: Arc<T>,
    ) {
        let elems = value.wire_elems();
        let stamp = self.stamp_send(dst, elems);
        self.post(dst, tag, stamp, elems, Payload::Shared(value));
    }

    /// Complete the reception of a drained envelope: serialize on the reception
    /// port, advance the clock, and trace the drain interval. The per-element
    /// time comes from the envelope — the sender evaluated any chaos link
    /// degradation at injection start, so both endpoints charge the same β
    /// (bit-identical to `cost.link(src, rank)` when no plan is installed).
    fn complete_reception(&mut self, env: &Envelope) {
        if self.free_mode {
            return;
        }
        self.apply_pause();
        let rcv_start = env.head_arrival.max(self.rcv_free);
        let done = rcv_start + env.beta * env.elems as f64;
        self.rcv_free = done;
        if self.metrics.enabled {
            // Virtual seconds this rank's clock jumps forward waiting for the
            // body to drain — the per-rank recv-wait metric.
            self.metrics.recv_wait.add(self.rank, (done - self.now).max(0.0));
            self.metrics.rx_bytes.add(self.rank, env.elems * 4);
        }
        self.now = self.now.max(done);
        // Clamp the traced pair consistently: a negative head_arrival at t≈0
        // (free-mode sender, zero-α model) must not produce start > end. The
        // same clamp covers perturbed pairs — both glyphs of a Recv stay
        // inside [0, done].
        let start = rcv_start.max(0.0).min(done);
        let (src, elems) = (env.src, env.elems);
        self.record_tagged(start, done.max(start), TraceKind::Recv { src, elems }, env.perturbed);
    }

    /// Modeled completion time this envelope *would* have if resolved now,
    /// without committing the port.
    fn reception_done_time(&self, env: &Envelope) -> f64 {
        if self.free_mode {
            return f64::NEG_INFINITY;
        }
        env.head_arrival.max(self.rcv_free) + env.beta * env.elems as f64
    }

    fn unwrap_payload<T: Send + 'static>(&self, env: Envelope, src: usize, tag: Tag) -> T {
        env.payload.into_value::<T>().unwrap_or_else(|found| {
            panic!(
                "rank {}: type mismatch receiving from {src} tag {tag} (expected {}, found {found})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Blocking typed receive of the next message from `src` with `tag`.
    ///
    /// Completes, in virtual time, when the message body has streamed through this
    /// rank's reception port: `max(head_arrival, port_free) + β·L`.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        let env = self.take_matching(src, tag);
        self.complete_reception(&env);
        self.unwrap_payload(env, src, tag)
    }

    /// Blocking receive of a payload sent with [`send_shared`](Self::send_shared).
    /// Timing semantics are identical to [`recv`](Self::recv).
    pub fn recv_shared<T: Send + Sync + 'static>(&mut self, src: usize, tag: Tag) -> Arc<T> {
        let env = self.take_matching(src, tag);
        self.complete_reception(&env);
        env.payload.into_shared::<T>().unwrap_or_else(|found| {
            panic!(
                "rank {}: type mismatch receiving shared from {src} tag {tag} \
                 (expected Arc<{}>, found {found})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Post a nonblocking receive. Touches no modeled state; the reception port
    /// is charged when the handle is resolved (see [`crate::request`]).
    pub fn irecv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> RecvHandle<T> {
        RecvHandle::new(src, tag)
    }

    /// Resolve a posted receive, blocking until the message is available.
    /// Bit-identical in modeled time to calling [`recv`](Self::recv) here.
    pub fn wait_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> T {
        self.recv(req.src(), req.tag())
    }

    /// Resolve a posted receive only if the message has fully drained by this
    /// rank's current virtual time; otherwise return the handle unresolved and
    /// leave all modeled state untouched.
    ///
    /// May block (wall-clock on the thread engine, parking the continuation on
    /// the event engine) waiting for the matching envelope to appear — that
    /// blocking is invisible in virtual time and is what keeps the outcome
    /// deterministic: the decision depends only on modeled quantities
    /// (`head_arrival`, port state, `now`), never on scheduling.
    pub fn test_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> Result<T, RecvHandle<T>> {
        let (src, tag) = (req.src(), req.tag());
        let env = self.take_matching(src, tag);
        if self.reception_done_time(&env) <= self.now {
            self.complete_reception(&env);
            Ok(self.unwrap_payload(env, src, tag))
        } else {
            // Not drained yet at this rank's virtual time: put the envelope
            // back at the front so matching order is preserved.
            self.mailbox.entry((src, tag)).or_default().push_front(env);
            Err(req)
        }
    }

    /// Combined send-then-receive, the idiom of ring and recursive-doubling steps.
    pub fn sendrecv<S, R>(
        &mut self,
        dst: usize,
        send_tag: Tag,
        value: S,
        src: usize,
        recv_tag: Tag,
    ) -> R
    where
        S: WireSize + Send + 'static,
        R: Send + 'static,
    {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }

    /// Number of `(src, tag)` queues currently stashed in the out-of-order
    /// mailbox. Drained queues are removed, so this returns to zero once all
    /// early arrivals have been received (useful for leak regression tests).
    pub fn pending_mailbox_entries(&self) -> usize {
        self.mailbox.len()
    }

    /// Next envelope delivered to this rank, in arrival order, blocking until
    /// one exists. Thread engine: poll the channel in watchdog slices (peer
    /// death cascades within one `poll`; a quiet `recv_deadline` is a
    /// deadlock). Event engine: the core hands envelopes out and parks the
    /// continuation exactly while the inbox is empty.
    fn next_raw_envelope(&mut self, src: usize, tag: Tag) -> Envelope {
        match &self.backend {
            Backend::Thread { inbox, recv_deadline, poll, poisoned, .. } => {
                let start = Instant::now();
                loop {
                    if poisoned.load(Ordering::Relaxed) {
                        // A peer rank panicked; unwind quietly rather than
                        // waiting out the full deadline on a message that can
                        // never arrive.
                        cascade();
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= *recv_deadline {
                        panic!(
                            "rank {}: recv(src={src}, tag={tag}) timed out after {:?} — likely \
                             deadlock or mismatched send/recv pattern (deadline configurable via \
                             Cluster::with_recv_timeout or SIMNET_RECV_DEADLOCK_SECS)",
                            self.rank, recv_deadline
                        );
                    }
                    let step = (*poll).min(*recv_deadline - elapsed);
                    match inbox.recv_timeout(step) {
                        Ok(env) => return env,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => {
                            if poisoned.load(Ordering::Relaxed) {
                                cascade();
                            }
                            panic!(
                                "rank {}: recv(src={src}, tag={tag}): every peer rank finished \
                                 without sending a matching message",
                                self.rank
                            );
                        }
                    }
                }
            }
            Backend::Event { core } => core.next_envelope(self.rank, src, tag, self.now),
        }
    }

    fn take_matching(&mut self, src: usize, tag: Tag) -> Envelope {
        if let Some(queue) = self.mailbox.get_mut(&(src, tag)) {
            if let Some(env) = queue.pop_front() {
                // Remove drained-empty queues so the mailbox cannot grow
                // monotonically with every (src, tag) pair ever stashed.
                if queue.is_empty() {
                    self.mailbox.remove(&(src, tag));
                }
                return env;
            }
        }
        loop {
            let env = self.next_raw_envelope(src, tag);
            if env.src == src && env.tag == tag {
                return env;
            }
            self.mailbox.entry((env.src, env.tag)).or_default().push_back(env);
        }
    }

    /// Synchronize all ranks; clocks advance to the cluster-wide maximum (including
    /// pending injection work) plus a dissemination-barrier latency of `α·⌈log2 P⌉`.
    pub fn barrier(&mut self) {
        self.apply_pause();
        self.metrics.barriers.inc();
        let t_in = self.local_finish_time();
        let t_max = self.barrier_exchange(t_in);
        self.now = t_max + barrier_latency(&self.cost, self.size);
        self.rcv_free = self.rcv_free.max(self.now);
        self.inj_free = self.inj_free.max(self.now);
        let end = self.now;
        self.record(t_in, end, TraceKind::Barrier);
    }

    /// Synchronize and return the cluster-wide maximum of `value` (no clock cost
    /// beyond a barrier; used by harnesses to agree on a measurement).
    pub fn max_across(&mut self, value: f64) -> f64 {
        // Piggy-back on the barrier machinery by running two rounds: one for the
        // clock, one for the value. Round two reuses the same rendezvous mechanics.
        self.barrier();
        self.barrier_exchange(value)
    }

    /// One barrier rendezvous round: fold `value`, return the cluster maximum.
    fn barrier_exchange(&self, value: f64) -> f64 {
        match &self.backend {
            Backend::Thread { barrier, recv_deadline, poll, poisoned, .. } => {
                barrier.wait(self.size, value, *poll, *recv_deadline, poisoned)
            }
            Backend::Event { core } => core.barrier_wait(self.rank, value, self.now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_latency_is_log2() {
        let c = CostModel { alpha: 1.0, beta: 0.0, hierarchy: None };
        assert_eq!(barrier_latency(&c, 1), 0.0);
        assert_eq!(barrier_latency(&c, 2), 1.0);
        assert_eq!(barrier_latency(&c, 3), 2.0);
        assert_eq!(barrier_latency(&c, 4), 2.0);
        assert_eq!(barrier_latency(&c, 5), 3.0);
        assert_eq!(barrier_latency(&c, 8), 3.0);
        assert_eq!(barrier_latency(&c, 9), 4.0);
    }

    #[test]
    fn pool_budget_reserve_release_roundtrip() {
        let b = PoolBudget::new(100);
        assert!(b.try_reserve(60));
        assert!(!b.try_reserve(60), "over-budget reservation must fail");
        assert!(b.try_reserve(40));
        assert_eq!(b.remaining_bytes(), 0);
        b.release(60);
        assert!(b.try_reserve(60));
    }

    #[test]
    fn zero_pool_budget_rejects_everything() {
        let b = PoolBudget::new(0);
        assert!(!b.try_reserve(1));
        assert!(b.try_reserve(0), "zero-byte reservation is vacuously fine");
    }
}
