//! Per-rank communicator: typed point-to-point messaging over a modeled network.

use crate::cost::{CostModel, WireSize};
use crate::envelope::{Envelope, Payload};
use crate::ledger::Ledger;
use crate::request::{RecvHandle, SendHandle};
use crate::trace::{TraceEvent, TraceKind};
use chaos::ChaosView;
use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Message tag, used to match sends with receives (like an MPI tag).
pub type Tag = u64;

/// Default wall-clock deadline for a `recv` blocking on the real channel before the
/// simulation is declared deadlocked. Virtual time is unrelated; this only catches
/// algorithm bugs in tests.
const RECV_DEADLOCK_DEFAULT_SECS: u64 = 180;

/// Most recycled buffers a rank keeps per element type. Sized to cover a full
/// bucket of the bucketed collectives (send a bucket, then drain a bucket):
/// the drain recycles up to a bucket's worth of storage that the next bucket's
/// sends take back out, so buckets up to this deep stay allocation-free in
/// steady state. The pool is a cap, not a preallocation — it only ever holds
/// buffers a `recv` actually returned.
const MAX_POOL: usize = 32;

/// The recv-deadlock deadline in effect when a [`crate::Cluster`] does not set one
/// explicitly: `SIMNET_RECV_DEADLOCK_SECS` (positive integer seconds, read once at
/// first use), else [`RECV_DEADLOCK_DEFAULT_SECS`]. Long sweeps on loaded machines
/// raise it; tests that *expect* a deadlock lower it to fail fast.
pub(crate) fn default_recv_deadline() -> Duration {
    static SECS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    Duration::from_secs(*SECS.get_or_init(|| match std::env::var("SIMNET_RECV_DEADLOCK_SECS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(s) if s > 0 => s,
            _ => {
                eprintln!(
                    "simnet: ignoring invalid SIMNET_RECV_DEADLOCK_SECS={raw:?} \
                         (want a positive integer of seconds)"
                );
                RECV_DEADLOCK_DEFAULT_SECS
            }
        },
        Err(_) => RECV_DEADLOCK_DEFAULT_SECS,
    }))
}

/// Latency charged for a dissemination barrier: `α·⌈log2 P⌉`.
fn barrier_latency(cost: &CostModel, size: usize) -> f64 {
    if size <= 1 {
        return 0.0;
    }
    cost.alpha * (usize::BITS - (size - 1).leading_zeros()) as f64
}

pub(crate) struct BarrierState {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

struct BarrierInner {
    arrived: usize,
    generation: u64,
    max_time: f64,
    result: f64,
}

impl BarrierState {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new(BarrierInner {
                arrived: 0,
                generation: 0,
                max_time: f64::NEG_INFINITY,
                result: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until all `size` ranks have arrived; returns the maximum of the submitted
    /// clock values. Safe for repeated use (generation-counted).
    fn wait(&self, size: usize, t_in: f64) -> f64 {
        let mut inner = self.inner.lock();
        inner.max_time = inner.max_time.max(t_in);
        inner.arrived += 1;
        if inner.arrived == size {
            inner.result = inner.max_time;
            inner.max_time = f64::NEG_INFINITY;
            inner.arrived = 0;
            inner.generation += 1;
            self.cv.notify_all();
            inner.result
        } else {
            let gen = inner.generation;
            while inner.generation == gen {
                self.cv.wait(&mut inner);
            }
            inner.result
        }
    }
}

/// Per-rank free-lists of recycled message buffers.
///
/// Steady-state collectives cycle the same few chunks: a rank sends a buffer,
/// receives one of the same size from a peer, and recycles it for the next
/// send. Pooling turns that cycle allocation-free after warmup.
#[derive(Default)]
struct BufPool {
    f32s: Vec<Vec<f32>>,
    u32s: Vec<Vec<u32>>,
}

/// A rank's handle on the simulated cluster.
///
/// Created by [`crate::Cluster::run`]; one `Comm` lives on each rank thread. All
/// methods that move data also advance the rank's virtual clock according to the
/// [`CostModel`] (see the crate-level docs for the port-serialization semantics).
pub struct Comm {
    rank: usize,
    size: usize,
    cost: CostModel,
    /// Virtual clock: modeled seconds since the start of the run.
    now: f64,
    /// Time at which this rank's NIC injection port becomes free.
    inj_free: f64,
    /// Time at which this rank's NIC reception port becomes free.
    rcv_free: f64,
    phase: &'static str,
    /// When set, messaging carries data but costs nothing and is not logged —
    /// used by instrumentation (e.g. ξ measurement) that must not perturb the
    /// modeled timings or traffic accounting of the algorithm under study.
    free_mode: bool,
    /// Optional per-rank execution trace (see [`crate::trace`]).
    trace: Option<Vec<TraceEvent>>,
    ledger: Arc<Ledger>,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    mailbox: HashMap<(usize, Tag), VecDeque<Envelope>>,
    pool: BufPool,
    barrier: Arc<BarrierState>,
    /// Wall-clock deadline after which a blocking `recv` declares deadlock.
    /// Already includes the chaos plan's wall-hold budget (see [`Comm::new`]),
    /// so injected pauses are never misreported as deadlocks.
    recv_deadline: Duration,
    /// This rank's view of the installed chaos plan, if any. `None` keeps every
    /// charging path bit-identical to the clean model.
    chaos: Option<ChaosView>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        cost: CostModel,
        ledger: Arc<Ledger>,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        barrier: Arc<BarrierState>,
        recv_deadline: Duration,
        chaos: Option<ChaosView>,
    ) -> Self {
        // A paused peer holds the real channel for up to the plan's wall-hold
        // budget; the deadlock watchdog must wait that much longer before
        // declaring the run stuck.
        let recv_deadline =
            recv_deadline + chaos.as_ref().map(ChaosView::extra_wall_budget).unwrap_or_default();
        Self {
            rank,
            size,
            cost,
            now: 0.0,
            inj_free: 0.0,
            rcv_free: 0.0,
            phase: "default",
            free_mode: false,
            trace: None,
            ledger,
            senders,
            inbox,
            mailbox: HashMap::new(),
            pool: BufPool::default(),
            barrier,
            recv_deadline,
            chaos,
        }
    }

    /// Whether a chaos plan is installed on this rank (via
    /// [`crate::Cluster::with_chaos`]).
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    pub fn cost(&self) -> CostModel {
        self.cost
    }

    /// Current virtual time of this rank, in modeled seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Virtual time including pending NIC injection work — the time at which this
    /// rank's participation in the current operation is truly finished.
    pub fn local_finish_time(&self) -> f64 {
        self.now.max(self.inj_free)
    }

    /// Label subsequent traffic in the ledger (e.g. `"split_reduce"`).
    pub fn set_phase(&mut self, phase: &'static str) {
        self.phase = phase;
    }

    /// Start recording this rank's activity (sends, receives, compute, barriers)
    /// on its virtual timeline; collect with [`take_trace`](Self::take_trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace (empty if tracing was never enabled) and stop
    /// recording.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    fn record(&mut self, start: f64, end: f64, kind: TraceKind) {
        self.record_tagged(start, end, kind, false);
    }

    fn record_tagged(&mut self, start: f64, end: f64, kind: TraceKind, perturbed: bool) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent::tagged(start, end, kind, perturbed));
        }
    }

    /// If this rank's virtual clock sits inside an injected pause, jump it to
    /// the resume time, freeze the NIC ports along with it, trace the frozen
    /// interval, and serve any wall-clock hold the plan prescribes. A no-op
    /// without a chaos plan (or outside every pause window).
    fn apply_pause(&mut self) {
        let Some(view) = &self.chaos else { return };
        let resumed = view.unpause(self.now);
        if resumed > self.now {
            let hold = view.wall_hold(resumed - self.now);
            let start = self.now;
            self.now = resumed;
            self.inj_free = self.inj_free.max(resumed);
            self.rcv_free = self.rcv_free.max(resumed);
            self.record_tagged(start, resumed, TraceKind::Pause, true);
            if hold > Duration::ZERO {
                std::thread::sleep(hold);
            }
        }
    }

    /// Enter/leave free mode: messages still deliver their data, but cost zero
    /// modeled time and are not recorded in the ledger. All ranks involved in an
    /// exchange must agree on the mode.
    pub fn set_free_mode(&mut self, on: bool) {
        self.free_mode = on;
    }

    /// Advance the virtual clock by `seconds` of local computation. Under a
    /// chaos plan the block is stretched by any active straggler factor
    /// (integrated piecewise across window edges) and skips pause intervals.
    pub fn compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        self.apply_pause();
        let start = self.now;
        let clean_end = start + seconds;
        let end = match &self.chaos {
            Some(view) => view.advance_compute(start, seconds),
            None => clean_end,
        };
        self.now = end;
        self.record_tagged(start, end, TraceKind::Compute, end != clean_end);
    }

    /// Force the clock to at least `t` (used by higher-level overlap models).
    pub fn advance_to(&mut self, t: f64) {
        self.now = self.now.max(t);
    }

    /// Take a cleared `f32` buffer with capacity ≥ `cap` from this rank's pool,
    /// allocating only if the free-list is empty. Pair with
    /// [`recycle_f32`](Self::recycle_f32) to make steady-state messaging
    /// allocation-free.
    pub fn take_f32(&mut self, cap: usize) -> Vec<f32> {
        match self.pool.f32s.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a no-longer-needed `f32` buffer (e.g. one a `recv` produced) to
    /// this rank's free-list; keeps at most a handful, drops the rest.
    pub fn recycle_f32(&mut self, buf: Vec<f32>) {
        if self.pool.f32s.len() < MAX_POOL && buf.capacity() > 0 {
            self.pool.f32s.push(buf);
        }
    }

    /// Take a cleared `u32` buffer with capacity ≥ `cap` from this rank's pool.
    pub fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        match self.pool.u32s.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a no-longer-needed `u32` buffer to this rank's free-list.
    pub fn recycle_u32(&mut self, buf: Vec<u32>) {
        if self.pool.u32s.len() < MAX_POOL && buf.capacity() > 0 {
            self.pool.u32s.push(buf);
        }
    }

    /// Charge the injection port for a message of `elems` elements to `dst` and
    /// return `(head_arrival, effective_beta, perturbed)`. Under a chaos plan
    /// the link's α/β pick up any active degradation multipliers and the head
    /// gains the message's deterministic jitter draw, all evaluated at
    /// injection start; the effective β travels in the envelope so the receiver
    /// charges the same per-element time.
    fn stamp_send(&mut self, dst: usize, elems: u64) -> (f64, f64, bool) {
        assert!(dst < self.size, "send to rank {dst} out of range (size {})", self.size);
        assert_ne!(dst, self.rank, "self-sends are not modeled; keep local data local");
        if self.free_mode {
            // Instrumentation traffic: deliver immediately, charge and log
            // nothing — chaos does not apply (and consumes no jitter draws).
            // The clean β still travels along in case the receiver is not in
            // free mode (modes are supposed to agree, but don't silently
            // change the cost if they don't).
            (f64::NEG_INFINITY, self.cost.link(self.rank, dst).1, false)
        } else {
            self.apply_pause();
            let (alpha, beta) = self.cost.link(self.rank, dst);
            let inj_start = self.now.max(self.inj_free);
            let (alpha_eff, beta_eff, perturbed) = match self.chaos.as_mut() {
                Some(view) => {
                    let p = view.send_perturb(dst, inj_start);
                    (alpha * p.alpha_mult + p.extra_latency, beta * p.beta_mult, p.is_perturbed())
                }
                None => (alpha, beta, false),
            };
            self.inj_free = inj_start + beta_eff * elems as f64;
            self.ledger.record(self.rank, self.phase, elems);
            let inj_end = self.inj_free;
            self.record_tagged(inj_start, inj_end, TraceKind::Send { dst, elems }, perturbed);
            (inj_start + alpha_eff, beta_eff, perturbed)
        }
    }

    fn post(
        &mut self,
        dst: usize,
        tag: Tag,
        stamp: (f64, f64, bool),
        elems: u64,
        payload: Payload,
    ) {
        let (head_arrival, beta, perturbed) = stamp;
        let env = Envelope { src: self.rank, tag, head_arrival, elems, beta, perturbed, payload };
        // The channel is unbounded; a send can only fail if the receiver thread
        // panicked, in which case propagating the panic here is the right outcome.
        self.senders[dst]
            .send(env)
            .unwrap_or_else(|_| panic!("rank {dst} hung up (its thread panicked)"));
    }

    /// Non-blocking typed send to `dst`.
    ///
    /// Charges the injection port for `β·L` and stamps the head arrival time
    /// `α` after injection start; the sender's own clock does not advance
    /// (DMA-style injection), but [`local_finish_time`](Self::local_finish_time)
    /// and [`barrier`](Self::barrier) account for the port occupancy.
    pub fn send<T: WireSize + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        let elems = value.wire_elems();
        let stamp = self.stamp_send(dst, elems);
        self.post(dst, tag, stamp, elems, Payload::from_value(value));
    }

    /// [`send`](Self::send) returning a handle that records when the message
    /// has fully left the injection port. See [`crate::request`] for the
    /// request semantics.
    pub fn isend<T: WireSize + Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> SendHandle {
        self.send(dst, tag, value);
        SendHandle::new(if self.free_mode { self.now } else { self.inj_free })
    }

    /// Send a reference-counted payload: fan-out senders (broadcast relays,
    /// allgather rings) clone the `Arc`, not the buffer, so one allocation
    /// serves every destination. Wire cost is charged per message as usual.
    /// The receiver must use [`recv_shared`](Self::recv_shared).
    pub fn send_shared<T: WireSize + Send + Sync + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: Arc<T>,
    ) {
        let elems = value.wire_elems();
        let stamp = self.stamp_send(dst, elems);
        self.post(dst, tag, stamp, elems, Payload::Shared(value));
    }

    /// Complete the reception of a drained envelope: serialize on the reception
    /// port, advance the clock, and trace the drain interval. The per-element
    /// time comes from the envelope — the sender evaluated any chaos link
    /// degradation at injection start, so both endpoints charge the same β
    /// (bit-identical to `cost.link(src, rank)` when no plan is installed).
    fn complete_reception(&mut self, env: &Envelope) {
        if self.free_mode {
            return;
        }
        self.apply_pause();
        let rcv_start = env.head_arrival.max(self.rcv_free);
        let done = rcv_start + env.beta * env.elems as f64;
        self.rcv_free = done;
        self.now = self.now.max(done);
        // Clamp the traced pair consistently: a negative head_arrival at t≈0
        // (free-mode sender, zero-α model) must not produce start > end. The
        // same clamp covers perturbed pairs — both glyphs of a Recv stay
        // inside [0, done].
        let start = rcv_start.max(0.0).min(done);
        let (src, elems) = (env.src, env.elems);
        self.record_tagged(start, done.max(start), TraceKind::Recv { src, elems }, env.perturbed);
    }

    /// Modeled completion time this envelope *would* have if resolved now,
    /// without committing the port.
    fn reception_done_time(&self, env: &Envelope) -> f64 {
        if self.free_mode {
            return f64::NEG_INFINITY;
        }
        env.head_arrival.max(self.rcv_free) + env.beta * env.elems as f64
    }

    fn unwrap_payload<T: Send + 'static>(&self, env: Envelope, src: usize, tag: Tag) -> T {
        env.payload.into_value::<T>().unwrap_or_else(|found| {
            panic!(
                "rank {}: type mismatch receiving from {src} tag {tag} (expected {}, found {found})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Blocking typed receive of the next message from `src` with `tag`.
    ///
    /// Completes, in virtual time, when the message body has streamed through this
    /// rank's reception port: `max(head_arrival, port_free) + β·L`.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        let env = self.take_matching(src, tag);
        self.complete_reception(&env);
        self.unwrap_payload(env, src, tag)
    }

    /// Blocking receive of a payload sent with [`send_shared`](Self::send_shared).
    /// Timing semantics are identical to [`recv`](Self::recv).
    pub fn recv_shared<T: Send + Sync + 'static>(&mut self, src: usize, tag: Tag) -> Arc<T> {
        let env = self.take_matching(src, tag);
        self.complete_reception(&env);
        env.payload.into_shared::<T>().unwrap_or_else(|found| {
            panic!(
                "rank {}: type mismatch receiving shared from {src} tag {tag} \
                 (expected Arc<{}>, found {found})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Post a nonblocking receive. Touches no modeled state; the reception port
    /// is charged when the handle is resolved (see [`crate::request`]).
    pub fn irecv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> RecvHandle<T> {
        RecvHandle::new(src, tag)
    }

    /// Resolve a posted receive, blocking until the message is available.
    /// Bit-identical in modeled time to calling [`recv`](Self::recv) here.
    pub fn wait_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> T {
        self.recv(req.src(), req.tag())
    }

    /// Resolve a posted receive only if the message has fully drained by this
    /// rank's current virtual time; otherwise return the handle unresolved and
    /// leave all modeled state untouched.
    ///
    /// May block wall-clock waiting for the matching envelope to appear on the
    /// real channel — wall-clock is invisible in virtual time, and blocking is
    /// what keeps the outcome deterministic: the decision depends only on
    /// modeled quantities (`head_arrival`, port state, `now`), never on thread
    /// scheduling.
    pub fn test_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> Result<T, RecvHandle<T>> {
        let (src, tag) = (req.src(), req.tag());
        let env = self.take_matching(src, tag);
        if self.reception_done_time(&env) <= self.now {
            self.complete_reception(&env);
            Ok(self.unwrap_payload(env, src, tag))
        } else {
            // Not drained yet at this rank's virtual time: put the envelope
            // back at the front so matching order is preserved.
            self.mailbox.entry((src, tag)).or_default().push_front(env);
            Err(req)
        }
    }

    /// Combined send-then-receive, the idiom of ring and recursive-doubling steps.
    pub fn sendrecv<S, R>(
        &mut self,
        dst: usize,
        send_tag: Tag,
        value: S,
        src: usize,
        recv_tag: Tag,
    ) -> R
    where
        S: WireSize + Send + 'static,
        R: Send + 'static,
    {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }

    /// Number of `(src, tag)` queues currently stashed in the out-of-order
    /// mailbox. Drained queues are removed, so this returns to zero once all
    /// early arrivals have been received (useful for leak regression tests).
    pub fn pending_mailbox_entries(&self) -> usize {
        self.mailbox.len()
    }

    fn take_matching(&mut self, src: usize, tag: Tag) -> Envelope {
        if let Some(queue) = self.mailbox.get_mut(&(src, tag)) {
            if let Some(env) = queue.pop_front() {
                // Remove drained-empty queues so the mailbox cannot grow
                // monotonically with every (src, tag) pair ever stashed.
                if queue.is_empty() {
                    self.mailbox.remove(&(src, tag));
                }
                return env;
            }
        }
        loop {
            let env = self.inbox.recv_timeout(self.recv_deadline).unwrap_or_else(|_| {
                panic!(
                    "rank {}: recv(src={src}, tag={tag}) timed out after {:?} — likely \
                     deadlock or mismatched send/recv pattern (deadline configurable via \
                     Cluster::with_recv_timeout or SIMNET_RECV_DEADLOCK_SECS)",
                    self.rank, self.recv_deadline
                )
            });
            if env.src == src && env.tag == tag {
                return env;
            }
            self.mailbox.entry((env.src, env.tag)).or_default().push_back(env);
        }
    }

    /// Synchronize all ranks; clocks advance to the cluster-wide maximum (including
    /// pending injection work) plus a dissemination-barrier latency of `α·⌈log2 P⌉`.
    pub fn barrier(&mut self) {
        self.apply_pause();
        let t_in = self.local_finish_time();
        let t_max = self.barrier.wait(self.size, t_in);
        self.now = t_max + barrier_latency(&self.cost, self.size);
        self.rcv_free = self.rcv_free.max(self.now);
        self.inj_free = self.inj_free.max(self.now);
        let end = self.now;
        self.record(t_in, end, TraceKind::Barrier);
    }

    /// Synchronize and return the cluster-wide maximum of `value` (no clock cost
    /// beyond a barrier; used by harnesses to agree on a measurement).
    pub fn max_across(&mut self, value: f64) -> f64 {
        // Piggy-back on the barrier machinery by running two rounds: one for the
        // clock, one for the value. Round two reuses the same generation mechanics.
        self.barrier();
        self.barrier_value(value)
    }

    fn barrier_value(&self, value: f64) -> f64 {
        self.barrier.wait(self.size, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_latency_is_log2() {
        let c = CostModel { alpha: 1.0, beta: 0.0, hierarchy: None };
        assert_eq!(barrier_latency(&c, 1), 0.0);
        assert_eq!(barrier_latency(&c, 2), 1.0);
        assert_eq!(barrier_latency(&c, 3), 2.0);
        assert_eq!(barrier_latency(&c, 4), 2.0);
        assert_eq!(barrier_latency(&c, 5), 3.0);
        assert_eq!(barrier_latency(&c, 8), 3.0);
        assert_eq!(barrier_latency(&c, 9), 4.0);
    }
}
