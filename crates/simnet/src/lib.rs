#![warn(missing_docs)]

//! # simnet — a simulated message-passing substrate
//!
//! This crate stands in for MPI in the Ok-Topk reproduction. Each *rank* runs a
//! real program; point-to-point messages carry **real data** (gradient chunks,
//! index lists) between ranks, so every algorithm built on top of simnet is a
//! genuine parallel implementation whose output can be checked against a serial
//! reference.
//!
//! Time, however, is *modeled*, not measured: simnet maintains a virtual clock per rank
//! and charges communication using the classic latency–bandwidth (α–β) cost model the
//! paper itself uses for its analysis (Table 1), extended with per-rank NIC port
//! serialization so that endpoint congestion — the effect the paper's destination
//! rotation (Fig. 2) exists to avoid — is observable in modeled time.
//!
//! ## Cost model
//!
//! Sending a message of `L` elements (one element = one 4-byte word, i.e. one `f32`
//! value or one `u32` index, matching the paper's COO accounting):
//!
//! - occupies the sender's *injection port* for `β·L` seconds,
//! - the head of the message arrives at the receiver `α` seconds after injection starts,
//! - streaming the body occupies the receiver's *reception port* for `β·L` seconds;
//!   messages draining into the same receiver serialize on that port.
//!
//! A rank's clock advances on [`Comm::compute`] (local work) and on [`Comm::recv`]
//! (waiting for data). The model is deterministic regardless of thread interleaving:
//! clock arithmetic depends only on per-rank program order and the matched message
//! order, never on wall-clock races.
//!
//! ## Execution engines
//!
//! Two interchangeable engines execute the rank programs (select with
//! `SIMNET_ENGINE=thread|event` or [`Cluster::with_engine`]):
//!
//! - [`Engine::Thread`] (default): one kernel-scheduled OS thread per rank,
//!   channels for transport, wall-clock watchdogs for deadlock detection.
//! - [`Engine::Event`]: a discrete-event core — rank threads are parked
//!   continuations, a bounded set of run tokens is granted in virtual-time
//!   order, and deadlocks are detected *exactly* (no watchdogs). This is the
//!   engine that scales sweeps to P ≥ 1024 in one process.
//!
//! Because clock arithmetic depends only on per-rank program order and matched
//! message order — never on who physically ran when — the two engines produce
//! **bit-identical** results, clocks, traces and ledgers for the same inputs;
//! the thread engine doubles as a differential oracle for the event engine.
//!
//! ## Fault injection
//!
//! [`Cluster::with_chaos`] installs a [`ChaosPlan`] (from the `chaos` crate):
//! a seeded, deterministic schedule of stragglers, link degradation windows,
//! per-message latency jitter and rank pauses that the charging paths consult.
//! With no plan installed every path is bit-identical to the clean model.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Cluster, CostModel};
//!
//! let report = Cluster::new(4, CostModel::aries()).run(|comm| {
//!     // Ring shift: everyone sends its rank to the right neighbour.
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 7, vec![comm.rank() as f32]);
//!     let got: Vec<f32> = comm.recv(left, 7);
//!     got[0] as usize
//! });
//! assert_eq!(report.results, vec![3, 0, 1, 2]);
//! ```

mod cluster;
mod comm;
mod cost;
mod engine;
mod envelope;
mod ledger;
pub mod net;
pub mod request;
pub mod trace;

pub use chaos::{ChaosPlan, ChaosView, CompiledChaos, Perturbation, SendPerturb, Window};
pub use cluster::{Cluster, SimReport};
pub use comm::{Comm, Tag};
pub use cost::Hierarchy;
pub use cost::{CostModel, WireSize};
pub use engine::{Engine, SchedEvent, SchedKind, SchedMode};
pub use ledger::{Ledger, LedgerSnapshot, PhaseVolume};
pub use net::{GroupComm, Net};
pub use request::{RecvHandle, SendHandle};
pub use topo::{LinkClass, Topology};
pub use trace::{
    export_chrome, render_timeline, render_timeline_with_chaos, TraceEvent, TraceKind,
};
