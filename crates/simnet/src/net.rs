//! The communicator abstraction and process groups (sub-communicators).
//!
//! Every collective in this workspace is written against the [`Net`] trait, so the
//! same algorithm runs on the whole cluster ([`crate::Comm`]) or on a subset of
//! ranks ([`GroupComm`]) — the MPI communicator/sub-communicator split. Groups are
//! what hybrid data + pipeline parallelism needs: each pipeline stage's replicas
//! form a data-parallel group that allreduces its own gradient shard while other
//! groups do the same concurrently.

use crate::comm::{Comm, Tag};
use crate::cost::WireSize;
use crate::request::{RecvHandle, SendHandle};
use std::borrow::Cow;
use std::sync::Arc;

/// The communicator interface all collectives are generic over.
///
/// Semantics match [`Comm`]'s inherent methods; see those docs. Implementations:
/// [`Comm`] (the whole cluster) and [`GroupComm`] (a subset with renumbered ranks).
pub trait Net {
    /// This endpoint's rank within the communicator, `0..size`.
    fn rank(&self) -> usize;
    /// Number of ranks in the communicator.
    fn size(&self) -> usize;
    /// Non-blocking typed send to `dst` (communicator-local rank).
    fn send<T: WireSize + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T);
    /// Blocking typed receive from `src` (communicator-local rank).
    fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T;
    /// Advance the virtual clock by `seconds` of local computation.
    fn compute(&mut self, seconds: f64);
    /// Current virtual time of this rank.
    fn now(&self) -> f64;
    /// Force the clock to at least `t`.
    fn advance_to(&mut self, t: f64);
    /// Label subsequent traffic in the ledger. Accepts `&'static str` and
    /// owned `String`s alike; labels are interned, so dynamically built
    /// per-bucket/per-layer labels cost one allocation per distinct name.
    fn set_phase(&mut self, phase: impl Into<Cow<'static, str>>);
    /// Toggle zero-cost instrumentation mode.
    fn set_free_mode(&mut self, on: bool);
    /// Synchronize all ranks *of this communicator*.
    fn barrier(&mut self);

    /// Combined send-then-receive (ring / recursive-doubling idiom).
    fn sendrecv<S, R>(
        &mut self,
        dst: usize,
        send_tag: Tag,
        value: S,
        src: usize,
        recv_tag: Tag,
    ) -> R
    where
        S: WireSize + Send + 'static,
        R: Send + 'static,
    {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }

    /// Nonblocking send; the handle records when the message has fully left
    /// the injection port (see [`crate::request`]).
    fn isend<T: WireSize + Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> SendHandle {
        self.send(dst, tag, value);
        SendHandle::new(self.now())
    }

    /// Post a nonblocking receive; resolve with [`wait_recv`](Net::wait_recv)
    /// or [`test_recv`](Net::test_recv). Touches no modeled state.
    fn irecv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> RecvHandle<T> {
        RecvHandle::new(src, tag)
    }

    /// Resolve a posted receive, blocking until the message is available.
    /// Bit-identical in modeled time to a blocking `recv` issued here.
    fn wait_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> T {
        self.recv(req.src(), req.tag())
    }

    /// Resolve a posted receive only if it has fully drained by this rank's
    /// current virtual time; otherwise return the handle with modeled state
    /// untouched.
    fn test_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> Result<T, RecvHandle<T>> {
        Ok(self.wait_recv(req))
    }

    /// Send a reference-counted payload (fan-out senders clone the `Arc`, not
    /// the buffer); pair with [`recv_shared`](Net::recv_shared).
    fn send_shared<T: WireSize + Send + Sync + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: Arc<T>,
    );

    /// Receive a payload sent with [`send_shared`](Net::send_shared); timing
    /// semantics identical to `recv`.
    fn recv_shared<T: Send + Sync + 'static>(&mut self, src: usize, tag: Tag) -> Arc<T>;

    /// Take a cleared `f32` buffer with capacity ≥ `cap` from the rank's
    /// recycled-buffer pool (see [`Comm::take_f32`]).
    fn take_f32(&mut self, cap: usize) -> Vec<f32> {
        Vec::with_capacity(cap)
    }

    /// Return an `f32` buffer to the rank's pool.
    fn recycle_f32(&mut self, _buf: Vec<f32>) {}

    /// Take a cleared `u32` buffer with capacity ≥ `cap` from the rank's pool.
    fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        Vec::with_capacity(cap)
    }

    /// Return a `u32` buffer to the rank's pool.
    fn recycle_u32(&mut self, _buf: Vec<u32>) {}
}

impl Net for Comm {
    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn size(&self) -> usize {
        Comm::size(self)
    }

    fn send<T: WireSize + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        Comm::send(self, dst, tag, value)
    }

    fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        Comm::recv(self, src, tag)
    }

    fn compute(&mut self, seconds: f64) {
        Comm::compute(self, seconds)
    }

    fn now(&self) -> f64 {
        Comm::now(self)
    }

    fn advance_to(&mut self, t: f64) {
        Comm::advance_to(self, t)
    }

    fn set_phase(&mut self, phase: impl Into<Cow<'static, str>>) {
        Comm::set_phase(self, phase)
    }

    fn set_free_mode(&mut self, on: bool) {
        Comm::set_free_mode(self, on)
    }

    fn barrier(&mut self) {
        Comm::barrier(self)
    }

    fn isend<T: WireSize + Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> SendHandle {
        Comm::isend(self, dst, tag, value)
    }

    fn wait_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> T {
        Comm::wait_recv(self, req)
    }

    fn test_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> Result<T, RecvHandle<T>> {
        Comm::test_recv(self, req)
    }

    fn send_shared<T: WireSize + Send + Sync + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: Arc<T>,
    ) {
        Comm::send_shared(self, dst, tag, value)
    }

    fn recv_shared<T: Send + Sync + 'static>(&mut self, src: usize, tag: Tag) -> Arc<T> {
        Comm::recv_shared(self, src, tag)
    }

    fn take_f32(&mut self, cap: usize) -> Vec<f32> {
        Comm::take_f32(self, cap)
    }

    fn recycle_f32(&mut self, buf: Vec<f32>) {
        Comm::recycle_f32(self, buf)
    }

    fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        Comm::take_u32(self, cap)
    }

    fn recycle_u32(&mut self, buf: Vec<u32>) {
        Comm::recycle_u32(self, buf)
    }
}

/// A sub-communicator: a subset of the cluster's ranks, renumbered `0..group_size`.
///
/// Tags are salted with a caller-chosen `group_id` (high 16 bits) so traffic of
/// different concurrent groups — and any direct global traffic — cannot collide.
/// The group [`barrier`](Net::barrier) is a dissemination barrier over the group's
/// members only (`⌈log2 g⌉` rounds of empty messages), so its clock semantics
/// follow from ordinary message dependencies.
///
/// Generic over the parent communicator, so groups nest (a group of a group
/// renumbers and salts twice) and algorithms written against [`Net`] can form
/// sub-groups of whatever communicator they were handed — the hierarchical
/// collectives rely on this. `C` defaults to [`Comm`], the common case.
pub struct GroupComm<'a, C: Net = Comm> {
    comm: &'a mut C,
    /// Parent-communicator ranks of the members, in group-rank order.
    members: Vec<usize>,
    /// This endpoint's group-local rank.
    my_index: usize,
    salt: Tag,
}

impl<'a, C: Net> GroupComm<'a, C> {
    /// Wrap `comm` as a member of the group `members` (parent ranks; must contain
    /// the caller). All members must construct the group with the same `members`
    /// order and `group_id`.
    pub fn new(comm: &'a mut C, members: Vec<usize>, group_id: u16) -> Self {
        let me = comm.rank();
        let my_index = members
            .iter()
            .position(|&r| r == me)
            .expect("calling rank must be a member of its own group");
        assert!(members.iter().all(|&r| r < comm.size()), "group member out of cluster range");
        Self { comm, members, my_index, salt: (group_id as Tag) << 48 }
    }

    /// The parent-communicator rank behind a group-local rank.
    pub fn global_rank(&self, group_rank: usize) -> usize {
        self.members[group_rank]
    }

    /// Borrow the underlying parent communicator (e.g. for cross-group traffic).
    pub fn global(&mut self) -> &mut C {
        self.comm
    }
}

impl<C: Net> Net for GroupComm<'_, C> {
    fn rank(&self) -> usize {
        self.my_index
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send<T: WireSize + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        let global_dst = self.members[dst];
        self.comm.send(global_dst, tag | self.salt, value);
    }

    fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        let global_src = self.members[src];
        self.comm.recv(global_src, tag | self.salt)
    }

    fn compute(&mut self, seconds: f64) {
        self.comm.compute(seconds)
    }

    fn now(&self) -> f64 {
        self.comm.now()
    }

    fn advance_to(&mut self, t: f64) {
        self.comm.advance_to(t)
    }

    fn set_phase(&mut self, phase: impl Into<Cow<'static, str>>) {
        self.comm.set_phase(phase)
    }

    fn set_free_mode(&mut self, on: bool) {
        self.comm.set_free_mode(on)
    }

    fn isend<T: WireSize + Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> SendHandle {
        let global_dst = self.members[dst];
        self.comm.isend(global_dst, tag | self.salt, value)
    }

    // `irecv`/`wait_recv` use the trait defaults: the handle carries the
    // group-local (src, tag) and resolution goes through `self.recv`, which
    // translates the rank and salts the tag. `test_recv` must translate
    // explicitly because it resolves against the global communicator.
    fn test_recv<T: Send + 'static>(&mut self, req: RecvHandle<T>) -> Result<T, RecvHandle<T>> {
        let global = RecvHandle::new(self.members[req.src()], req.tag() | self.salt);
        self.comm.test_recv(global).map_err(|_| req)
    }

    fn send_shared<T: WireSize + Send + Sync + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        value: Arc<T>,
    ) {
        let global_dst = self.members[dst];
        self.comm.send_shared(global_dst, tag | self.salt, value)
    }

    fn recv_shared<T: Send + Sync + 'static>(&mut self, src: usize, tag: Tag) -> Arc<T> {
        let global_src = self.members[src];
        self.comm.recv_shared(global_src, tag | self.salt)
    }

    fn take_f32(&mut self, cap: usize) -> Vec<f32> {
        self.comm.take_f32(cap)
    }

    fn recycle_f32(&mut self, buf: Vec<f32>) {
        self.comm.recycle_f32(buf)
    }

    fn take_u32(&mut self, cap: usize) -> Vec<u32> {
        self.comm.take_u32(cap)
    }

    fn recycle_u32(&mut self, buf: Vec<u32>) {
        self.comm.recycle_u32(buf)
    }

    fn barrier(&mut self) {
        // Dissemination barrier within the group: at round r, group rank i sends a
        // token to (i + 2^r) mod g and receives from (i − 2^r) mod g.
        let g = self.members.len();
        if g <= 1 {
            return;
        }
        const TAG_GROUP_BARRIER: Tag = 0xB0;
        let mut dist = 1;
        let mut round: Tag = 0;
        while dist < g {
            let to = (self.my_index + dist) % g;
            let from = (self.my_index + g - dist) % g;
            let tag = TAG_GROUP_BARRIER + (round << 8);
            self.send(to, tag, ());
            let () = self.recv(from, tag);
            dist *= 2;
            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostModel};

    #[test]
    fn group_ranks_are_renumbered() {
        // Global ranks {1, 3, 5} form a group; inside it they are 0, 1, 2.
        let report = Cluster::new(6, CostModel::free()).run(|comm| {
            let me = Comm::rank(comm);
            if [1usize, 3, 5].contains(&me) {
                let mut g = GroupComm::new(comm, vec![1, 3, 5], 7);
                let gr = Net::rank(&g);
                // Ring shift inside the group.
                let right = (gr + 1) % Net::size(&g);
                let left = (gr + Net::size(&g) - 1) % Net::size(&g);
                Net::send(&mut g, right, 1, vec![gr as u32]);
                let got: Vec<u32> = Net::recv(&mut g, left, 1);
                Some((gr, got[0], g.global_rank(gr)))
            } else {
                None
            }
        });
        assert_eq!(report.results[1], Some((0, 2, 1)));
        assert_eq!(report.results[3], Some((1, 0, 3)));
        assert_eq!(report.results[5], Some((2, 1, 5)));
        assert_eq!(report.results[0], None);
    }

    #[test]
    fn concurrent_groups_do_not_interfere() {
        // Two disjoint groups exchange simultaneously with the same tags.
        let report = Cluster::new(4, CostModel::aries()).run(|comm| {
            let me = Comm::rank(comm);
            let (members, gid) = if me < 2 { (vec![0, 1], 1u16) } else { (vec![2, 3], 2u16) };
            let mut g = GroupComm::new(comm, members, gid);
            let peer = 1 - Net::rank(&g);
            let payload = vec![(gid as u32) * 100 + Net::rank(&g) as u32];
            Net::send(&mut g, peer, 9, payload);
            let got: Vec<u32> = Net::recv(&mut g, peer, 9);
            got[0]
        });
        assert_eq!(report.results, vec![101, 100, 201, 200]);
    }

    #[test]
    fn group_barrier_syncs_members_only() {
        let report = Cluster::new(4, CostModel::free()).run(|comm| {
            let me = Comm::rank(comm);
            if me < 3 {
                comm.compute(me as f64); // members finish at 0, 1, 2
                let mut g = GroupComm::new(comm, vec![0, 1, 2], 3);
                Net::barrier(&mut g);
                Comm::now(comm)
            } else {
                comm.compute(100.0); // outsider unaffected
                Comm::now(comm)
            }
        });
        // All members advance to ≥ the slowest member (2.0); the outsider stays 100.
        for r in 0..3 {
            assert!(report.results[r] >= 2.0, "rank {r}: {}", report.results[r]);
        }
        assert_eq!(report.results[3], 100.0);
    }

    #[test]
    fn collectives_run_inside_groups() {
        // Dense allreduce within each half of the cluster (via the Net trait).
        // Uses the generic ring path (group size 2 is a power of two though, so
        // rabenseifner); correctness is what matters here.
        let report = Cluster::new(4, CostModel::aries()).run(|comm| {
            let me = Comm::rank(comm);
            let (members, gid) = if me < 2 { (vec![0, 1], 1u16) } else { (vec![2, 3], 2u16) };
            let mut g = GroupComm::new(comm, members, gid);
            // Each rank contributes [global_rank; 4]; the group sum differs per group.
            let mut data = vec![me as f32; 4];
            crate::net::test_support::group_allreduce_probe(&mut g, &mut data);
            data
        });
        assert_eq!(report.results[0], vec![1.0; 4]); // 0 + 1
        assert_eq!(report.results[1], vec![1.0; 4]);
        assert_eq!(report.results[2], vec![5.0; 4]); // 2 + 3
        assert_eq!(report.results[3], vec![5.0; 4]);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A minimal group allreduce used by net.rs tests (the real collectives live in
    //! the `collectives` crate, which depends on this one).

    use super::Net;

    pub fn group_allreduce_probe<C: Net>(net: &mut C, data: &mut [f32]) {
        let p = net.size();
        let r = net.rank();
        let mut dist = 1;
        while dist < p {
            let partner = r ^ dist;
            if partner < p {
                let got: Vec<f32> = net.sendrecv(partner, 77, data.to_vec(), partner, 77);
                for (d, g) in data.iter_mut().zip(&got) {
                    *d += g;
                }
            }
            dist *= 2;
        }
    }
}
