//! Property tests for the O(k) sparse allreduce and Ok-Topk SGD.

use oktopk::{oktopk::intersect_sorted, OkTopk, OkTopkConfig, OkTopkSgd};
use proptest::prelude::*;
use simnet::{Cluster, CostModel};
use sparse::select::{exact_threshold, select_ge};
use sparse::CooGradient;

fn accs_strategy() -> impl Strategy<Value = (usize, usize, Vec<Vec<f32>>)> {
    (2usize..7, 16usize..150).prop_flat_map(|(p, n)| {
        (
            Just(p),
            Just(n),
            proptest::collection::vec(
                proptest::collection::vec((-1000i32..1000).prop_map(|x| x as f32 / 512.0), n..=n),
                p..=p,
            ),
        )
    })
}

/// Serial reference for Topk(Σ Topk(·)) with threshold-scan selection semantics.
fn reference(accs: &[Vec<f32>], k: usize) -> CooGradient {
    let mut sum = CooGradient::new();
    for acc in accs {
        let th = exact_threshold(acc, k);
        sum.merge_sum_into(&select_ge(acc, th));
    }
    let th = exact_threshold(sum.values(), k);
    sum.filter_abs_ge(th)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With fresh thresholds every iteration, Ok-Topk allreduce equals the serial
    /// Topk(Σ Topk(·)) semantics on any input, any P, including the ablated variants.
    #[test]
    fn matches_semantics_for_all_ablations(
        (p, n, accs) in accs_strategy(),
        k_frac in 0.05f64..0.5,
        balanced in any::<bool>(),
        rotation in any::<bool>(),
        data_balancing in any::<bool>(),
        bucket in 1usize..5,
    ) {
        let k = ((n as f64 * k_frac) as usize).max(1);
        let expect = reference(&accs, k);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut okt = OkTopk::new(
                OkTopkConfig::new(n, k)
                    .with_periods(1, 1)
                    .with_balanced_partition(balanced)
                    .with_rotation(rotation)
                    .with_data_balancing(data_balancing)
                    .with_bucket_size(bucket),
            );
            okt.allreduce(comm, &accs[comm.rank()], 1)
        });
        for out in &report.results {
            prop_assert_eq!(out.update.indexes(), expect.indexes());
            for (x, y) in out.update.values().iter().zip(expect.values()) {
                prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
            }
        }
    }

    /// All ranks always agree on the update, whatever the periods.
    #[test]
    fn ranks_agree(
        (p, n, accs) in accs_strategy(),
        tau in 1usize..5,
        tau_prime in 1usize..5,
        iters in 1usize..5,
    ) {
        let k = (n / 10).max(1);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(tau, tau_prime));
            let mut last = CooGradient::new();
            for t in 1..=iters {
                // Vary the inputs deterministically per iteration.
                let acc: Vec<f32> = accs[comm.rank()]
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v + (t as f32 * 0.01) * ((i % 7) as f32 - 3.0))
                    .collect();
                last = okt.allreduce(comm, &acc, t).update;
            }
            last
        });
        for r in 1..p {
            prop_assert_eq!(&report.results[r], &report.results[0]);
        }
    }

    /// Ok-Topk SGD residual invariant: after a step, residual[i] is either 0 (at a
    /// contributed index) or exactly the accumulator value.
    #[test]
    fn residual_invariant((p, n, accs) in accs_strategy()) {
        let k = (n / 8).max(1);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k));
            let grad = &accs[comm.rank()];
            let acc = sgd.peek_accumulator(grad, 0.1);
            let step = sgd.step(comm, grad, 0.1);
            let contributed: std::collections::HashSet<u32> =
                step.meta.contributed.iter().copied().collect();
            let mut ok = true;
            for i in 0..n {
                let expect = if contributed.contains(&(i as u32)) { 0.0 } else { acc[i] };
                ok &= sgd.residual()[i] == expect;
            }
            ok
        });
        prop_assert!(report.results.iter().all(|&ok| ok));
    }

    /// intersect_sorted equals the set intersection for any sorted inputs.
    #[test]
    fn intersection_is_set_intersection(
        mut a in proptest::collection::vec(0u32..200, 0..50),
        mut b in proptest::collection::vec(0u32..200, 0..50),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let got = intersect_sorted(&a, &b);
        let sa: std::collections::HashSet<u32> = a.iter().copied().collect();
        let sb: std::collections::HashSet<u32> = b.iter().copied().collect();
        let mut want: Vec<u32> = sa.intersection(&sb).copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
