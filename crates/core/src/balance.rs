//! Phase 2 of Algorithm 1: *balance and allgatherv* (§3.1.2, Fig. 3).
//!
//! Each worker filters its reduced region by the (reused) global threshold, packs
//! the survivors into a contiguous buffer, and the buffers are allgathered. Because
//! the global top-k values may concentrate in one worker's region, a recursive
//! doubling allgatherv alone could cost `2k·log P`; the paper bounds it by `4k` by
//! first *balancing* the data: an allgather of buffer sizes (latency-only), then a
//! point-to-point redistribution into equal-size chunks, then the allgatherv.
//! Balancing only runs when `max > trigger × mean` (the paper uses 4×).

use crate::config::OkTopkConfig;
use collectives::allgather_items;
use simnet::Net;
use sparse::CooGradient;

const TAG_BAL: u64 = 0x50;

/// Result of balance-and-allgatherv on one worker.
pub struct BalanceOutput {
    /// `u_t`: the global-top-k sparse sum, identical on every worker.
    pub global_topk: CooGradient,
    /// Number of global top-k survivors (Fig. 6 instrumentation).
    pub global_nnz: usize,
    /// Whether the 4× trigger fired and data balancing ran (Fig. 7b).
    pub balanced: bool,
}

/// Run balance-and-allgatherv on the survivors of this worker's region.
///
/// `survivors` must be the entries of the reduced region with
/// `|value| ≥ global_threshold`, still sorted by index. Region ownership follows
/// rank order, so concatenating per-rank buffers in rank order yields a globally
/// index-sorted result.
pub fn balance_and_allgatherv<C: Net>(
    comm: &mut C,
    cfg: &OkTopkConfig,
    survivors: CooGradient,
) -> BalanceOutput {
    let p = comm.size();
    if p == 1 {
        let global_nnz = survivors.nnz();
        return BalanceOutput { global_topk: survivors, global_nnz, balanced: false };
    }

    // Allgather of buffer sizes: P words, latency-dominated (§3.1.2).
    comm.set_phase("okt_size_gather");
    let sizes: Vec<u64> = allgather_items(comm, survivors.nnz() as u64);
    let total: u64 = sizes.iter().sum();
    let max = sizes.iter().copied().max().unwrap_or(0);
    let mean = total as f64 / p as f64;
    let need_balance = cfg.data_balancing && total > 0 && (max as f64) > cfg.balance_trigger * mean;

    let chunks: Vec<CooGradient> = if need_balance {
        comm.set_phase("okt_balance");
        let balanced = rebalance(comm, survivors, &sizes);
        comm.set_phase("okt_allgather");
        allgather_items(comm, balanced)
    } else {
        comm.set_phase("okt_allgather");
        allgather_items(comm, survivors)
    };

    let global_topk = CooGradient::concat_ordered(&chunks);
    let global_nnz = global_topk.nnz();
    BalanceOutput { global_topk, global_nnz, balanced: need_balance }
}

/// Redistribute the concatenation of all workers' buffers into P equal chunks by
/// point-to-point messages (blue arrows in Fig. 3). Worker `c` ends up with global
/// positions `[c·S/P, (c+1)·S/P)` of the rank-ordered concatenation.
fn rebalance<C: Net>(comm: &mut C, mine: CooGradient, sizes: &[u64]) -> CooGradient {
    let p = comm.size();
    let rank = comm.rank();
    let total: u64 = sizes.iter().sum();

    let mut prefix = vec![0u64; p + 1];
    for r in 0..p {
        prefix[r + 1] = prefix[r] + sizes[r];
    }
    let chunk_bound = |c: usize| -> u64 { c as u64 * total / p as u64 };

    let my_start = prefix[rank];
    let my_end = prefix[rank + 1];
    let (idx, val) = mine.into_parts();

    // Send each overlap of my data with someone else's chunk.
    for c in 0..p {
        if c == rank {
            continue;
        }
        let lo = chunk_bound(c).max(my_start);
        let hi = chunk_bound(c + 1).min(my_end);
        if lo < hi {
            let a = (lo - my_start) as usize;
            let b = (hi - my_start) as usize;
            let pairs: Vec<(u32, f32)> =
                idx[a..b].iter().copied().zip(val[a..b].iter().copied()).collect();
            comm.send(c, TAG_BAL, pairs);
        }
    }

    // Assemble my chunk [chunk_bound(rank), chunk_bound(rank+1)) from overlapping
    // sources, in ascending source order (which is global position order).
    let c_lo = chunk_bound(rank);
    let c_hi = chunk_bound(rank + 1);
    let mut out_idx: Vec<u32> = Vec::with_capacity((c_hi - c_lo) as usize);
    let mut out_val: Vec<f32> = Vec::with_capacity((c_hi - c_lo) as usize);
    for src in 0..p {
        let lo = prefix[src].max(c_lo);
        let hi = prefix[src + 1].min(c_hi);
        if lo >= hi {
            continue;
        }
        if src == rank {
            let a = (lo - my_start) as usize;
            let b = (hi - my_start) as usize;
            out_idx.extend_from_slice(&idx[a..b]);
            out_val.extend_from_slice(&val[a..b]);
        } else {
            let pairs: Vec<(u32, f32)> = comm.recv(src, TAG_BAL);
            debug_assert_eq!(pairs.len() as u64, hi - lo);
            for (i, v) in pairs {
                out_idx.push(i);
                out_val.push(v);
            }
        }
    }
    CooGradient::from_sorted(out_idx, out_val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Cluster, CostModel};

    /// Build disjoint per-rank survivor sets over an index space of `n`, with the
    /// given per-rank sizes, region r covering [r·n/p, (r+1)·n/p).
    fn survivors_with_sizes(sizes: &[usize], n: u32) -> Vec<CooGradient> {
        let p = sizes.len();
        sizes
            .iter()
            .enumerate()
            .map(|(r, &s)| {
                let base = r as u32 * n / p as u32;
                let idx: Vec<u32> = (0..s as u32).map(|i| base + i).collect();
                let val: Vec<f32> = (0..s).map(|i| (r * 100 + i) as f32 + 0.5).collect();
                CooGradient::from_sorted(idx, val)
            })
            .collect()
    }

    fn run(sizes: &[usize], trigger_on: bool) -> (Vec<BalanceOutput>, simnet::LedgerSnapshot) {
        let p = sizes.len();
        let n = 1_000_000u32;
        let locals = survivors_with_sizes(sizes, n);
        let cfg = OkTopkConfig::new(n as usize, sizes.iter().sum::<usize>().max(1))
            .with_data_balancing(trigger_on);
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| balance_and_allgatherv(comm, &cfg, locals[comm.rank()].clone()));
        (report.results, report.ledger)
    }

    fn expected_concat(sizes: &[usize]) -> CooGradient {
        CooGradient::concat_ordered(&survivors_with_sizes(sizes, 1_000_000))
    }

    #[test]
    fn uniform_sizes_skip_balancing() {
        let sizes = [10usize, 10, 10, 10];
        let (outs, _) = run(&sizes, true);
        let expect = expected_concat(&sizes);
        for out in &outs {
            assert!(!out.balanced);
            assert_eq!(out.global_topk, expect);
            assert_eq!(out.global_nnz, 40);
        }
    }

    #[test]
    fn extreme_imbalance_triggers_and_preserves_result() {
        // Everything in worker 0 — the paper's extreme case.
        let sizes = [64usize, 0, 0, 0, 0, 0, 0, 0];
        let (outs, _) = run(&sizes, true);
        let expect = expected_concat(&sizes);
        for out in &outs {
            assert!(out.balanced);
            assert_eq!(out.global_topk, expect);
        }
    }

    #[test]
    fn balancing_bounds_allgather_volume() {
        // With all data on one rank, a direct recursive-doubling allgatherv makes
        // that rank's 2k buffer traverse log P rounds; with balancing each rank
        // allgathers only ~2k/P. Compare allgather-phase traffic.
        let sizes = [512usize, 0, 0, 0, 0, 0, 0, 0];
        let p = sizes.len();
        let (_, ledger_bal) = run(&sizes, true);
        let (_, ledger_direct) = run(&sizes, false);
        // Aggregate volume is identical by symmetry of recursive doubling; the win
        // is on the *critical path*: without balancing the full 2k buffer traverses
        // every one of the log P rounds through the hot ranks.
        let max_bal = (0..p).map(|r| ledger_bal.cell(r, "okt_allgather").elements).max().unwrap();
        let max_direct =
            (0..p).map(|r| ledger_direct.cell(r, "okt_allgather").elements).max().unwrap();
        assert!(
            max_bal * 2 < max_direct,
            "balanced per-rank max {max_bal} should be far below direct {max_direct}"
        );
        // Balancing itself costs at most ~2k(P−1)/P.
        let bal = ledger_bal.phase_elements("okt_balance");
        let k2 = 2 * 512;
        assert!(bal as f64 <= k2 as f64 * (7.0 / 8.0) * 1.05, "balance moved {bal}");
    }

    #[test]
    fn moderate_imbalance_below_trigger_stays_direct() {
        // max = 3× mean < 4× trigger.
        let sizes = [30usize, 10, 0, 0];
        let (outs, _) = run(&sizes, true);
        for out in &outs {
            assert!(!out.balanced);
            assert_eq!(out.global_nnz, 40);
        }
    }

    #[test]
    fn empty_survivors_everywhere() {
        let sizes = [0usize, 0, 0, 0];
        let (outs, _) = run(&sizes, true);
        for out in &outs {
            assert!(!out.balanced);
            assert!(out.global_topk.is_empty());
        }
    }

    #[test]
    fn non_pow2_ranks_work() {
        let sizes = [50usize, 0, 0, 2, 1, 0];
        let (outs, _) = run(&sizes, true);
        let expect = expected_concat(&sizes);
        for out in &outs {
            assert_eq!(out.global_topk, expect);
        }
    }

    #[test]
    fn single_rank_identity() {
        let g = CooGradient::from_sorted(vec![5], vec![2.0]);
        let cfg = OkTopkConfig::new(10, 1);
        let report = Cluster::new(1, CostModel::free())
            .run(|comm| balance_and_allgatherv(comm, &cfg, g.clone()).global_topk);
        assert_eq!(report.results[0], g);
    }
}
