//! Phase 1 of Algorithm 1: *split and reduce* (§3.1.1, Figs. 1–2).
//!
//! Each worker selects its local top-k values (by the reused threshold), splits them
//! into P regions along the agreed boundaries, and sends region `j` to worker `j`.
//! Worker `j` merges the P incoming shards into the reduced partial sum of its
//! region. Two communication optimizations from the paper:
//!
//! - **Destination rotation** (Fig. 2b): at step `s`, worker `i` targets worker
//!   `(i+s) mod P`, so no single endpoint is hit by everyone at once.
//! - **Bucketing**: sends are issued in buckets of non-blocking messages; the local
//!   reduction of the previous bucket's arrivals overlaps the current bucket's
//!   transfers.

use crate::config::OkTopkConfig;
use simnet::Net;
use sparse::{CooGradient, SelectScratch};

const TAG_SPLIT: u64 = 0x40;

/// Result of split-and-reduce on one worker. The caller still holds the local
/// top-k selection it passed in, so only the reduced region travels back.
pub struct SplitReduceOutput {
    /// Sum over all workers of their local top-k entries falling in *my* region.
    pub reduced_region: CooGradient,
    /// Number of local top-k values selected (Fig. 6 instrumentation).
    pub local_nnz: usize,
}

/// Run split-and-reduce: `local` is this worker's threshold-selected sparse
/// accumulator, `boundaries` the agreed `P+1` region boundaries. `scratch`
/// provides the spare buffers for the allocation-free shard merges (and
/// receives the storage of consumed incoming shards for reuse).
pub fn split_and_reduce<C: Net>(
    comm: &mut C,
    cfg: &OkTopkConfig,
    local: &CooGradient,
    boundaries: &[u32],
    scratch: &mut SelectScratch,
) -> SplitReduceOutput {
    comm.set_phase("okt_split_reduce");
    let p = comm.size();
    let rank = comm.rank();
    let local_nnz = local.nnz();

    if p == 1 {
        return SplitReduceOutput { reduced_region: local.clone(), local_nnz };
    }

    let mut shards = local.split_by_boundaries(boundaries);
    debug_assert_eq!(shards.len(), p);

    // Step s (1-based) pairs: send to (rank+s) mod P, receive from (rank−s) mod P.
    // Without rotation, everyone walks destinations in the same 0..P order — the
    // naive pattern of Fig. 2a that congests one endpoint per step.
    let send_order: Vec<usize> = if cfg.rotation {
        (1..p).map(|s| (rank + s) % p).collect()
    } else {
        (0..p).filter(|&d| d != rank).collect()
    };
    let recv_order: Vec<usize> = if cfg.rotation {
        (1..p).map(|s| (rank + p - s) % p).collect()
    } else {
        (0..p).filter(|&d| d != rank).collect()
    };

    let mut acc = std::mem::take(&mut shards[rank]);
    let (mut spare_idx, mut spare_val) = scratch.take_pair();
    let bucket = cfg.bucket_size.max(1);
    let mut sent = 0usize;
    let mut received = 0usize;
    while sent < send_order.len() || received < recv_order.len() {
        // Fire the next bucket of non-blocking sends… (shards move onto the
        // wire as (indexes, values) pairs — the pooled fast path with the same
        // 2·nnz wire accounting — instead of being cloned; each is sent once)
        let send_hi = (sent + bucket).min(send_order.len());
        for &dst in &send_order[sent..send_hi] {
            comm.send(dst, TAG_SPLIT, std::mem::take(&mut shards[dst]).into_parts());
        }
        sent = send_hi;
        // …then post the matching bucket of nonblocking receives and resolve
        // them in arrival-schedule order: each shard drains through the
        // reception port while the previous shard's merge — and the next
        // bucket's transfers — proceed in modeled time.
        let recv_hi = (received + bucket).min(recv_order.len());
        let reqs: Vec<_> = recv_order[received..recv_hi]
            .iter()
            .map(|&src| comm.irecv::<(Vec<u32>, Vec<f32>)>(src, TAG_SPLIT))
            .collect();
        for req in reqs {
            let (idx, val) = comm.wait_recv(req);
            let got = CooGradient::from_sorted(idx, val);
            let merged = acc.nnz() + got.nnz();
            acc.merge_sum_swap(&got, &mut spare_idx, &mut spare_val);
            scratch.recycle(got);
            if cfg.merge_cost_per_elem > 0.0 {
                comm.compute(cfg.merge_cost_per_elem * merged as f64);
            }
        }
        received = recv_hi;
    }
    scratch.recycle_parts(spare_idx, spare_val);

    SplitReduceOutput { reduced_region: acc, local_nnz }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};
    use sparse::partition::equal_boundaries;
    use sparse::select::topk_exact;

    fn run_split_reduce(
        p: usize,
        n: usize,
        k: usize,
        seed: u64,
        cfg_mod: impl Fn(OkTopkConfig) -> OkTopkConfig,
    ) -> (Vec<CooGradient>, Vec<CooGradient>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let locals: Vec<CooGradient> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect();
        let cfg = cfg_mod(OkTopkConfig::new(n, k));
        let bounds = equal_boundaries(n as u32, p);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut scratch = SelectScratch::new();
            split_and_reduce(comm, &cfg, &locals[comm.rank()].clone(), &bounds, &mut scratch)
                .reduced_region
        });
        let makespan = report.makespan();
        (locals, report.results, makespan)
    }

    fn check_regions(p: usize, n: usize, locals: &[CooGradient], regions: &[CooGradient]) {
        // Reference: serial merge of everything, then split by the same boundaries.
        let mut total = CooGradient::new();
        for l in locals {
            total.merge_sum_into(l);
        }
        let bounds = equal_boundaries(n as u32, p);
        let expect = total.split_by_boundaries(&bounds);
        for (got, want) in regions.iter().zip(&expect) {
            assert_eq!(got.indexes(), want.indexes());
            for (x, y) in got.values().iter().zip(want.values()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn regions_hold_global_partial_sums() {
        for &(p, n, k) in &[(2usize, 100usize, 10usize), (4, 256, 32), (8, 512, 40), (5, 300, 25)] {
            let (locals, regions, _) = run_split_reduce(p, n, k, p as u64, |c| c);
            check_regions(p, n, &locals, &regions);
        }
    }

    #[test]
    fn correct_without_rotation_and_tiny_buckets() {
        let (p, n, k) = (8, 400, 30);
        let (locals, regions, _) =
            run_split_reduce(p, n, k, 3, |c| c.with_rotation(false).with_bucket_size(1));
        check_regions(p, n, &locals, &regions);
    }

    #[test]
    fn rotation_improves_modeled_makespan() {
        // With equal regions and uniform data, rotation pipelines reception ports;
        // the naive all-hit-one-endpoint schedule serializes them.
        let (p, n, k) = (16, 20_000, 2_000);
        let (_, _, t_rot) = run_split_reduce(p, n, k, 7, |c| c.with_rotation(true));
        let (_, _, t_naive) = run_split_reduce(p, n, k, 7, |c| c.with_rotation(false));
        assert!(t_rot < t_naive * 0.95, "rotation {t_rot} should beat naive {t_naive}");
    }

    #[test]
    fn single_rank_is_identity() {
        let local = CooGradient::from_sorted(vec![1, 3], vec![0.5, -1.0]);
        let cfg = OkTopkConfig::new(10, 2);
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            let mut scratch = SelectScratch::new();
            let out = split_and_reduce(comm, &cfg, &local.clone(), &[0, 10], &mut scratch);
            (out.reduced_region, out.local_nnz)
        });
        let (region, nnz) = &report.results[0];
        assert_eq!(region, &local);
        assert_eq!(*nnz, 2);
    }

    #[test]
    fn straggler_slows_the_schedule_but_not_the_math() {
        // A 4x straggler (hitting the merge-cost compute blocks) must stretch
        // the modeled makespan without changing a single reduced value: chaos
        // perturbs *when*, never *what*.
        let (p, n, k) = (8, 4096, 256);
        let mut rng = StdRng::seed_from_u64(11);
        let locals: Vec<CooGradient> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect();
        let cfg = OkTopkConfig::new(n, k).with_merge_cost(1e-7);
        let bounds = equal_boundaries(n as u32, p);
        let run = |chaos: Option<simnet::ChaosPlan>| {
            let mut cluster = Cluster::new(p, CostModel::aries());
            if let Some(plan) = chaos {
                cluster = cluster.with_chaos(plan);
            }
            cluster.run(|comm| {
                let mut scratch = SelectScratch::new();
                split_and_reduce(comm, &cfg, &locals[comm.rank()].clone(), &bounds, &mut scratch)
                    .reduced_region
            })
        };
        let clean = run(None);
        let slow = run(Some(simnet::ChaosPlan::new(0).straggler(3, 4.0)));
        assert!(
            slow.makespan() > clean.makespan(),
            "straggler must stretch the makespan: {} vs {}",
            slow.makespan(),
            clean.makespan()
        );
        for (a, b) in clean.results.iter().zip(&slow.results) {
            assert_eq!(a.indexes(), b.indexes());
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn volume_is_at_most_2k_fraction_with_balanced_load() {
        // Uniform random supports on equal regions: each rank sends ≈ 2k(P−1)/P.
        let (p, n, k) = (8, 8192, 512);
        let mut rng = StdRng::seed_from_u64(21);
        let locals: Vec<CooGradient> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect();
        let cfg = OkTopkConfig::new(n, k);
        let bounds = equal_boundaries(n as u32, p);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut scratch = SelectScratch::new();
            split_and_reduce(comm, &cfg, &locals[comm.rank()].clone(), &bounds, &mut scratch);
        });
        let bound = 2.0 * k as f64 * (p - 1) as f64 / p as f64;
        for rank in 0..p {
            let sent = report.ledger.rank_elements(rank) as f64;
            // Uniform supports keep each rank within ~15% of the ideal share.
            assert!(sent <= bound * 1.15, "rank {rank}: sent {sent} > {bound}×1.15");
        }
    }
}
