//! Algorithm 1: the O(k) sparse allreduce.

use crate::balance::balance_and_allgatherv;
use crate::config::OkTopkConfig;
use crate::split_reduce::split_and_reduce;
use collectives::{allgather_items, allreduce_sum_f64};
use simnet::Net;
use sparse::partition::{balanced_boundaries, consensus_boundaries, equal_boundaries};
use sparse::scratch::{exact_threshold_scratch, filter_abs_ge_scratch, select_ge_scratch};
use sparse::threshold::{PeriodicExactEstimator, ThresholdEstimator};
use sparse::{CooGradient, SelectScratch};

/// Persistent state of the O(k) sparse allreduce across training iterations:
/// the reused local/global thresholds, the agreed region boundaries, and the
/// pooled scratch buffers that keep the steady-state selection path off the
/// heap.
///
/// One instance lives on each rank; all instances must be driven with the same
/// iteration numbers (they exchange data collectively every call).
pub struct OkTopk {
    cfg: OkTopkConfig,
    local_est: PeriodicExactEstimator,
    global_th: f32,
    boundaries: Vec<u32>,
    scratch: SelectScratch,
}

/// Everything one `allreduce` call produces, including the instrumentation the
/// paper's Figs. 6–7 report.
#[derive(Clone, Debug)]
pub struct OkTopkOutput {
    /// `u_t`: the sparse sum restricted to the (approximate) global top-k support.
    /// Identical on every rank.
    pub update: CooGradient,
    /// Indexes of this rank's local top-k entries that made it into the global
    /// top-k (Algorithm 1 line 14) — the entries whose residual is cleared.
    pub contributed: Vec<u32>,
    /// Local selection threshold in effect this iteration.
    pub local_th: f32,
    /// Global selection threshold in effect this iteration.
    pub global_th: f32,
    /// Number of locally selected values (target: ≈ k).
    pub local_nnz: usize,
    /// Number of global top-k values (target: ≈ k).
    pub global_nnz: usize,
    /// Whether the data-balancing step ran (4× trigger, §3.1.2).
    pub balanced: bool,
}

impl OkTopk {
    /// Fresh allreduce state for the given configuration.
    pub fn new(cfg: OkTopkConfig) -> Self {
        let local_est = PeriodicExactEstimator::new(cfg.threshold_reeval_period);
        // Steady-state selections land near k entries; start the pool there.
        let scratch = SelectScratch::with_nnz_hint(cfg.k);
        Self { cfg, local_est, global_th: 0.0, boundaries: Vec::new(), scratch }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &OkTopkConfig {
        &self.cfg
    }

    /// Current region boundaries (empty before the first call).
    pub fn boundaries(&self) -> &[u32] {
        &self.boundaries
    }

    /// Export the reused state (local threshold, global threshold, boundaries) for
    /// checkpointing; restoring it with [`import_state`](Self::import_state) makes
    /// a resumed run bit-identical to an uninterrupted one.
    pub fn export_state(&self) -> (Option<f32>, f32, Vec<u32>) {
        (self.local_est.cached(), self.global_th, self.boundaries.clone())
    }

    /// Restore state captured by [`export_state`](Self::export_state).
    pub fn import_state(&mut self, local_th: Option<f32>, global_th: f32, boundaries: Vec<u32>) {
        self.local_est.set_cached(local_th);
        self.global_th = global_th;
        self.boundaries = boundaries;
    }

    /// Whether iteration `t` re-evaluates thresholds (both local and global use τ′).
    pub fn is_reeval_iteration(&self, t: usize) -> bool {
        t == 1 || (t - 1).is_multiple_of(self.cfg.threshold_reeval_period)
    }

    /// Whether iteration `t` recomputes region boundaries.
    pub fn is_repartition_iteration(&self, t: usize) -> bool {
        t == 1
            || (t - 1).is_multiple_of(self.cfg.space_repartition_period)
            || self.boundaries.is_empty()
    }

    /// One O(k) sparse allreduce of the accumulator `acc` at iteration `t` (1-based,
    /// as in Algorithm 1). Collective: every rank must call with the same `t`.
    pub fn allreduce<C: Net>(&mut self, comm: &mut C, acc: &[f32], t: usize) -> OkTopkOutput {
        assert_eq!(acc.len(), self.cfg.n, "accumulator length must equal configured n");
        assert!(t >= 1, "iterations are 1-based, as in Algorithm 1");
        let p = comm.size();
        let n = self.cfg.n as u32;

        // Lines 2–4: local threshold, re-evaluated every τ′ iterations. Both the
        // exact threshold pass and the O(n) scan run on pooled scratch buffers
        // (and data-parallel under OKTOPK_THREADS); at steady state neither
        // touches the heap.
        let local_th = self.local_est.threshold_scratch(t, acc, self.cfg.k, &mut self.scratch);
        let local = select_ge_scratch(acc, local_th, &mut self.scratch);

        // Lines 5–7: region boundaries, re-evaluated every τ iterations. Consensus
        // is a P+1-element f64 allreduce — latency-only, amortized over τ.
        if self.is_repartition_iteration(t) {
            self.boundaries = if self.cfg.balanced_partition && p > 1 {
                comm.set_phase("okt_boundary");
                let mine = balanced_boundaries(local.indexes(), n, p);
                let sum = allreduce_sum_f64(comm, mine);
                consensus_boundaries(&sum, p, n)
            } else {
                equal_boundaries(n, p)
            };
        }

        // Line 8: split and reduce.
        let sr = split_and_reduce(comm, &self.cfg, &local, &self.boundaries, &mut self.scratch);

        // Lines 9–12: global threshold re-evaluation, every τ′ iterations. This is
        // the expensive allgatherv the reuse strategy amortizes (the gather's own
        // allocations happen once per τ′, not per iteration).
        if self.is_reeval_iteration(t) {
            comm.set_phase("okt_reeval_gather");
            let all: Vec<CooGradient> = allgather_items(comm, sr.reduced_region.clone());
            let values: Vec<f32> = all.iter().flat_map(|g| g.values().iter().copied()).collect();
            self.global_th = exact_threshold_scratch(&values, self.cfg.k, &mut self.scratch);
        }

        // Line 13: balance and allgatherv over the global-threshold survivors.
        let survivors =
            filter_abs_ge_scratch(&sr.reduced_region, self.global_th, &mut self.scratch);
        self.scratch.recycle(sr.reduced_region);
        let bal = balance_and_allgatherv(comm, &self.cfg, survivors);

        // Line 14: indexes of local values that contributed to the global top-k.
        let contributed = intersect_sorted(local.indexes(), bal.global_topk.indexes());
        let local_nnz = sr.local_nnz;
        self.scratch.recycle(local);

        OkTopkOutput {
            global_nnz: bal.global_nnz,
            balanced: bal.balanced,
            update: bal.global_topk,
            contributed,
            local_th,
            global_th: self.global_th,
            local_nnz,
        }
    }
}

/// Intersection of two strictly increasing index lists (two-pointer merge).
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};
    use sparse::select::{exact_threshold, select_ge};

    fn random_accs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    /// Serial reference with the *same* selection semantics (threshold scans with
    /// exact thresholds): Topk(Σᵢ Topk(accᵢ)).
    fn reference(accs: &[Vec<f32>], k: usize) -> CooGradient {
        let mut sum = CooGradient::new();
        for acc in accs {
            let th = exact_threshold(acc, k);
            sum.merge_sum_into(&select_ge(acc, th));
        }
        let th = exact_threshold(sum.values(), k);
        sum.filter_abs_ge(th)
    }

    #[test]
    fn matches_semantic_with_fresh_thresholds() {
        // τ′ = 1 forces exact thresholds every iteration → the result must equal
        // Topk(Σ Topk(·)) exactly (up to f32 reassociation in the region sums).
        for &(p, n, k) in &[(2usize, 120usize, 12usize), (4, 300, 30), (8, 512, 25), (6, 250, 20)] {
            let accs = random_accs(p, n, 1000 + p as u64);
            let expect = reference(&accs, k);
            let report = Cluster::new(p, CostModel::aries()).run(|comm| {
                let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1, 1));
                okt.allreduce(comm, &accs[comm.rank()], 1)
            });
            for out in &report.results {
                assert_eq!(out.update.indexes(), expect.indexes(), "p={p}");
                for (x, y) in out.update.values().iter().zip(expect.values()) {
                    assert!((x - y).abs() < 1e-4);
                }
                assert_eq!(out.global_nnz, expect.nnz());
            }
        }
    }

    #[test]
    fn all_ranks_agree_across_iterations() {
        let (p, n, k) = (4, 200, 16);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(4, 4));
            let mut rng = StdRng::seed_from_u64(31 + comm.rank() as u64);
            let mut updates = Vec::new();
            for t in 1..=6 {
                let acc: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let out = okt.allreduce(comm, &acc, t);
                updates.push(out.update);
            }
            updates
        });
        for r in 1..p {
            assert_eq!(report.results[r], report.results[0], "rank {r} diverged");
        }
    }

    #[test]
    fn contributed_is_subset_of_both() {
        let (p, n, k) = (4, 150, 15);
        let accs = random_accs(p, n, 77);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k));
            let out = okt.allreduce(comm, &accs[comm.rank()], 1);
            let local_th = out.local_th;
            (out, local_th, accs[comm.rank()].clone())
        });
        for (out, local_th, acc) in &report.results {
            let global: std::collections::HashSet<u32> =
                out.update.indexes().iter().copied().collect();
            for &i in &out.contributed {
                assert!(global.contains(&i));
                assert!(acc[i as usize].abs() >= *local_th);
            }
        }
    }

    #[test]
    fn steady_state_volume_within_6k_bound() {
        // Two deterministic runs differing by one steady-state iteration isolate the
        // per-iteration traffic; it must respect the paper's 6k(P−1)/P bound (with a
        // small allowance because stale thresholds select ≈k, not exactly k).
        let (p, n, k) = (8, 4096, 256);
        let accs1 = random_accs(p, n, 5);
        let accs2 = random_accs(p, n, 6); // same distribution → thresholds stay valid

        let run = |iters: usize| {
            let accs1 = accs1.clone();
            let accs2 = accs2.clone();
            Cluster::new(p, CostModel::aries())
                .run(move |comm| {
                    let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1000, 1000));
                    for t in 1..=iters {
                        let acc = if t == 1 { &accs1 } else { &accs2 };
                        okt.allreduce(comm, &acc[comm.rank()], t);
                    }
                })
                .ledger
        };

        let l1 = run(1);
        let l2 = run(2);
        let bound = 6.0 * k as f64 * (p - 1) as f64 / p as f64;
        for rank in 0..p {
            let steady = (l2.rank_elements(rank) - l1.rank_elements(rank)) as f64;
            assert!(
                steady <= bound * 1.10,
                "rank {rank}: steady-state volume {steady} exceeds 6k(P-1)/P = {bound}"
            );
            assert!(steady > 0.0);
        }
    }

    #[test]
    fn steady_state_volume_at_least_lower_bound_total() {
        // Theorem 3.1: every rank must receive ≥ 2k(P−1)/P elements, so the cluster
        // total is ≥ 2k(P−1). (Sent == received in aggregate.)
        let (p, n, k) = (8, 4096, 256);
        let accs1 = random_accs(p, n, 5);
        let accs2 = random_accs(p, n, 6);
        let run = |iters: usize| {
            let accs1 = accs1.clone();
            let accs2 = accs2.clone();
            Cluster::new(p, CostModel::aries())
                .run(move |comm| {
                    let mut okt = OkTopk::new(OkTopkConfig::new(n, k).with_periods(1000, 1000));
                    for t in 1..=iters {
                        let acc = if t == 1 { &accs1 } else { &accs2 };
                        okt.allreduce(comm, &acc[comm.rank()], t);
                    }
                })
                .ledger
        };
        let steady = run(2).total_elements() - run(1).total_elements();
        // The global top-k holds ≈k entries; allow the threshold approximation ±25%.
        let lower = (2.0 * k as f64 * (p - 1) as f64 * 0.75) as u64;
        assert!(steady >= lower, "total steady volume {steady} < {lower}");
    }

    #[test]
    fn single_rank_degenerates_to_local_topk() {
        let n = 64;
        let k = 8;
        // Strictly increasing magnitudes: no ties, so threshold selection is exact.
        let acc: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.1).collect();
        let report = Cluster::new(1, CostModel::free()).run(|comm| {
            let mut okt = OkTopk::new(OkTopkConfig::new(n, k));
            okt.allreduce(comm, &acc, 1)
        });
        let out = &report.results[0];
        let expect = sparse::select::topk_exact(&acc, k);
        assert_eq!(out.update.indexes(), expect.indexes());
        assert_eq!(out.contributed, expect.indexes());
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 9], &[2, 3, 9, 10]), vec![3, 9]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[7], &[7]), vec![7]);
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn naive_partition_ablation_still_correct() {
        let (p, n, k) = (4, 300, 30);
        let accs = random_accs(p, n, 13);
        let expect = reference(&accs, k);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut okt = OkTopk::new(
                OkTopkConfig::new(n, k)
                    .with_periods(1, 1)
                    .with_balanced_partition(false)
                    .with_rotation(false)
                    .with_data_balancing(false),
            );
            okt.allreduce(comm, &accs[comm.rank()], 1)
        });
        for out in &report.results {
            assert_eq!(out.update.indexes(), expect.indexes());
        }
    }
}
