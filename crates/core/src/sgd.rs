//! Algorithm 2: Ok-Topk SGD — residual accumulation around the sparse allreduce.
//!
//! Values that are *not* selected into the global top-k are not lost: they stay in a
//! per-worker residual ε and re-enter the accumulator next iteration, eventually
//! becoming large enough to be selected. Residual accumulation is what makes Topk
//! SGD converge (\[4\]; Theorem 4.1 builds on it under Assumption 1).
//!
//! Two usage modes, matching §5:
//! - **SGD mode** (VGG, LSTM): pass `scale = learning rate`; apply the returned
//!   update directly: `w ← w − update`.
//! - **Adam mode** (BERT): pass `scale = 1.0`; the returned update is the averaged
//!   sparse gradient `u_t / P`, which the caller feeds to Adam.

use crate::config::OkTopkConfig;
use crate::oktopk::{OkTopk, OkTopkOutput};
use simnet::Net;
use sparse::CooGradient;

/// Per-worker Ok-Topk SGD state: the allreduce state plus the residual ε.
///
/// The accumulator buffer is persistent: each step fuses ε + scale·grad into it
/// in place and then *swaps* it with the residual, so the dense O(n) part of a
/// step performs no heap allocation after the first iteration.
pub struct OkTopkSgd {
    allreduce: OkTopk,
    residual: Vec<f32>,
    /// Reused accumulator storage (previous iteration's residual buffer).
    acc: Vec<f32>,
    t: usize,
}

/// One optimizer step's result.
pub struct SparseStep {
    /// `u_t / P` — the model update (SGD mode) or averaged sparse gradient (Adam
    /// mode). Identical on every rank.
    pub update: CooGradient,
    /// Full output of the underlying sparse allreduce (thresholds, counts, …).
    pub meta: OkTopkOutput,
}

impl OkTopkSgd {
    /// Fresh optimizer state (zero residual) for the given configuration.
    pub fn new(cfg: OkTopkConfig) -> Self {
        let n = cfg.n;
        Self { allreduce: OkTopk::new(cfg), residual: vec![0.0; n], acc: vec![0.0; n], t: 0 }
    }

    /// The residual ε currently held by this worker.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Restore the residual and iteration counter from a checkpoint.
    ///
    /// All ranks must restore to the same iteration (the threshold/boundary
    /// re-evaluation schedule is a function of it). For bit-exact resumption also
    /// restore the reused threshold/boundary state via
    /// [`allreduce_state_mut`](Self::allreduce_state_mut) +
    /// [`OkTopk::import_state`].
    pub fn restore(&mut self, residual: Vec<f32>, iteration: usize) {
        assert_eq!(residual.len(), self.residual.len());
        self.residual = residual;
        self.t = iteration;
    }

    /// Mutable access to the allreduce state (for checkpoint restore).
    pub fn allreduce_state_mut(&mut self) -> &mut OkTopk {
        &mut self.allreduce
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> usize {
        self.t
    }

    /// The underlying allreduce state (thresholds, boundaries, periods).
    pub fn allreduce_state(&self) -> &OkTopk {
        &self.allreduce
    }

    /// The accumulator this step would hand to the allreduce (ε + scale·grad);
    /// exposed for the ξ-measurement harness, which needs it *before* stepping.
    pub fn peek_accumulator(&self, grad: &[f32], scale: f32) -> Vec<f32> {
        self.residual.iter().zip(grad).map(|(&e, &g)| e + scale * g).collect()
    }

    /// One Ok-Topk SGD step (Algorithm 2 lines 4–7).
    ///
    /// `grad` is this worker's local stochastic gradient; `scale` is α in SGD mode
    /// or 1.0 in Adam mode. Collective: all ranks step together.
    pub fn step<C: Net>(&mut self, comm: &mut C, grad: &[f32], scale: f32) -> SparseStep {
        assert_eq!(grad.len(), self.residual.len());
        self.t += 1;

        // Line 4: accumulate residuals into the fresh gradient — fused into the
        // persistent accumulator buffer, no allocation. Lane-vectorized and
        // elementwise, so bit-identical to the scalar loop.
        sparse::simd::fused_scale_add(&mut self.acc, &self.residual, grad, scale);

        // Line 5: O(k) sparse allreduce of the accumulator.
        let meta = self.allreduce.allreduce(comm, &self.acc, self.t);

        // Line 6: keep everything that did NOT contribute as the new residual;
        // the old residual buffer becomes the next iteration's accumulator.
        std::mem::swap(&mut self.residual, &mut self.acc);
        for &i in &meta.contributed {
            self.residual[i as usize] = 0.0;
        }

        // Line 7: the model update is u_t / P.
        let mut update = meta.update.clone();
        update.scale(1.0 / comm.size() as f32);
        SparseStep { update, meta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};

    #[test]
    fn residual_mass_is_conserved() {
        // acc = ε + α·g must be exactly partitioned between the new residual and the
        // contributed entries: ε'ᵢ + [i contributed]·accᵢ = accᵢ.
        let (p, n, k) = (4, 120, 12);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k));
            let mut rng = StdRng::seed_from_u64(17 + comm.rank() as u64);
            let mut ok = true;
            for _ in 0..5 {
                let grad: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let acc = sgd.peek_accumulator(&grad, 0.1);
                let step = sgd.step(comm, &grad, 0.1);
                let contributed: std::collections::HashSet<u32> =
                    step.meta.contributed.iter().copied().collect();
                for i in 0..n {
                    let expect = if contributed.contains(&(i as u32)) { 0.0 } else { acc[i] };
                    ok &= sgd.residual()[i] == expect;
                }
            }
            ok
        });
        assert!(report.results.iter().all(|&ok| ok));
    }

    #[test]
    fn updates_identical_across_ranks() {
        let (p, n, k) = (8, 200, 10);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(2, 3));
            let mut rng = StdRng::seed_from_u64(100 + comm.rank() as u64);
            let mut updates = Vec::new();
            for _ in 0..6 {
                let grad: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                updates.push(sgd.step(comm, &grad, 0.05).update);
            }
            updates
        });
        for r in 1..p {
            assert_eq!(report.results[r], report.results[0]);
        }
    }

    #[test]
    fn residuals_eventually_flush_small_coordinates() {
        // One coordinate receives a tiny but persistent gradient on every worker;
        // residual accumulation must eventually push it into the global top-k.
        let (p, n, k) = (4, 64, 2);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(1, 1));
            let mut seen_small_coord = false;
            for _ in 0..60 {
                // Large noise on coords 0..8 varies by iteration; coordinate 40 gets
                // a small constant signal.
                let mut grad = vec![0.0f32; n];
                let t = sgd.iteration() as f32;
                for c in 0..8 {
                    grad[c] = ((t + c as f32) * 0.7).sin();
                }
                grad[40] = 0.05;
                let step = sgd.step(comm, &grad, 1.0);
                if step.update.indexes().contains(&40) {
                    seen_small_coord = true;
                }
            }
            seen_small_coord
        });
        assert!(report.results.iter().all(|&ok| ok), "coordinate 40 never selected");
    }

    #[test]
    fn converges_on_separable_quadratic() {
        // fᵢ(w) = ½‖w − cᵢ‖²; the average objective's optimum is mean(cᵢ).
        // Ok-Topk SGD with residual accumulation must approach it despite k ≪ n.
        // Theorem 4.1 promises convergence only under *diminishing* learning rates —
        // with antagonistic per-worker gradients a constant rate limit-cycles — so
        // the test uses a 1/t schedule and asserts a 10× error reduction.
        let (p, n, k) = (4, 64, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let centers: Vec<Vec<f32>> =
            (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut mean = vec![0.0f32; n];
        for c in &centers {
            for (m, x) in mean.iter_mut().zip(c) {
                *m += x / p as f32;
            }
        }
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut sgd = OkTopkSgd::new(OkTopkConfig::new(n, k).with_periods(8, 8));
            let mut w = vec![0.0f32; n];
            for it in 0..1200 {
                let grad: Vec<f32> =
                    w.iter().zip(&centers[comm.rank()]).map(|(wi, ci)| wi - ci).collect();
                let lr = 0.1 / (1.0 + it as f32 / 100.0);
                let step = sgd.step(comm, &grad, lr);
                for (i, v) in step.update.iter() {
                    w[i as usize] -= v;
                }
            }
            let err: f64 =
                w.iter().zip(&mean).map(|(a, b)| ((a - b) as f64).powi(2)).sum::<f64>().sqrt();
            err
        });
        let initial: f64 = mean.iter().map(|&m| (m as f64).powi(2)).sum::<f64>().sqrt();
        for err in &report.results {
            assert!(*err < initial / 10.0, "did not converge: err={err}, initial={initial}");
        }
    }
}
