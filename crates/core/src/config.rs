//! Configuration of the O(k) sparse allreduce.

/// All tunables of Algorithm 1 plus the ablation switches for its optimizations.
///
/// Defaults follow the paper: τ (space repartition period) = 64 (§3.1.1),
/// τ′ (threshold re-evaluation period) = 32 (§5.2; BERT uses 128), data-balancing
/// trigger = 4× the mean (§5.3).
#[derive(Clone, Debug)]
pub struct OkTopkConfig {
    /// Dense gradient length `n`.
    pub n: usize,
    /// Top-k target `k` (the paper's density is `k/n`).
    pub k: usize,
    /// τ: iterations between space repartitions.
    pub space_repartition_period: usize,
    /// τ′: iterations between exact threshold re-evaluations (local and global).
    pub threshold_reeval_period: usize,
    /// Run data balancing before the final allgatherv when
    /// `max_chunk > balance_trigger × mean_chunk` (§3.1.2; paper uses 4.0).
    pub balance_trigger: f64,
    /// Messages per bucket in split-and-reduce (§3.1.1 bucketing optimization).
    pub bucket_size: usize,
    /// Ablation: balanced space repartition (true) vs naive equal-width regions.
    pub balanced_partition: bool,
    /// Ablation: destination rotation (true) vs everyone-hits-worker-i-at-step-i.
    pub rotation: bool,
    /// Ablation: enable the data-balancing step of balance-and-allgatherv.
    pub data_balancing: bool,
    /// Modeled local-reduction cost per merged element, seconds (charged via
    /// `Comm::compute` while merging received shards). Zero disables compute
    /// modeling inside the allreduce; the training harness sets a calibrated value.
    pub merge_cost_per_elem: f64,
}

impl OkTopkConfig {
    /// Paper-default configuration for a gradient of length `n` with `k` survivors.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > 0, "gradient length must be positive");
        assert!(k > 0 && k <= n, "need 0 < k <= n (k={k}, n={n})");
        Self {
            n,
            k,
            space_repartition_period: 64,
            threshold_reeval_period: 32,
            balance_trigger: 4.0,
            bucket_size: 8,
            balanced_partition: true,
            rotation: true,
            data_balancing: true,
            merge_cost_per_elem: 0.0,
        }
    }

    /// Density `k/n`.
    pub fn density(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Builder-style setters for the ablation harness.
    /// Toggle the balanced space repartition (ablation: off = equal regions).
    pub fn with_balanced_partition(mut self, on: bool) -> Self {
        self.balanced_partition = on;
        self
    }

    /// Toggle destination rotation in split-and-reduce.
    pub fn with_rotation(mut self, on: bool) -> Self {
        self.rotation = on;
        self
    }

    /// Toggle the data-balancing step before the final allgatherv.
    pub fn with_data_balancing(mut self, on: bool) -> Self {
        self.data_balancing = on;
        self
    }

    /// Set the split-and-reduce bucket size.
    pub fn with_bucket_size(mut self, b: usize) -> Self {
        assert!(b >= 1);
        self.bucket_size = b;
        self
    }

    /// Set τ (space repartition) and τ′ (threshold re-evaluation) periods.
    pub fn with_periods(mut self, tau: usize, tau_prime: usize) -> Self {
        assert!(tau >= 1 && tau_prime >= 1);
        self.space_repartition_period = tau;
        self.threshold_reeval_period = tau_prime;
        self
    }

    /// Set the modeled per-element merge cost charged inside split-and-reduce.
    pub fn with_merge_cost(mut self, per_elem: f64) -> Self {
        self.merge_cost_per_elem = per_elem;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OkTopkConfig::new(1000, 10);
        assert_eq!(c.space_repartition_period, 64);
        assert_eq!(c.threshold_reeval_period, 32);
        assert_eq!(c.balance_trigger, 4.0);
        assert!(c.balanced_partition && c.rotation && c.data_balancing);
        assert!((c.density() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn rejects_k_over_n() {
        OkTopkConfig::new(10, 11);
    }

    #[test]
    fn builders_flip_switches() {
        let c = OkTopkConfig::new(100, 10)
            .with_balanced_partition(false)
            .with_rotation(false)
            .with_data_balancing(false)
            .with_bucket_size(3)
            .with_periods(5, 7)
            .with_merge_cost(1e-9);
        assert!(!c.balanced_partition && !c.rotation && !c.data_balancing);
        assert_eq!(c.bucket_size, 3);
        assert_eq!(c.space_repartition_period, 5);
        assert_eq!(c.threshold_reeval_period, 7);
        assert_eq!(c.merge_cost_per_elem, 1e-9);
    }
}
