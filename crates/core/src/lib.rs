#![warn(missing_docs)]

//! # oktopk — the O(k) sparse allreduce and Ok-Topk SGD
//!
//! This crate implements the paper's contribution:
//!
//! - **Algorithm 1, O(k) sparse allreduce** ([`OkTopk::allreduce`]): two phases,
//!   *split and reduce* ([`split_reduce`]) and *balance and allgatherv*
//!   ([`balance`]), glued together with the periodic threshold re-evaluation and
//!   space-repartition machinery of §3.1. Per-iteration communication volume is
//!   bounded by `6k(P−1)/P` elements (Theorem 3.1 shows `2k(P−1)/P` is the lower
//!   bound, so the algorithm is asymptotically optimal) — the bound is enforced by
//!   tests against the simnet traffic ledger.
//! - **Algorithm 2, Ok-Topk SGD** ([`OkTopkSgd`]): residual accumulation, sparse
//!   allreduce of the accumulator, residual update at the contributing indexes,
//!   and the `u_t / P` model update.
//!
//! The semantic computed is `Topk(Σᵢ Topk(accᵢ))` up to the threshold
//! approximation of §3.1.3: local and global top-k selections use thresholds that
//! are re-evaluated exactly every τ′ iterations and reused in between.
//!
//! Every optimization of the paper is present and individually switchable for the
//! ablation studies (Fig. 7): balanced space repartition vs naive equal regions,
//! destination rotation vs naive ordering, bucketing, and the 4× data-balancing
//! trigger before the final allgatherv.

pub mod balance;
pub mod config;
pub mod oktopk;
pub mod sgd;
pub mod split_reduce;

pub use config::OkTopkConfig;
pub use oktopk::{OkTopk, OkTopkOutput};
pub use sgd::{OkTopkSgd, SparseStep};
