//! Parallel/serial parity for the scratch-based selection kernels.
//!
//! The chunked two-pass implementations in `sparse::scratch` promise results
//! *bit-identical* to the serial reference in `sparse::select` for every thread
//! count. These properties exercise the explicit `*_with_threads` variants (no
//! size gate) so the parallel code paths run even on small inputs, with thread
//! counts and lengths deliberately chosen not to divide evenly into chunks,
//! and counts (8, 17) oversubscribed beyond any plausible core count so the
//! pool's help-drain path is covered. Every parallel call goes through the
//! persistent okpar worker pool.

use proptest::prelude::*;
use sparse::scratch::{
    exact_threshold_with_threads, filter_abs_ge_scratch, select_ge_with_threads,
    topk_exact_with_threads, SelectScratch,
};
use sparse::select::{exact_threshold, select_ge, topk_exact};
use sparse::CooGradient;

const THREADS: [usize; 6] = [1, 2, 3, 4, 8, 17];

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Dense vectors with repeated magnitudes (ties), exact zeros and signed
/// values — the cases where a sloppy parallel merge would diverge first.
fn dense_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            -1.0f32..1.0f32,
            -1.0f32..1.0f32,
            -1.0f32..1.0f32,
            Just(0.0f32),
            (0..8u32).prop_map(|q| q as f32 * 0.125),
            (0..8u32).prop_map(|q| q as f32 * -0.125),
        ],
        0..523,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn select_ge_matches_serial_for_all_thread_counts(
        dense in dense_vec(),
        threshold in 0.0f32..0.9,
    ) {
        let serial = select_ge(&dense, threshold);
        for threads in THREADS {
            let mut scratch = SelectScratch::new();
            // Run twice per scratch so the warm (pooled-buffer) path is hit too.
            for round in 0..2 {
                let got = select_ge_with_threads(&dense, threshold, &mut scratch, threads);
                prop_assert_eq!(
                    got.indexes(), serial.indexes(),
                    "indexes diverged: threads={} round={}", threads, round
                );
                prop_assert_eq!(
                    bits(got.values()), bits(serial.values()),
                    "values diverged: threads={} round={}", threads, round
                );
                scratch.recycle(got);
            }
        }
    }

    #[test]
    fn exact_threshold_matches_serial_for_all_thread_counts(
        dense in dense_vec(),
        k in 0usize..64,
    ) {
        let serial = exact_threshold(&dense, k);
        for threads in THREADS {
            let mut scratch = SelectScratch::new();
            let got = exact_threshold_with_threads(&dense, k, &mut scratch, threads);
            prop_assert_eq!(
                got.to_bits(), serial.to_bits(),
                "threads={}: got {} want {}", threads, got, serial
            );
        }
    }

    #[test]
    fn topk_exact_matches_serial_for_all_thread_counts(
        dense in dense_vec(),
        k in 0usize..64,
    ) {
        let serial = topk_exact(&dense, k);
        for threads in THREADS {
            let mut scratch = SelectScratch::new();
            let got = topk_exact_with_threads(&dense, k, &mut scratch, threads);
            prop_assert_eq!(got.indexes(), serial.indexes(), "threads={}", threads);
            prop_assert_eq!(bits(got.values()), bits(serial.values()), "threads={}", threads);
        }
    }

    #[test]
    fn filter_abs_ge_scratch_matches_coo_filter(
        dense in dense_vec(),
        threshold in 0.0f32..0.9,
    ) {
        // Build a sparse input from the dense draw, then filter both ways.
        let g = select_ge(&dense, 1e-6);
        let want = g.filter_abs_ge(threshold);
        let mut scratch = SelectScratch::new();
        let got = filter_abs_ge_scratch(&g, threshold, &mut scratch);
        prop_assert_eq!(got.indexes(), want.indexes());
        prop_assert_eq!(bits(got.values()), bits(want.values()));
    }
}

/// Deterministic sweep over lengths straddling chunk boundaries: `len % threads`
/// covers 0, 1 and threads−1 so the uneven-chunk split (first `len % threads`
/// chunks one element longer) is exercised explicitly.
#[test]
fn boundary_lengths_are_bit_identical() {
    let mut scratch = SelectScratch::new();
    for &threads in &THREADS {
        for len in [0, 1, 2, 6, 7, 8, 13, 27, 28, 29, 255, 256, 257] {
            let dense: Vec<f32> =
                (0..len).map(|i| ((i as f32 * 0.37).sin() * 100.0).round() / 100.0).collect();
            let serial_sel = select_ge(&dense, 0.25);
            let got_sel = select_ge_with_threads(&dense, 0.25, &mut scratch, threads);
            assert_eq!(got_sel, serial_sel, "select_ge len={len} threads={threads}");
            scratch.recycle(got_sel);

            for k in [0, 1, len / 2, len] {
                let want = exact_threshold(&dense, k);
                let got = exact_threshold_with_threads(&dense, k, &mut scratch, threads);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "exact_threshold len={len} k={k} threads={threads}"
                );

                let want_k = topk_exact(&dense, k);
                let got_k = topk_exact_with_threads(&dense, k, &mut scratch, threads);
                assert_eq!(got_k, want_k, "topk_exact len={len} k={k} threads={threads}");
            }
        }
    }
}

/// SIMD/scalar lane parity: every `sparse::simd` kernel must be bit-identical
/// to the scalar reference at widths {scalar, 4, 8}, regardless of whether the
/// host accelerates the width (unsupported widths fall back to portable lane
/// cores computing the same math).
mod lane_parity {
    use super::{bits, dense_vec};
    use proptest::prelude::*;
    use sparse::simd::{self, Lanes};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn counts_match_scalar(dense in dense_vec(), th in 0.0f32..0.9) {
            let want_ge = dense.iter().filter(|v| v.abs() >= th).count();
            let want_keep = dense.iter().filter(|&&v| v.abs() >= th && v != 0.0).count();
            for lanes in Lanes::ALL {
                prop_assert_eq!(simd::count_abs_ge_with_lanes(&dense, th, lanes), want_ge,
                    "count_abs_ge lanes={:?}", lanes);
                prop_assert_eq!(simd::count_keep_with_lanes(&dense, th, lanes), want_keep,
                    "count_keep lanes={:?}", lanes);
            }
        }

        #[test]
        fn keep_scan_matches_scalar(dense in dense_vec(), th in 0.0f32..0.9, base in 0u32..1000) {
            let (mut want_i, mut want_v) = (Vec::new(), Vec::new());
            simd::scan_keep_append_with_lanes(&dense, th, base, &mut want_i, &mut want_v, Lanes::S1);
            for lanes in [Lanes::W4, Lanes::W8] {
                let (mut gi, mut gv) = (Vec::new(), Vec::new());
                simd::scan_keep_append_with_lanes(&dense, th, base, &mut gi, &mut gv, lanes);
                prop_assert_eq!(&gi, &want_i, "append indexes lanes={:?}", lanes);
                prop_assert_eq!(bits(&gv), bits(&want_v), "append values lanes={:?}", lanes);
                let mut wi = vec![0u32; want_i.len()];
                let mut wv = vec![0f32; want_v.len()];
                let n = simd::scan_keep_write_with_lanes(&dense, th, base, &mut wi, &mut wv, lanes);
                prop_assert_eq!(n, want_i.len(), "write count lanes={:?}", lanes);
                prop_assert_eq!(&wi, &want_i, "write indexes lanes={:?}", lanes);
                prop_assert_eq!(bits(&wv), bits(&want_v), "write values lanes={:?}", lanes);
            }
        }

        #[test]
        fn elementwise_kernels_match_scalar(
            dense in dense_vec(),
            other in dense_vec(),
            scale in -2.0f32..2.0,
        ) {
            let n = dense.len().min(other.len());
            let (a, g) = (&dense[..n], &other[..n]);
            for lanes in Lanes::ALL {
                let mut mags = vec![0f32; n];
                simd::abs_fill_with_lanes(&mut mags, a, lanes);
                let want: Vec<f32> = a.iter().map(|v| v.abs()).collect();
                prop_assert_eq!(bits(&mags), bits(&want), "abs_fill lanes={:?}", lanes);

                let mut acc = vec![0f32; n];
                simd::fused_scale_add_with_lanes(&mut acc, a, g, scale, lanes);
                let want: Vec<f32> = a.iter().zip(g).map(|(&e, &gv)| e + scale * gv).collect();
                prop_assert_eq!(bits(&acc), bits(&want), "fused_scale_add lanes={:?}", lanes);

                let mut scaled = a.to_vec();
                simd::scale_inplace_with_lanes(&mut scaled, scale, lanes);
                let want: Vec<f32> = a.iter().map(|&v| v * scale).collect();
                prop_assert_eq!(bits(&scaled), bits(&want), "scale_inplace lanes={:?}", lanes);

                let want_max = a.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                prop_assert_eq!(
                    simd::max_abs_with_lanes(a, lanes).to_bits(), want_max.to_bits(),
                    "max_abs lanes={:?}", lanes
                );
            }
        }

        #[test]
        fn axpy_kernels_match_scalar(
            rows in prop::collection::vec(super::dense_vec(), 4..=4),
            coef in prop::collection::vec(-2.0f32..2.0, 4..=4),
        ) {
            let n = rows.iter().map(Vec::len).min().unwrap_or(0);
            let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
            // Scalar reference: four sequential row updates, ascending order.
            let mut want = init.clone();
            for (r, &c) in rows.iter().zip(&coef) {
                for (o, &rv) in want.iter_mut().zip(&r[..n]) {
                    *o += c * rv;
                }
            }
            for lanes in Lanes::ALL {
                let mut got = init.clone();
                simd::axpy4_with_lanes(
                    &mut got,
                    [&rows[0][..n], &rows[1][..n], &rows[2][..n], &rows[3][..n]],
                    [coef[0], coef[1], coef[2], coef[3]],
                    lanes,
                );
                prop_assert_eq!(bits(&got), bits(&want), "axpy4 lanes={:?}", lanes);

                let mut got1 = init.clone();
                for (r, &c) in rows.iter().zip(&coef) {
                    simd::axpy_with_lanes(&mut got1, &r[..n], c, lanes);
                }
                prop_assert_eq!(bits(&got1), bits(&want), "axpy chain lanes={:?}", lanes);
            }
        }
    }
}

/// A shared scratch carried across heterogeneous calls must never leak state
/// from one call into the next.
#[test]
fn scratch_reuse_across_mixed_calls_is_stateless() {
    let mut scratch = SelectScratch::new();
    let a: Vec<f32> = (0..300).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
    let b: Vec<f32> = (0..41).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.0).collect();
    for _ in 0..3 {
        for threads in THREADS {
            assert_eq!(select_ge_with_threads(&a, 0.5, &mut scratch, threads), select_ge(&a, 0.5));
            assert_eq!(topk_exact_with_threads(&b, 9, &mut scratch, threads), topk_exact(&b, 9));
            let g = CooGradient::from_sorted(vec![2, 5, 9], vec![0.1, -0.9, 0.4]);
            assert_eq!(filter_abs_ge_scratch(&g, 0.3, &mut scratch), g.filter_abs_ge(0.3));
        }
    }
}
