//! Pool parity under the process-global thread knob.
//!
//! The `parity` suite pins thread counts explicitly; this one drives the
//! *auto-dispatching* wrappers (`exact_threshold_scratch`, `select_ge_scratch`,
//! `topk_exact_scratch`) through `okpar::set_threads` — the runtime equivalent
//! of `OKTOPK_THREADS` — over {1, 3, 8, 17}, including counts oversubscribed
//! beyond any plausible core count. Inputs are sized well above the
//! `SCAN_GRAIN` granularity cutoff so the parallel path actually engages, and
//! every result must be bit-identical to the plain serial references in
//! `sparse::select`.
//!
//! Kept as a single `#[test]` so nothing else in this binary races on the
//! global knob; the knob is restored (`set_threads(0)`) on exit.

use sparse::scratch::{
    exact_threshold_scratch, select_ge_scratch, topk_exact_scratch, SelectScratch, SCAN_GRAIN,
};
use sparse::select::{exact_threshold, select_ge, topk_exact};

fn pseudo_dense(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let v = ((h >> 33) % 2000) as f32 / 1000.0 - 1.0;
            // Exact zeros + tie-prone quantized values: the regimes where a
            // sloppy parallel merge would diverge first.
            if v.abs() < 0.5 {
                0.0
            } else {
                (v * 8.0).round() / 8.0
            }
        })
        .collect()
}

#[test]
fn auto_wrappers_bit_identical_under_global_thread_knob() {
    // Big enough that threads_for(n, SCAN_GRAIN) hits the configured cap.
    let n = 8 * SCAN_GRAIN + 13;
    let dense = pseudo_dense(n, 7);
    let k = n / 50;

    let th_ref = exact_threshold(&dense, k);
    let sel_ref = select_ge(&dense, th_ref);
    let topk_ref = topk_exact(&dense, k);

    for threads in [1usize, 3, 8, 17] {
        okpar::set_threads(threads);
        let mut scratch = SelectScratch::new();
        // Two rounds per knob setting so the warm (pooled-buffer) path runs too.
        for round in 0..2 {
            let th = exact_threshold_scratch(&dense, k, &mut scratch);
            assert_eq!(
                th.to_bits(),
                th_ref.to_bits(),
                "exact_threshold threads={threads} round={round}"
            );
            let sel = select_ge_scratch(&dense, th, &mut scratch);
            assert_eq!(sel, sel_ref, "select_ge threads={threads} round={round}");
            scratch.recycle(sel);
            let topk = topk_exact_scratch(&dense, k, &mut scratch);
            assert_eq!(topk, topk_ref, "topk threads={threads} round={round}");
            scratch.recycle(topk);
        }
        if threads > 1 {
            assert!(
                okpar::pool_workers() >= threads.min(okpar::MAX_THREADS) - 1,
                "pool did not grow to serve threads={threads}"
            );
        }
    }
    okpar::set_threads(0);
}
