//! Property tests for the sparse-gradient machinery.

use proptest::prelude::*;
use sparse::coo::CooGradient;
use sparse::partition::{balanced_boundaries, consensus_boundaries, region_counts, region_of};
use sparse::select::{exact_threshold, exact_threshold_by_sort, select_ge, topk_exact};

fn dense_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100i32..100, 1..300)
        .prop_map(|v| v.into_iter().map(|x| x as f32 * 0.125).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quickselect threshold equals full-sort threshold for every input and k.
    #[test]
    fn quickselect_equals_sort(dense in dense_vec(), k_frac in 0.0f64..1.0) {
        let k = ((dense.len() as f64 * k_frac) as usize).max(1);
        prop_assert_eq!(exact_threshold(&dense, k), exact_threshold_by_sort(&dense, k));
    }

    /// topk_exact returns exactly min(k, #nonzeros) entries and they dominate the rest.
    #[test]
    fn topk_exact_is_a_topk(dense in dense_vec(), k in 1usize..50) {
        let g = topk_exact(&dense, k);
        let nonzeros = dense.iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(g.nnz(), k.min(nonzeros));
        let min_kept = g.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        let kept: std::collections::HashSet<u32> = g.indexes().iter().copied().collect();
        for (i, &v) in dense.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                prop_assert!(v.abs() <= min_kept, "missed a larger entry");
            }
        }
    }

    /// Threshold-scan selection keeps exactly the entries meeting the cut.
    #[test]
    fn select_ge_is_exact(dense in dense_vec(), th in 0.0f32..5.0) {
        let g = select_ge(&dense, th);
        let expected = dense.iter().filter(|&&v| v.abs() >= th && v != 0.0).count();
        prop_assert_eq!(g.nnz(), expected);
        prop_assert!(g.values().iter().all(|v| v.abs() >= th));
    }

    /// COO merge-sum agrees with dense addition and is commutative.
    #[test]
    fn merge_sum_matches_dense(
        a in proptest::collection::vec((0u32..64, -10i32..10), 0..40),
        b in proptest::collection::vec((0u32..64, -10i32..10), 0..40),
    ) {
        let a = CooGradient::from_unsorted(a.into_iter().map(|(i, v)| (i, v as f32)).collect());
        let b = CooGradient::from_unsorted(b.into_iter().map(|(i, v)| (i, v as f32)).collect());
        let ab = a.merge_sum(&b);
        let ba = b.merge_sum(&a);
        prop_assert_eq!(&ab, &ba);
        let mut dense = a.to_dense(64);
        for (d, x) in dense.iter_mut().zip(b.to_dense(64)) {
            *d += x;
        }
        prop_assert_eq!(ab.to_dense(64), dense);
    }

    /// Splitting by any boundaries and concatenating reconstructs the gradient, and
    /// every shard's entries are inside its region.
    #[test]
    fn split_concat_roundtrip(
        pairs in proptest::collection::vec((0u32..1000, -10i32..10), 0..80),
        cuts in proptest::collection::vec(0u32..1000, 1..6),
    ) {
        let g = CooGradient::from_unsorted(
            pairs.into_iter().map(|(i, v)| (i, v as f32)).collect());
        let mut boundaries = vec![0u32];
        let mut cuts = cuts;
        cuts.sort_unstable();
        boundaries.extend(cuts);
        boundaries.push(1000);
        let shards = g.split_by_boundaries(&boundaries);
        prop_assert_eq!(CooGradient::concat_ordered(&shards), g);
        for (j, s) in shards.iter().enumerate() {
            for (i, _) in s.iter() {
                prop_assert!(i >= boundaries[j]);
                prop_assert!(i < boundaries[j + 1]);
            }
        }
    }

    /// Balanced boundaries are monotone, pinned to [0, n], and each region's share of
    /// the top-k mass is within 2× of the ideal (for non-degenerate inputs).
    #[test]
    fn balanced_boundaries_are_balanced(
        mut idx in proptest::collection::vec(0u32..10_000, 32..200),
        p in 2usize..9,
    ) {
        idx.sort_unstable();
        idx.dedup();
        prop_assume!(idx.len() >= 2 * p);
        let b = balanced_boundaries(&idx, 10_000, p);
        prop_assert_eq!(b[0], 0.0);
        prop_assert_eq!(b[p], 10_000.0);
        prop_assert!(b.windows(2).all(|w| w[0] <= w[1]));
        let bu = consensus_boundaries(&b, 1, 10_000);
        let counts = region_counts(&idx, &bu);
        prop_assert_eq!(counts.iter().sum::<usize>(), idx.len());
        let ideal = idx.len() as f64 / p as f64;
        // Duplicated coordinates and rounding can skew regions, but no region should
        // hold more than ~2× its share + a small constant.
        for &c in &counts {
            prop_assert!((c as f64) <= 2.0 * ideal + 2.0, "counts={:?}", counts);
        }
    }

    /// region_of agrees with region_counts bucketing.
    #[test]
    fn region_of_consistent(
        idx in 0u32..100,
        cuts in proptest::collection::vec(1u32..99, 1..5),
    ) {
        let mut boundaries = vec![0u32];
        let mut cuts = cuts;
        cuts.sort_unstable();
        boundaries.extend(cuts);
        boundaries.push(100);
        let r = region_of(idx, &boundaries);
        prop_assert!(idx >= boundaries[r]);
        if r + 1 < boundaries.len() {
            // idx below next boundary unless later regions are empty at the tail.
            let nxt = boundaries[r + 1];
            prop_assert!(idx < nxt || boundaries[r + 1..].iter().all(|&b| b <= idx));
        }
    }

    /// Residual-style mass conservation: filter + complement reconstruct the input.
    #[test]
    fn filter_partitions_mass(pairs in proptest::collection::vec((0u32..500, -100i32..100), 0..60), th in 0.0f32..10.0) {
        let g = CooGradient::from_unsorted(
            pairs.into_iter().map(|(i, v)| (i, v as f32 * 0.1)).collect());
        let kept = g.filter_abs_ge(th);
        let kept_set: std::collections::HashSet<u32> = kept.indexes().iter().copied().collect();
        let mut reconstructed = kept.to_dense(500);
        for (i, v) in g.iter() {
            if !kept_set.contains(&i) {
                reconstructed[i as usize] += v;
            }
        }
        prop_assert_eq!(reconstructed, g.to_dense(500));
    }
}
