//! Steady-state allocation audit for the scratch-based selection hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; a thread-local
//! flag arms the counter so only allocations made *by this test's thread* are
//! charged (the libtest harness thread may allocate concurrently). After a
//! warm-up that grows every pooled buffer to its steady-state capacity, one
//! full selection iteration — exact threshold, threshold select, COO merge,
//! re-filter, recycle — must perform **zero** heap allocations.
//!
//! This file must stay a single-test binary: a sibling test running in another
//! thread while the counter is armed would not be charged, but one running on
//! the same thread pool could skew timings; keeping the binary minimal keeps
//! the audit airtight.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sparse::scratch::{
    exact_threshold_with_threads, filter_abs_ge_scratch, select_ge_with_threads, SelectScratch,
};
use sparse::CooGradient;

struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One steady-state selection iteration as the Ok-Topk hot loop performs it:
/// estimate the exact threshold, select ≥-threshold entries, merge a peer's
/// contribution without allocating, re-filter against the threshold, and
/// return all storage to the pool. `threads = 1` is the serial path;
/// `threads > 1` dispatches through the persistent okpar worker pool, which
/// after [`okpar::prewarm`] is also allocation-free on the caller thread
/// (jobs enqueue into a process-lifetime queue; the latch lives on the stack).
fn hot_iteration(
    dense: &[f32],
    peer: &CooGradient,
    k: usize,
    scratch: &mut SelectScratch,
    spare_idx: &mut Vec<u32>,
    spare_val: &mut Vec<f32>,
    threads: usize,
) -> usize {
    let th = exact_threshold_with_threads(dense, k, scratch, threads);
    let mut selected = select_ge_with_threads(dense, th, scratch, threads);
    selected.merge_sum_swap(peer, spare_idx, spare_val);
    let kept = filter_abs_ge_scratch(&selected, th, scratch);
    let nnz = kept.nnz();
    scratch.recycle(selected);
    scratch.recycle(kept);
    nnz
}

#[test]
fn steady_state_selection_path_is_allocation_free() {
    let n = 4096usize;
    let k = 256usize;
    // All-nonzero dense input so warm-up exercises the worst-case capacities.
    let dense: Vec<f32> = (0..n)
        .map(|i| {
            let v = ((i as f32 * 0.731).sin() * 2.0) + 0.01;
            if v == 0.0 {
                0.01
            } else {
                v
            }
        })
        .collect();
    let peer_idx: Vec<u32> = (0..n as u32).step_by(3).collect();
    let peer_val: Vec<f32> = peer_idx.iter().map(|&i| (i as f32 * 0.13).cos()).collect();
    let peer = CooGradient::from_sorted(peer_idx, peer_val);

    let mut scratch = SelectScratch::new();
    let (mut spare_idx, mut spare_val) = scratch.take_pair();

    // Touch the thread-locals while unarmed (first TLS access must not be
    // charged) and warm every pooled buffer to steady-state capacity,
    // including the full-capacity select (threshold 0 keeps every nonzero).
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.set(0));
    let full = select_ge_with_threads(&dense, 0.0, &mut scratch, 1);
    scratch.recycle(full);
    let mut warm_nnz = 0;
    for _ in 0..3 {
        warm_nnz = hot_iteration(&dense, &peer, k, &mut scratch, &mut spare_idx, &mut spare_val, 1);
    }

    // Armed phase: the same iteration, repeated, must not allocate at all.
    ARMED.with(|a| a.set(true));
    let mut armed_nnz = 0;
    for _ in 0..5 {
        armed_nnz =
            hot_iteration(&dense, &peer, k, &mut scratch, &mut spare_idx, &mut spare_val, 1);
    }
    ARMED.with(|a| a.set(false));

    let allocs = ALLOCS.with(|c| c.get());
    assert_eq!(allocs, 0, "steady-state selection iteration performed {allocs} heap allocations");
    // Sanity: the armed iterations did real work identical to the warm ones.
    assert_eq!(armed_nnz, warm_nnz);
    assert!(armed_nnz > 0);

    // Parallel window: the same iterations dispatched through the okpar pool
    // (threads = 3) must also be allocation-free *on the caller thread* once
    // the pool is prewarmed — job enqueue reuses the process-lifetime queue,
    // the completion latch lives on the stack, and all scan buffers are
    // pooled. (Worker-thread bookkeeping is not charged by this thread-local
    // counter, and the workers' kernel closures do not allocate either.)
    const POOL_THREADS: usize = 3;
    okpar::prewarm(POOL_THREADS);
    let mut pool_warm_nnz = 0;
    for _ in 0..3 {
        pool_warm_nnz = hot_iteration(
            &dense,
            &peer,
            k,
            &mut scratch,
            &mut spare_idx,
            &mut spare_val,
            POOL_THREADS,
        );
    }
    ARMED.with(|a| a.set(true));
    let mut pool_nnz = 0;
    for _ in 0..5 {
        pool_nnz = hot_iteration(
            &dense,
            &peer,
            k,
            &mut scratch,
            &mut spare_idx,
            &mut spare_val,
            POOL_THREADS,
        );
    }
    ARMED.with(|a| a.set(false));
    let pool_allocs = ALLOCS.with(|c| c.get()) - allocs;
    assert_eq!(
        pool_allocs, 0,
        "steady-state pooled-parallel iteration performed {pool_allocs} caller-thread allocations"
    );
    assert_eq!(pool_nnz, pool_warm_nnz);
    assert_eq!(pool_nnz, armed_nnz, "parallel iteration diverged from serial");
}
