//! Property tests for the quantized sparse gradients (`sparse::quant`).
//!
//! Linear max-abs quantization makes three promises the unit tests only spot-
//! check: the round-trip error of every value is bounded by half a quantization
//! step (the mode's `max_abs_error` is one step, so ~0.5·step + rounding slop),
//! indexes survive exactly, and the wire accounting always beats raw COO while
//! never under-counting the packed payload. The scale pass itself runs through
//! the SIMD `max_abs` kernel, so its lane parity is asserted here too.

use proptest::prelude::*;
use sparse::quant::{QuantMode, QuantizedCoo};
use sparse::simd::{self, Lanes};
use sparse::CooGradient;

/// Sparse gradients with mixed magnitudes, signs, and a few near-zero values —
/// plus the occasional large outlier that dominates the scale.
fn coo_strategy() -> impl Strategy<Value = CooGradient> {
    prop::collection::vec(
        (
            0u32..100_000,
            prop_oneof![-1.0f32..1.0f32, -0.01f32..0.01f32, -100.0f32..100.0f32, Just(0.0f32),],
        ),
        0..300,
    )
    .prop_map(CooGradient::from_unsorted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_error_is_within_half_a_step(g in coo_strategy()) {
        let max_abs = g.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        for mode in [QuantMode::Q16, QuantMode::Q8] {
            let q = QuantizedCoo::quantize(&g, mode);
            let back = q.dequantize();
            prop_assert_eq!(back.indexes(), g.indexes(), "{:?}: indexes must survive", mode);
            prop_assert_eq!(back.nnz(), g.nnz());
            // Round-to-nearest: error ≤ 0.51 steps (slop for the f32 division),
            // except Q8's saturating clamp which stays within one full step.
            let step = mode.max_abs_error(max_abs);
            let bound = step * 0.51 + f32::EPSILON * max_abs.max(1.0);
            for (&orig, &rec) in g.values().iter().zip(back.values()) {
                prop_assert!(
                    (orig - rec).abs() <= bound.max(step),
                    "{:?}: {} -> {} exceeds bound {}", mode, orig, rec, bound
                );
            }
        }
    }

    #[test]
    fn quantization_is_idempotent(g in coo_strategy()) {
        // Quantize → dequantize → quantize must reproduce the same wire data:
        // dequantized values are exact multiples of the scale, so the second
        // pass re-derives the same grid (up to the max-abs value, which is
        // reconstructed exactly by construction).
        for mode in [QuantMode::Q16, QuantMode::Q8] {
            let once = QuantizedCoo::quantize(&g, mode).dequantize();
            let twice = QuantizedCoo::quantize(&once, mode).dequantize();
            let max_abs = once.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let tol = mode.max_abs_error(max_abs) * 0.51 + f32::EPSILON;
            for (&a, &b) in once.values().iter().zip(twice.values()) {
                prop_assert!((a - b).abs() <= tol, "{:?}: {} vs {}", mode, a, b);
            }
        }
    }

    #[test]
    fn wire_size_accounting_is_exact(g in coo_strategy()) {
        use simnet::WireSize;
        let k = g.nnz();
        let q16 = QuantizedCoo::quantize(&g, QuantMode::Q16).wire_elems();
        let q8 = QuantizedCoo::quantize(&g, QuantMode::Q8).wire_elems();
        // k u32 indexes + ceil(k/2) or ceil(k/4) packed value words + 1 scale word.
        prop_assert_eq!(q16, (k + k.div_ceil(2)) as u64 + 1);
        prop_assert_eq!(q8, (k + k.div_ceil(4)) as u64 + 1);
        // The +1 scale word means the break-even is k=4 (Q16) — at k=3 the
        // packing exactly ties COO's 2k.
        if k >= 4 {
            prop_assert!(q16 < 2 * k as u64, "Q16 must beat COO for k={}", k);
            prop_assert!(q8 < q16, "Q8 must beat Q16 for k={}", k);
        }
    }

    #[test]
    fn scale_pass_is_lane_invariant(g in coo_strategy()) {
        // The quantizer's max-abs scan dispatches through sparse::simd; the
        // scale (and therefore every quantized value) must not depend on the
        // lane width the host picked.
        let want = simd::max_abs_with_lanes(g.values(), Lanes::S1);
        for lanes in [Lanes::W4, Lanes::W8] {
            prop_assert_eq!(
                simd::max_abs_with_lanes(g.values(), lanes).to_bits(),
                want.to_bits(),
                "max_abs lanes={:?}", lanes
            );
        }
    }

    #[test]
    fn largest_magnitude_survives_exactly(g in coo_strategy()) {
        // The max-abs value defines the scale, so it must round-trip to within
        // one float ulp of itself under Q16 (it maps to ±IMAX exactly).
        prop_assume!(!g.is_empty());
        let max_abs = g.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        prop_assume!(max_abs > 0.0);
        let back = QuantizedCoo::quantize(&g, QuantMode::Q16).dequantize();
        let back_max = back.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let rel = (back_max - max_abs).abs() / max_abs;
        prop_assert!(rel < 1e-6, "max {} -> {}", max_abs, back_max);
    }
}
