//! Exact top-k selection primitives.
//!
//! The paper's §2 reviews why top-k selection is a real cost on accelerators: full
//! sorts are `O(n log n)`, quickselect is `O(n)` average. Ok-Topk sidesteps the cost by
//! computing an *exact* threshold only every τ′ iterations (with quickselect here) and
//! reusing it, so the steady-state per-iteration cost is a single `O(n)` threshold scan.
//!
//! This module provides the exact primitives; estimators that decide *when* to use
//! them live in [`crate::threshold`].

use crate::coo::CooGradient;

/// The `k`-th largest magnitude in `values` — the exact top-k threshold.
///
/// `O(n)` average time via iterative quickselect on a scratch copy of the magnitudes.
/// `k` is clamped to `[1, n]`; an empty input yields `0.0` (select nothing).
pub fn exact_threshold(values: &[f32], k: usize) -> f32 {
    if values.is_empty() || k == 0 {
        return f32::INFINITY;
    }
    let k = k.min(values.len());
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    // k-th largest magnitude = element at position (n - k) in ascending order.
    let pos = mags.len() - k;
    *quickselect(&mut mags, pos)
}

/// The same threshold computed by a full sort; `O(n log n)`. Used as the reference
/// implementation in tests and as the "naive sort-based selection" cost baseline.
pub fn exact_threshold_by_sort(values: &[f32], k: usize) -> f32 {
    if values.is_empty() || k == 0 {
        return f32::INFINITY;
    }
    let k = k.min(values.len());
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(f32::total_cmp);
    mags[mags.len() - k]
}

/// Select all entries with `|value| >= threshold` from a dense gradient — the
/// GPU-friendly `O(n)` scan the paper's steady-state iterations use.
///
/// Exact zeros are never selected (even at threshold 0): an explicit zero carries no
/// information in a sparse gradient, and dense↔COO wire conversions cannot
/// round-trip it.
///
/// Allocates fresh output buffers every call; the steady-state training path uses
/// [`crate::scratch::select_ge_scratch`], which reuses pooled buffers sized from
/// the previous iteration's nnz.
pub fn select_ge(dense: &[f32], threshold: f32) -> CooGradient {
    let mut indexes = Vec::new();
    let mut values = Vec::new();
    for (i, &v) in dense.iter().enumerate() {
        if v.abs() >= threshold && v != 0.0 {
            indexes.push(i as u32);
            values.push(v);
        }
    }
    CooGradient::from_sorted(indexes, values)
}

/// Exact top-k selection: the `k` entries of largest magnitude, ties broken toward
/// lower indexes. Returns `min(k, #nonzeros)` entries (exact zeros are never
/// selected; see [`select_ge`]).
pub fn topk_exact(dense: &[f32], k: usize) -> CooGradient {
    if k == 0 || dense.is_empty() {
        return CooGradient::new();
    }
    let k = k.min(dense.len());
    let th = exact_threshold(dense, k);
    // A threshold scan may overshoot k when magnitudes tie at the threshold;
    // trim the excess among threshold-equal entries (keep lowest indexes).
    let selected = select_ge(dense, th);
    if selected.nnz() <= k {
        return selected;
    }
    let excess = selected.nnz() - k;
    let (idx, val) = selected.into_parts();
    let mut at_threshold_to_drop = excess;
    let mut keep_idx = Vec::with_capacity(k);
    let mut keep_val = Vec::with_capacity(k);
    // Drop the *last* `excess` entries whose magnitude equals the threshold.
    let ties: Vec<usize> = (0..idx.len()).filter(|&i| val[i].abs() == th).collect();
    let drop_from = ties.len() - at_threshold_to_drop;
    let drop_set: std::collections::HashSet<usize> = ties[drop_from..].iter().copied().collect();
    for i in 0..idx.len() {
        if drop_set.contains(&i) {
            at_threshold_to_drop -= 1;
            continue;
        }
        keep_idx.push(idx[i]);
        keep_val.push(val[i]);
    }
    debug_assert_eq!(at_threshold_to_drop, 0);
    CooGradient::from_sorted(keep_idx, keep_val)
}

/// Tournament top-k selection — the CPU analogue of the GPU "bitonic top-k" the
/// paper cites (\[39\], §2): split the input into k-sized blocks, order each block,
/// then repeatedly merge block pairs keeping the larger k magnitudes, halving the
/// candidate set each round (`O(n log k)` comparisons here; the GPU version's
/// compare-exchange network is `O(n log² k)`).
///
/// Returns the same entries as [`topk_exact`] up to ties; used by the selection
/// benchmarks to compare against quickselect and scans.
pub fn topk_tournament(dense: &[f32], k: usize) -> CooGradient {
    if k == 0 || dense.is_empty() {
        return CooGradient::new();
    }
    let k = k.min(dense.len());
    // Candidate blocks of (magnitude-descending) entries, as (index, value) pairs.
    let mut blocks: Vec<Vec<(u32, f32)>> = dense
        .chunks(k)
        .enumerate()
        .map(|(b, chunk)| {
            let mut v: Vec<(u32, f32)> = chunk
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(i, &x)| ((b * k + i) as u32, x))
                .collect();
            v.sort_unstable_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
            v
        })
        .collect();
    while blocks.len() > 1 {
        let mut next = Vec::with_capacity(blocks.len().div_ceil(2));
        let mut it = blocks.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    // Merge two magnitude-sorted lists, keep the top k.
                    let mut merged = Vec::with_capacity(k);
                    let (mut i, mut j) = (0usize, 0usize);
                    while merged.len() < k && (i < a.len() || j < b.len()) {
                        let take_a = match (a.get(i), b.get(j)) {
                            (Some(x), Some(y)) => x.1.abs() >= y.1.abs(),
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => break,
                        };
                        if take_a {
                            merged.push(a[i]);
                            i += 1;
                        } else {
                            merged.push(b[j]);
                            j += 1;
                        }
                    }
                    next.push(merged);
                }
                None => next.push(a),
            }
        }
        blocks = next;
    }
    let winner = blocks.pop().unwrap_or_default();
    CooGradient::from_unsorted(winner.into_iter().take(k).collect())
}

/// In-place quickselect: after return, `data[pos]` is the element that would be at
/// `pos` in ascending sorted order. Iterative three-way (Dutch-national-flag)
/// partitioning with median-of-three pivots and an insertion-sort base case.
///
/// Three-way partitioning matters here: gradient-magnitude arrays are dominated by
/// duplicate values (residual accumulators are ~99% exact zeros), and a binary
/// Lomuto/Hoare partition degrades to O(n²) on such inputs.
///
/// `pub(crate)` so [`crate::scratch`] can run it over a pooled magnitude buffer.
pub(crate) fn quickselect(data: &mut [f32], pos: usize) -> &f32 {
    debug_assert!(pos < data.len());
    let (mut lo, mut hi) = (0usize, data.len() - 1);
    loop {
        if hi - lo < 16 {
            data[lo..=hi].sort_unstable_by(f32::total_cmp);
            return &data[pos];
        }
        // Median-of-three pivot.
        let mid = lo + (hi - lo) / 2;
        if data[mid] < data[lo] {
            data.swap(mid, lo);
        }
        if data[hi] < data[lo] {
            data.swap(hi, lo);
        }
        if data[hi] < data[mid] {
            data.swap(hi, mid);
        }
        let pivot = data[mid];
        // Three-way partition of [lo, hi] into  < pivot | == pivot | > pivot.
        let (mut lt, mut i, mut gt) = (lo, lo, hi);
        while i <= gt {
            if data[i] < pivot {
                data.swap(i, lt);
                lt += 1;
                i += 1;
            } else if data[i] > pivot {
                data.swap(i, gt);
                if gt == 0 {
                    break;
                }
                gt -= 1;
            } else {
                i += 1;
            }
        }
        if pos < lt {
            hi = lt - 1;
        } else if pos > gt {
            lo = gt + 1;
        } else {
            return &data[pos]; // inside the == band
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn quickselect_matches_sort_threshold() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 17, 100, 1000] {
            let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            for k in [1usize, 2, n / 2 + 1, n] {
                let a = exact_threshold(&values, k);
                let b = exact_threshold_by_sort(&values, k);
                assert_eq!(a, b, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn empty_and_zero_k() {
        assert_eq!(exact_threshold(&[], 3), f32::INFINITY);
        assert_eq!(exact_threshold(&[1.0], 0), f32::INFINITY);
        assert!(topk_exact(&[], 3).is_empty());
        assert!(topk_exact(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn topk_exact_returns_exactly_k() {
        let dense = [0.1f32, -0.9, 0.5, 0.5, -0.5, 0.2];
        let g = topk_exact(&dense, 3);
        assert_eq!(g.nnz(), 3);
        // Largest magnitudes are 0.9 and then the 0.5-ties; lowest indexes kept.
        assert_eq!(g.indexes(), &[1, 2, 3]);
    }

    #[test]
    fn topk_with_all_equal_values() {
        let dense = [0.5f32; 8];
        let g = topk_exact(&dense, 3);
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.indexes(), &[0, 1, 2]);
    }

    #[test]
    fn select_ge_scan() {
        let dense = [0.1f32, -0.9, 0.5, 0.0];
        let g = select_ge(&dense, 0.5);
        assert_eq!(g.indexes(), &[1, 2]);
        assert_eq!(g.values(), &[-0.9, 0.5]);
    }

    #[test]
    fn k_larger_than_n_selects_all() {
        let dense = [0.3f32, -0.1];
        let g = topk_exact(&dense, 10);
        assert_eq!(g.nnz(), 2);
    }

    #[test]
    fn tournament_matches_exact_topk_magnitudes() {
        let mut rng = StdRng::seed_from_u64(19);
        for n in [5usize, 64, 257, 1000] {
            let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            for k in [1usize, 7, n / 3 + 1] {
                let a = topk_tournament(&dense, k);
                let b = topk_exact(&dense, k);
                assert_eq!(a.nnz(), b.nnz(), "n={n} k={k}");
                // Same multiset of magnitudes (ties may pick different indexes).
                let mut ma: Vec<f32> = a.values().iter().map(|v| v.abs()).collect();
                let mut mb: Vec<f32> = b.values().iter().map(|v| v.abs()).collect();
                ma.sort_unstable_by(f32::total_cmp);
                mb.sort_unstable_by(f32::total_cmp);
                assert_eq!(ma, mb, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn tournament_edge_cases() {
        assert!(topk_tournament(&[], 3).is_empty());
        assert!(topk_tournament(&[1.0, 2.0], 0).is_empty());
        let g = topk_tournament(&[0.0, 5.0, 0.0], 3);
        assert_eq!(g.indexes(), &[1]);
        let g = topk_tournament(&[1.0; 10], 4);
        assert_eq!(g.nnz(), 4);
    }

    #[test]
    fn quickselect_is_fast_on_mostly_zero_input() {
        // Residual accumulators are ~99% exact zeros; a binary partition would go
        // quadratic here (regression test for the O(n²) duplicate-key pathology).
        let n = 1 << 18;
        let mut values = vec![0.0f32; n];
        for i in 0..n / 100 {
            values[i * 100] = (i as f32 + 1.0) * 0.001;
        }
        let start = std::time::Instant::now();
        let th = exact_threshold(&values, n / 200);
        assert!(th > 0.0);
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "quickselect took {:?} on duplicate-heavy input",
            start.elapsed()
        );
        assert_eq!(th, exact_threshold_by_sort(&values, n / 200));
    }

    #[test]
    fn quickselect_handles_duplicates_and_negatives() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let values: Vec<f32> =
                (0..n).map(|_| (rng.gen_range(-5i32..5) as f32) * 0.25).collect();
            let k = rng.gen_range(1..=n);
            assert_eq!(exact_threshold(&values, k), exact_threshold_by_sort(&values, k));
        }
    }
}
