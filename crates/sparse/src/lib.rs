#![warn(missing_docs)]

//! # sparse — sparse gradients and top-k machinery
//!
//! Everything the paper's §3.1.3 ("Efficient selection for top-k values") and the
//! baselines' sparsifiers need:
//!
//! - [`CooGradient`]: the coordinate-format sparse gradient the paper assumes
//!   throughout (k values + k `u32` indexes = 2k wire elements),
//! - exact top-k selection via partial quickselect and via full sort ([`select`]),
//! - threshold-based selection (a single O(n) scan, the GPU-friendly primitive the
//!   paper builds on),
//! - threshold estimators ([`threshold`]): the paper's periodic exact re-evaluation
//!   with reuse (Ok-Topk) and the Gaussian percent-point estimator (Gaussiank),
//! - balanced gradient-space partitioning for split-and-reduce ([`partition`]),
//! - pooled scratch buffers + parallel scans for the zero-allocation steady-state
//!   selection path ([`scratch`]),
//! - explicit-lane SIMD kernels for the O(n) hot loops, with runtime dispatch and
//!   a scalar fallback ([`simd`]),
//! - numeric utilities ([`stats`]): erf, inverse normal CDF, moments, histograms.

pub mod coo;
pub mod partition;
pub mod quant;
pub mod scratch;
pub mod select;
pub mod simd;
pub mod stats;
pub mod threshold;

pub use coo::CooGradient;
pub use scratch::SelectScratch;
pub use select::{exact_threshold, select_ge, topk_exact};
pub use threshold::{GaussianEstimator, PeriodicExactEstimator, ThresholdEstimator};
