//! Reusable scratch buffers for the steady-state selection hot path.
//!
//! Ok-Topk's per-iteration cost is dominated by a handful of O(n)/O(k) passes:
//! the |value| fill feeding quickselect, the threshold scan, the survivor
//! filter, and the shard merges of split-and-reduce. The algorithms are cheap;
//! what hurts at steady state is that each pass conjures fresh `Vec`s and drops
//! them microseconds later. [`SelectScratch`] owns that storage across
//! iterations: buffers are taken from a pool, filled, handed out as
//! [`CooGradient`]s, and recycled back once the gradient has been consumed.
//! After a warm-up iteration or two the capacities cover the steady-state
//! working set and the whole selection path performs **zero heap allocations**
//! (asserted by the `zero_alloc` integration test).
//!
//! The `*_with_threads` variants additionally run their O(n) passes
//! data-parallel over [`okpar`] chunk partitions, dispatched through okpar's
//! persistent worker pool (no per-call thread spawns). Chunks are always
//! consumed in index order, so the output is bit-identical to the serial pass
//! for every thread count (asserted by the `parity` proptest suite). The
//! auto-dispatching wrappers (`select_ge_scratch`, …) pick their thread count
//! adaptively — one worker per [`SCAN_GRAIN`] elements, capped at
//! [`okpar::configured_threads`] (the `OKTOPK_THREADS` knob) — so small inputs
//! take the serial path with zero dispatch overhead. The zero-allocation
//! steady-state guarantee holds on both paths: the serial path touches only
//! pooled buffers, and the pool's dispatch enqueues into a queue retained for
//! the process lifetime (allocation-free on the caller thread after warm-up).
//!
//! Within each chunk (and on the serial path) the O(n) loop bodies run through
//! the explicit-lane kernels in [`crate::simd`], so SIMD composes with the
//! okpar data-parallelism. The lane kernels are bit-identical to the scalar
//! scan at every width, so the parity guarantee above is unchanged.

use crate::coo::CooGradient;
use crate::select::quickselect;
use okpar::SendPtr;

/// Elements per worker chunk for the O(n) scan passes — the selection
/// granularity cutoff. One worker per this many elements (so inputs under
/// twice this stay serial); calibrated so a chunk's scan (tens of µs) dwarfs
/// the ~1µs pool dispatch.
pub const SCAN_GRAIN: usize = 1 << 14;

/// Most buffer pairs ever retained in the pool; `recycle` beyond this drops the
/// buffers instead of hoarding them.
const MAX_POOL: usize = 8;

/// Pooled scratch storage for the selection path. See the module docs.
#[derive(Debug, Default)]
pub struct SelectScratch {
    /// Magnitude buffer for the quickselect pass (capacity grows to n).
    mags: Vec<f32>,
    /// Per-chunk survivor counts for the two-pass parallel threshold scan.
    counts: Vec<usize>,
    /// Per-chunk output offsets (exclusive prefix sums of `counts`).
    offsets: Vec<usize>,
    idx_pool: Vec<Vec<u32>>,
    val_pool: Vec<Vec<f32>>,
    /// Largest nnz produced so far; `take_pair` pre-reserves this much so the
    /// serial push loops never reallocate at steady state.
    nnz_hint: usize,
}

impl SelectScratch {
    /// Empty scratch; buffers warm up over the first iterations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch whose first `take_pair` already reserves `hint` entries.
    pub fn with_nnz_hint(hint: usize) -> Self {
        Self { nnz_hint: hint, ..Self::default() }
    }

    /// The current capacity hint (largest nnz seen so far).
    pub fn nnz_hint(&self) -> usize {
        self.nnz_hint
    }

    /// Take a cleared `(indexes, values)` buffer pair from the pool, with
    /// capacity at least the current nnz hint.
    pub fn take_pair(&mut self) -> (Vec<u32>, Vec<f32>) {
        let mut idx = self.idx_pool.pop().unwrap_or_default();
        let mut val = self.val_pool.pop().unwrap_or_default();
        idx.clear();
        val.clear();
        // `reserve` is a no-op once the pooled capacity covers the hint.
        idx.reserve(self.nnz_hint);
        val.reserve(self.nnz_hint);
        (idx, val)
    }

    /// Return a consumed gradient's storage to the pool.
    pub fn recycle(&mut self, g: CooGradient) {
        let (idx, val) = g.into_parts();
        self.recycle_parts(idx, val);
    }

    /// Return raw parallel arrays to the pool.
    pub fn recycle_parts(&mut self, idx: Vec<u32>, val: Vec<f32>) {
        if self.idx_pool.len() < MAX_POOL {
            self.idx_pool.push(idx);
        }
        if self.val_pool.len() < MAX_POOL {
            self.val_pool.push(val);
        }
    }

    fn note_nnz(&mut self, nnz: usize) {
        self.nnz_hint = self.nnz_hint.max(nnz);
    }
}

/// Pick the thread count for an auto-dispatched pass over `len` elements:
/// one worker per [`SCAN_GRAIN`] elements, capped at the configured count.
fn auto_threads(len: usize) -> usize {
    okpar::threads_for(len, SCAN_GRAIN)
}

/// [`crate::select::select_ge`] on pooled buffers, auto-parallel
/// (`OKTOPK_THREADS`). Allocation-free at steady state on the serial path.
pub fn select_ge_scratch(
    dense: &[f32],
    threshold: f32,
    scratch: &mut SelectScratch,
) -> CooGradient {
    select_ge_with_threads(dense, threshold, scratch, auto_threads(dense.len()))
}

/// [`select_ge_scratch`] with an explicit thread count (no size gate); the
/// result is bit-identical to the serial scan for every `threads`.
pub fn select_ge_with_threads(
    dense: &[f32],
    threshold: f32,
    scratch: &mut SelectScratch,
    threads: usize,
) -> CooGradient {
    let (mut idx, mut val) = scratch.take_pair();
    let chunks = okpar::chunk_count(dense.len(), threads);
    if chunks <= 1 {
        crate::simd::scan_keep_append(dense, threshold, 0, &mut idx, &mut val);
    } else {
        // Two passes so every entry lands exactly where the serial scan would
        // put it: count matches per chunk, prefix-sum into disjoint output
        // windows, then fill the windows in parallel — all through the
        // persistent pool, on pooled buffers (no per-call allocation).
        let SelectScratch { counts, offsets, .. } = scratch;
        counts.clear();
        counts.resize(chunks, 0);
        let counts_ptr = SendPtr::new(counts.as_mut_ptr());
        okpar::run_chunks(dense.len(), threads, |ci, r| {
            let c = crate::simd::count_keep(&dense[r], threshold);
            // Safety: each chunk index writes only its own counts slot.
            unsafe { *counts_ptr.get().add(ci) = c };
        });
        offsets.clear();
        let mut total = 0usize;
        for &c in counts.iter() {
            offsets.push(total);
            total += c;
        }
        idx.resize(total, 0);
        val.resize(total, 0.0);
        let idx_ptr = SendPtr::new(idx.as_mut_ptr());
        let val_ptr = SendPtr::new(val.as_mut_ptr());
        let (counts, offsets) = (&*counts, &*offsets);
        okpar::run_chunks(dense.len(), threads, |ci, r| {
            // Safety: output windows [offsets[ci], offsets[ci] + counts[ci])
            // are disjoint by construction of the prefix sums.
            let ip = unsafe { idx_ptr.slice_mut(offsets[ci], counts[ci]) };
            let vp = unsafe { val_ptr.slice_mut(offsets[ci], counts[ci]) };
            let base = r.start as u32;
            let w = crate::simd::scan_keep_write(&dense[r], threshold, base, ip, vp);
            debug_assert_eq!(w, ip.len());
        });
    }
    scratch.note_nnz(idx.len());
    CooGradient::from_sorted(idx, val)
}

/// [`crate::select::exact_threshold`] on the pooled magnitude buffer,
/// auto-parallel |value| fill. Allocation-free at steady state (serial path).
pub fn exact_threshold_scratch(values: &[f32], k: usize, scratch: &mut SelectScratch) -> f32 {
    exact_threshold_with_threads(values, k, scratch, auto_threads(values.len()))
}

/// [`exact_threshold_scratch`] with an explicit thread count. Only the
/// magnitude fill parallelizes; quickselect itself stays serial (it is O(n)
/// with a small constant and mutates the buffer it partitions).
pub fn exact_threshold_with_threads(
    values: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
    threads: usize,
) -> f32 {
    if values.is_empty() || k == 0 {
        return f32::INFINITY;
    }
    let k = k.min(values.len());
    let SelectScratch { mags, .. } = scratch;
    mags.clear();
    mags.resize(values.len(), 0.0);
    if okpar::chunk_count(values.len(), threads) <= 1 {
        crate::simd::abs_fill(mags, values);
    } else {
        let mags_ptr = SendPtr::new(mags.as_mut_ptr());
        okpar::run_chunks(values.len(), threads, |_, r| {
            // Safety: chunk ranges are disjoint windows of the mags buffer.
            let part = unsafe { mags_ptr.slice_mut(r.start, r.len()) };
            crate::simd::abs_fill(part, &values[r]);
        });
    }
    // k-th largest magnitude = element at position (n - k) in ascending order.
    let pos = mags.len() - k;
    *quickselect(mags, pos)
}

/// [`crate::select::topk_exact`] on pooled buffers, auto-parallel.
pub fn topk_exact_scratch(dense: &[f32], k: usize, scratch: &mut SelectScratch) -> CooGradient {
    topk_exact_with_threads(dense, k, scratch, auto_threads(dense.len()))
}

/// [`topk_exact_scratch`] with an explicit thread count.
pub fn topk_exact_with_threads(
    dense: &[f32],
    k: usize,
    scratch: &mut SelectScratch,
    threads: usize,
) -> CooGradient {
    if k == 0 || dense.is_empty() {
        return CooGradient::new();
    }
    let k = k.min(dense.len());
    let th = exact_threshold_with_threads(dense, k, scratch, threads);
    let selected = select_ge_with_threads(dense, th, scratch, threads);
    if selected.nnz() <= k {
        return selected;
    }
    // The scan overshot k on threshold-magnitude ties; drop the *last* excess
    // tied entries in place (keep lowest indexes, like `topk_exact`).
    let excess = selected.nnz() - k;
    let (mut idx, mut val) = selected.into_parts();
    let ties = val.iter().filter(|v| v.abs() == th).count();
    debug_assert!(ties >= excess);
    let keep_ties = ties - excess;
    let (mut seen, mut w) = (0usize, 0usize);
    for r in 0..idx.len() {
        if val[r].abs() == th {
            seen += 1;
            if seen > keep_ties {
                continue;
            }
        }
        idx[w] = idx[r];
        val[w] = val[r];
        w += 1;
    }
    debug_assert_eq!(w, k);
    idx.truncate(w);
    val.truncate(w);
    CooGradient::from_sorted(idx, val)
}

/// [`CooGradient::filter_abs_ge`] writing into pooled buffers.
pub fn filter_abs_ge_scratch(
    g: &CooGradient,
    threshold: f32,
    scratch: &mut SelectScratch,
) -> CooGradient {
    let (mut idx, mut val) = scratch.take_pair();
    for (i, v) in g.iter() {
        if v.abs() >= threshold {
            idx.push(i);
            val.push(v);
        }
    }
    scratch.note_nnz(idx.len());
    CooGradient::from_sorted(idx, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{exact_threshold, select_ge, topk_exact};
    use rand::prelude::*;

    fn random_dense(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v = rng.gen_range(-1.0f32..1.0);
                if v.abs() < 0.2 {
                    0.0 // exercise the zero-skip and duplicate-heavy regime
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn scratch_select_matches_plain_select() {
        let mut scratch = SelectScratch::new();
        for n in [0usize, 1, 5, 100, 1000] {
            let dense = random_dense(n, 42 + n as u64);
            for th in [0.0f32, 0.3, 0.9, f32::INFINITY] {
                let got = select_ge_scratch(&dense, th, &mut scratch);
                let want = select_ge(&dense, th);
                assert_eq!(got, want, "n={n} th={th}");
                scratch.recycle(got);
            }
        }
    }

    #[test]
    fn scratch_threshold_matches_plain_threshold() {
        let mut scratch = SelectScratch::new();
        for n in [1usize, 2, 17, 333, 2000] {
            let dense = random_dense(n, 7 + n as u64);
            for k in [1usize, 2, n / 2 + 1, n, n + 5] {
                assert_eq!(
                    exact_threshold_scratch(&dense, k, &mut scratch),
                    exact_threshold(&dense, k),
                    "n={n} k={k}"
                );
            }
        }
        assert_eq!(exact_threshold_scratch(&[], 3, &mut scratch), f32::INFINITY);
        assert_eq!(exact_threshold_scratch(&[1.0], 0, &mut scratch), f32::INFINITY);
    }

    #[test]
    fn scratch_topk_matches_plain_topk() {
        let mut scratch = SelectScratch::new();
        for n in [1usize, 8, 100, 999] {
            let dense = random_dense(n, 1 + n as u64);
            for k in [1usize, 3, n / 2 + 1, n] {
                let got = topk_exact_scratch(&dense, k, &mut scratch);
                let want = topk_exact(&dense, k);
                assert_eq!(got, want, "n={n} k={k}");
                scratch.recycle(got);
            }
        }
        // Tie-heavy input exercises the in-place trim.
        let ties = [0.5f32; 8];
        let got = topk_exact_scratch(&ties, 3, &mut scratch);
        assert_eq!(got.indexes(), &[0, 1, 2]);
    }

    #[test]
    fn parallel_paths_bit_identical_to_serial() {
        for n in [1usize, 2, 7, 100, 101, 1000, 4097] {
            let dense = random_dense(n, 90 + n as u64);
            let mut s1 = SelectScratch::new();
            let serial = select_ge_with_threads(&dense, 0.3, &mut s1, 1);
            let th_serial = exact_threshold_with_threads(&dense, n / 3 + 1, &mut s1, 1);
            for threads in [2usize, 3, 4, 7] {
                let mut sp = SelectScratch::new();
                let par = select_ge_with_threads(&dense, 0.3, &mut sp, threads);
                assert_eq!(par, serial, "n={n} threads={threads}");
                let th_par = exact_threshold_with_threads(&dense, n / 3 + 1, &mut sp, threads);
                assert_eq!(th_par.to_bits(), th_serial.to_bits(), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn filter_scratch_matches_plain_filter() {
        let mut scratch = SelectScratch::new();
        let g = CooGradient::from_unsorted(vec![(0, 0.1), (4, -0.5), (9, 0.3)]);
        let got = filter_abs_ge_scratch(&g, 0.3, &mut scratch);
        assert_eq!(got, g.filter_abs_ge(0.3));
    }

    #[test]
    fn pool_reuses_capacity_across_iterations() {
        let mut scratch = SelectScratch::new();
        let dense = random_dense(5000, 3);
        // Warm up, then confirm the recycled buffers keep their capacity.
        let g = select_ge_scratch(&dense, 0.0, &mut scratch);
        let warm_nnz = g.nnz();
        scratch.recycle(g);
        assert!(scratch.nnz_hint() >= warm_nnz);
        let (idx, val) = scratch.take_pair();
        assert!(idx.capacity() >= warm_nnz && val.capacity() >= warm_nnz);
        scratch.recycle_parts(idx, val);
    }
}
