//! Balanced gradient-space partitioning for split-and-reduce (§3.1.1).
//!
//! The gradient index space `[0, n)` is split into `P` regions; worker `j` owns the
//! reduction of region `j`. Equal-width regions ("naive") can be badly imbalanced
//! because top-k coordinates cluster; the paper instead has every worker compute
//! boundaries that balance *its own* local top-k mass, then reach consensus by
//! averaging the boundary vectors across workers (one tiny allreduce, amortized over
//! τ iterations).
//!
//! This module holds the boundary math; the consensus allreduce lives in the `oktopk`
//! crate where the communicator is available.

/// Equal-width ("naive") region boundaries: `P+1` values from 0 to `n`.
pub fn equal_boundaries(n: u32, p: usize) -> Vec<u32> {
    assert!(p >= 1);
    (0..=p).map(|j| ((n as u64 * j as u64) / p as u64) as u32).collect()
}

/// Boundaries that give each of the `p` regions an (approximately) equal share of
/// the local top-k coordinates. `topk_indexes` must be sorted ascending.
///
/// Returned as `f64` so vectors from different workers can be averaged exactly;
/// endpoints are pinned to `0` and `n`.
pub fn balanced_boundaries(topk_indexes: &[u32], n: u32, p: usize) -> Vec<f64> {
    assert!(p >= 1);
    debug_assert!(topk_indexes.windows(2).all(|w| w[0] <= w[1]));
    let m = topk_indexes.len();
    if m == 0 {
        return equal_boundaries(n, p).into_iter().map(f64::from).collect();
    }
    let mut b = Vec::with_capacity(p + 1);
    b.push(0.0);
    for j in 1..p {
        // Boundary j sits just above the coordinate of the (j·m/p)-th selected entry,
        // so regions [b_j, b_{j+1}) each hold ≈ m/p selected coordinates.
        let pos = (j * m) / p;
        let coord = if pos == 0 {
            0.0
        } else if pos >= m {
            n as f64
        } else {
            // Midpoint between consecutive selected coordinates keeps the boundary
            // stable under small index jitter.
            (topk_indexes[pos - 1] as f64 + topk_indexes[pos] as f64) / 2.0 + 0.5
        };
        b.push(coord.clamp(0.0, n as f64));
    }
    b.push(n as f64);
    // Enforce monotonicity (possible ties when many selected coords coincide).
    for j in 1..=p {
        if b[j] < b[j - 1] {
            b[j] = b[j - 1];
        }
    }
    b
}

/// Element-wise average of boundary vectors from all workers, rounded to integer
/// coordinates with monotonicity and endpoint pinning restored — the consensus step
/// of §3.1.1 after the P-element allreduce.
pub fn consensus_boundaries(sum: &[f64], workers: usize, n: u32) -> Vec<u32> {
    assert!(workers >= 1 && sum.len() >= 2);
    let p = sum.len() - 1;
    let mut b: Vec<u32> =
        sum.iter().map(|&s| ((s / workers as f64).round().clamp(0.0, n as f64)) as u32).collect();
    b[0] = 0;
    b[p] = n;
    for j in 1..=p {
        if b[j] < b[j - 1] {
            b[j] = b[j - 1];
        }
    }
    b
}

/// Which region (0-based) contains coordinate `idx`, given `P+1` boundaries.
/// Coordinates on a boundary belong to the right-hand region, except that everything
/// at or past the last boundary belongs to the final region.
pub fn region_of(idx: u32, boundaries: &[u32]) -> usize {
    let p = boundaries.len() - 1;
    // First boundary strictly greater than idx, minus one.
    let r = boundaries[1..p].partition_point(|&b| b <= idx);
    r.min(p - 1)
}

/// Per-region counts of (sorted) coordinates — the load-balance metric for Fig. 7a.
pub fn region_counts(sorted_indexes: &[u32], boundaries: &[u32]) -> Vec<usize> {
    let p = boundaries.len() - 1;
    let mut counts = vec![0usize; p];
    let mut start = 0usize;
    for j in 0..p {
        let hi = boundaries[j + 1];
        let end = start + sorted_indexes[start..].partition_point(|&i| i < hi);
        counts[j] = end - start;
        start = end;
    }
    // Anything at or past the final boundary (shouldn't happen with pinned ends).
    counts[p - 1] += sorted_indexes.len() - start;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_boundaries_cover_space() {
        assert_eq!(equal_boundaries(16, 4), vec![0, 4, 8, 12, 16]);
        assert_eq!(equal_boundaries(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(equal_boundaries(5, 1), vec![0, 5]);
    }

    #[test]
    fn balanced_boundaries_split_clustered_mass() {
        // All top-k coordinates in the first tenth of the space.
        let idx: Vec<u32> = (0..100).collect();
        let b = balanced_boundaries(&idx, 1000, 4);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[4], 1000.0);
        // Interior boundaries must sit inside the cluster, not at 250/500/750.
        assert!(b[1] < 150.0 && b[2] < 150.0 && b[3] < 150.0, "{b:?}");
        let bu: Vec<u32> = b.iter().map(|&x| x as u32).collect();
        let counts = region_counts(&idx, &bu);
        assert!(counts.iter().all(|&c| c >= 20 && c <= 30), "{counts:?}");
    }

    #[test]
    fn balanced_boundaries_empty_topk_falls_back_to_equal() {
        let b = balanced_boundaries(&[], 100, 4);
        assert_eq!(b, vec![0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn consensus_averages_and_restores_invariants() {
        let sum = vec![0.0, 30.0, 10.0, 200.0]; // average of 2 workers: [0,15,5,100]
        let b = consensus_boundaries(&sum, 2, 100);
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 100);
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "{b:?}");
        assert_eq!(b[1], 15);
        assert_eq!(b[2], 15); // clamped up to preserve monotonicity
    }

    #[test]
    fn region_of_matches_counts() {
        let b = vec![0u32, 10, 20, 30];
        assert_eq!(region_of(0, &b), 0);
        assert_eq!(region_of(9, &b), 0);
        assert_eq!(region_of(10, &b), 1);
        assert_eq!(region_of(29, &b), 2);
        // Degenerate empty middle region.
        let b2 = vec![0u32, 10, 10, 30];
        assert_eq!(region_of(10, &b2), 2);
        assert_eq!(region_of(9, &b2), 0);
    }

    #[test]
    fn region_counts_sum_to_total() {
        let idx: Vec<u32> = vec![1, 5, 9, 10, 15, 29];
        let b = vec![0u32, 10, 20, 30];
        let counts = region_counts(&idx, &b);
        assert_eq!(counts, vec![3, 2, 1]);
        assert_eq!(counts.iter().sum::<usize>(), idx.len());
    }

    #[test]
    fn single_region_takes_everything() {
        let idx: Vec<u32> = vec![3, 4, 5];
        let b = balanced_boundaries(&idx, 10, 1);
        assert_eq!(b, vec![0.0, 10.0]);
        assert_eq!(region_counts(&idx, &[0, 10]), vec![3]);
    }
}
